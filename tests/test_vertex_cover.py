"""Tests for the vertex cover application (repro.matching.vertex_cover)."""

from __future__ import annotations

import pytest

from repro.graphs.families import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    star_graph,
)
from repro.matching.fm import FractionalMatching, fm_from_node_outputs
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.proposal import proposal_algorithm
from repro.matching.sequential import greedy_maximal_fm
from repro.matching.vertex_cover import (
    is_vertex_cover,
    vertex_cover_from_fm,
    vertex_cover_quality,
)


class TestExtraction:
    def test_cover_is_valid_on_samples(self):
        for g in (
            path_graph(7),
            cycle_graph(8),
            star_graph(5),
            complete_graph(5),
            random_bounded_degree_graph(20, 4, seed=0),
        ):
            fm = greedy_maximal_fm(g)
            cover = vertex_cover_from_fm(fm)
            assert is_vertex_cover(g, cover), repr(g)

    def test_non_maximal_rejected(self):
        g = path_graph(4)
        fm = FractionalMatching(g, {})
        with pytest.raises(ValueError):
            vertex_cover_from_fm(fm)

    def test_star_cover_is_centre(self):
        g = star_graph(5)
        fm = greedy_maximal_fm(g)
        cover = vertex_cover_from_fm(fm)
        assert 0 in cover


class TestTwoApproximation:
    def test_ratio_at_most_two(self):
        """|C(y)| <= 2 nu_f for every maximal FM — the [3] guarantee."""
        for seed in range(5):
            g = random_bounded_degree_graph(22, 5, seed=seed)
            for alg in (greedy_color_algorithm(), proposal_algorithm()):
                fm = fm_from_node_outputs(g, alg.run_on(g))
                cover, ratio, lower = vertex_cover_quality(fm)
                assert is_vertex_cover(g, cover)
                assert ratio <= 2.0 + 1e-9

    def test_lp_lower_bound_is_weak_duality(self):
        g = cycle_graph(6)
        fm = greedy_maximal_fm(g)
        cover, ratio, lower = vertex_cover_quality(fm)
        assert len(cover) >= lower - 1e-9

    def test_empty_graph(self):
        from repro.graphs.multigraph import ECGraph

        g = ECGraph()
        g.add_node(0)
        fm = FractionalMatching(g, {})
        cover, ratio, lower = vertex_cover_quality(fm)
        assert cover == set() and lower == 0.0


class TestValidator:
    def test_rejects_non_cover(self):
        g = path_graph(4)
        assert not is_vertex_cover(g, {0})
        assert is_vertex_cover(g, {1, 2})

    def test_loops_need_their_node(self):
        from repro.graphs.families import single_node_with_loops

        g = single_node_with_loops(2)
        assert not is_vertex_cover(g, set())
        assert is_vertex_cover(g, {0})
