"""Maximum-weight fractional matchings (paper, Section 1.2).

Two independent solvers are provided and cross-checked in the tests:

* :func:`max_weight_fm_lp` — the linear program ``max sum_e y(e)`` subject to
  ``y[v] <= 1`` solved with :func:`scipy.optimize.linprog` (floating point);
* :func:`fractional_matching_number_exact` — for loop-free graphs, the exact
  value via the classical identity ``nu_f(G) = nu(BDC(G)) / 2``: the
  fractional matching number equals half the (integral) maximum matching of
  the bipartite double cover.  Exact rational output.

These give the baselines against which approximation benches (experiment E3)
measure their ratios, and the reference for "a maximal FM is a
1/2-approximation of a maximum-weight FM".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Tuple

import networkx as nx
import numpy as np
from scipy.optimize import linprog

from ..graphs.lifts import bipartite_double_cover
from ..graphs.multigraph import ECGraph

Node = Hashable
EdgeId = int

__all__ = ["max_weight_fm_lp", "min_fractional_vertex_cover_lp", "fractional_matching_number_exact"]


def max_weight_fm_lp(g: ECGraph) -> Tuple[float, Dict[EdgeId, float]]:
    """Solve the maximum-weight FM linear program.

    Returns ``(optimal total weight, per-edge weights)``.  Loops are
    supported: a loop contributes its weight once to its endpoint's
    constraint (EC convention).  Floating point; use
    :func:`fractional_matching_number_exact` for an exact value on loop-free
    graphs.
    """
    edges = g.edges()
    if not edges:
        return 0.0, {}
    nodes = g.nodes()
    node_index = {v: i for i, v in enumerate(nodes)}
    col = {e.eid: j for j, e in enumerate(edges)}
    a_ub = np.zeros((len(nodes), len(edges)))
    for e in edges:
        a_ub[node_index[e.u], col[e.eid]] += 1.0
        if not e.is_loop:
            a_ub[node_index[e.v], col[e.eid]] += 1.0
    b_ub = np.ones(len(nodes))
    c = -np.ones(len(edges))
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0.0, 1.0)] * len(edges), method="highs")
    if not res.success:  # pragma: no cover - scipy failure is exceptional
        raise RuntimeError(f"LP solver failed: {res.message}")
    weights = {e.eid: float(res.x[col[e.eid]]) for e in edges}
    return float(-res.fun), weights


def min_fractional_vertex_cover_lp(g: ECGraph) -> Tuple[float, Dict[Node, float]]:
    """The dual LP: minimum fractional vertex cover ``tau_f``.

    ``min sum_v x(v)`` subject to ``x(u) + x(v) >= 1`` per edge (a loop
    needs ``x(v) >= 1`` on its own: both endpoint slots are ``v``).  By LP
    duality ``tau_f = nu_f`` — the identity behind the paper's Section 1.2
    approximation landscape and the [3] vertex-cover application; the tests
    confirm it numerically against :func:`max_weight_fm_lp`.
    """
    nodes = g.nodes()
    edges = g.edges()
    if not edges:
        return 0.0, {v: 0.0 for v in nodes}
    node_index = {v: i for i, v in enumerate(nodes)}
    # constraints: -x(u) - x(v) <= -1
    a_ub = np.zeros((len(edges), len(nodes)))
    for row, e in enumerate(edges):
        a_ub[row, node_index[e.u]] -= 1.0
        if not e.is_loop:
            a_ub[row, node_index[e.v]] -= 1.0
    b_ub = -np.ones(len(edges))
    c = np.ones(len(nodes))
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0.0, None)] * len(nodes), method="highs")
    if not res.success:  # pragma: no cover - scipy failure is exceptional
        raise RuntimeError(f"LP solver failed: {res.message}")
    values = {v: float(res.x[node_index[v]]) for v in nodes}
    return float(res.fun), values


def fractional_matching_number_exact(g: ECGraph) -> Fraction:
    """Exact fractional matching number of a loop-free EC-graph.

    Uses ``nu_f(G) = nu(BDC(G)) / 2``: every FM on ``G`` lifts to an FM of
    equal doubled weight on the bipartite double cover, where the LP is
    integral; conversely an integral matching of the cover averages down to a
    half-integral FM on ``G``.  Loops break the identity (a loop saturates
    its endpoint alone but its single cover edge cannot), so loopy inputs are
    rejected.
    """
    if any(e.is_loop for e in g.edges()):
        raise ValueError("exact method requires a loop-free graph")
    cover, _ = bipartite_double_cover(g)
    nxg = nx.Graph()
    nxg.add_nodes_from(cover.nodes())
    for e in cover.edges():
        nxg.add_edge(e.u, e.v)
    matching = nx.max_weight_matching(nxg, maxcardinality=True)
    return Fraction(len(matching), 2)
