"""Tests for centralised baselines (repro.matching.sequential)."""

from __future__ import annotations

from fractions import Fraction

from repro.graphs.families import (
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    single_node_with_loops,
    star_graph,
)
from repro.matching.sequential import (
    greedy_maximal_fm,
    greedy_maximal_matching,
    matching_as_fm,
)


class TestGreedyFM:
    def test_always_feasible_and_maximal(self):
        for g in (
            path_graph(6),
            cycle_graph(7),
            star_graph(4),
            random_bounded_degree_graph(15, 4, seed=2),
            random_loopy_tree(5, 2, seed=2),
        ):
            fm = greedy_maximal_fm(g)
            assert fm.is_feasible()
            assert fm.is_maximal()

    def test_loop_takes_full_residual(self):
        g = single_node_with_loops(2)
        fm = greedy_maximal_fm(g)
        assert fm.weight(0) == Fraction(1)
        assert fm.weight(1) == Fraction(0)

    def test_order_matters(self):
        g = path_graph(3)
        by_first = greedy_maximal_fm(g, order=[0, 1])
        by_second = greedy_maximal_fm(g, order=[1, 0])
        assert by_first.weight(0) == Fraction(1)
        assert by_second.weight(1) == Fraction(1)

    def test_saturates_loopy_graphs(self):
        g = random_loopy_tree(6, 1, seed=9)
        fm = greedy_maximal_fm(g)
        assert fm.is_fully_saturated()


class TestGreedyMatching:
    def test_is_maximal_matching(self):
        g = random_bounded_degree_graph(20, 5, seed=4)
        chosen = greedy_maximal_matching(g)
        matched = set()
        for eid in chosen:
            e = g.edge(eid)
            assert e.u not in matched and e.v not in matched
            matched |= {e.u, e.v}
        for e in g.edges():
            if not e.is_loop:
                assert e.u in matched or e.v in matched

    def test_ignores_loops(self):
        g = single_node_with_loops(3)
        assert greedy_maximal_matching(g) == set()

    def test_matching_as_fm(self):
        g = path_graph(4)
        chosen = greedy_maximal_matching(g)
        fm = matching_as_fm(g, chosen)
        assert fm.is_feasible()
        assert all(fm.weight(eid) == 1 for eid in chosen)
