"""E5 — Figure 4 / Lemma 2: loopy graphs force full saturation.

Paper claim: any EC-algorithm for maximal FM saturates every node of a
loopy EC-graph; otherwise unfolding a loop yields a simple lift on which the
output is not maximal.  Measured: full saturation of correct algorithms on
k-loopy graphs, and the explicit Figure-4 certificates produced for
non-saturating algorithms.
"""

from __future__ import annotations

import pytest

from repro.core.saturation import figure4_certificate, unsaturated_nodes
from repro.graphs.families import random_loopy_tree
from repro.matching.fm import fm_from_node_outputs
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.naive import ZeroFM
from repro.matching.proposal import proposal_algorithm


@pytest.mark.parametrize("loops", [1, 2, 3])
def test_correct_algorithms_saturate(benchmark, record, loops):
    g = random_loopy_tree(6, loops, seed=loops)
    greedy = greedy_color_algorithm()
    outputs = benchmark.pedantic(lambda: greedy.run_on(g), rounds=1, iterations=1)
    fm = fm_from_node_outputs(g, outputs)
    assert fm.is_fully_saturated()
    fm2 = fm_from_node_outputs(g, proposal_algorithm().run_on(g))
    assert fm2.is_fully_saturated()
    record(
        "E5 Lemma 2: saturation on k-loopy graphs",
        loopiness=loops,
        nodes=g.num_nodes(),
        greedy_saturated="all",
        proposal_saturated="all",
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_figure4_certificates(benchmark, record, seed):
    g = random_loopy_tree(4, 2, seed=seed)
    alg = ZeroFM()
    bad = unsaturated_nodes(g, alg.run_on(g))
    assert bad
    cert = benchmark.pedantic(
        lambda: figure4_certificate(g, bad[0], alg), rounds=1, iterations=1
    )
    assert cert is not None
    lifted, v1, v2 = cert
    record(
        "E5 Figure 4: refuting lifts for non-saturating algorithms",
        seed=seed,
        unsaturated_nodes=len(bad),
        certificate="2-lift with adjacent unsaturated copies",
        lift_nodes=lifted.num_nodes(),
    )
