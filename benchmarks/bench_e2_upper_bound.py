"""E2 — the O(Delta) upper bound ([3]; Section 1): maximal FM round counts.

Paper claim: maximal fractional matchings are computable in ``O(Delta)``
rounds independently of ``n``.  Measured: round counts of the two
implementations against Delta (linear shape) and against n (flat shape),
with every output verified maximal.
"""

from __future__ import annotations

import pytest

from repro.graphs.families import random_regular_graph
from repro.matching.fm import fm_from_node_outputs
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.proposal import proposal_algorithm


def even_n(n: int, d: int) -> int:
    return n if (n * d) % 2 == 0 else n + 1


@pytest.mark.parametrize("delta", [2, 4, 6, 8, 10, 12])
def test_rounds_vs_delta(benchmark, record, delta):
    """Irregular bounded-degree inputs: regular graphs trivialise the
    dynamics (all proposals tie in round one), so the shape is measured on
    graphs with a genuine degree spread up to Delta."""
    from repro.graphs.families import random_bounded_degree_graph

    g = random_bounded_degree_graph(60, delta, seed=1)
    greedy = greedy_color_algorithm()

    def run():
        return greedy.run_on(g)

    outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    fm = fm_from_node_outputs(g, outputs)
    assert fm.is_maximal()
    proposal = proposal_algorithm()
    fm2 = fm_from_node_outputs(g, proposal.run_on(g))
    assert fm2.is_maximal()
    record(
        "E2 maximal-FM rounds vs Delta (upper bound O(Delta))",
        delta=delta,
        n=g.num_nodes(),
        greedy_rounds=greedy.rounds_used(g),
        proposal_rounds=proposal.rounds_used(g),
    )


@pytest.mark.parametrize("n", [20, 40, 80, 160, 320])
def test_rounds_vs_n(benchmark, record, n):
    """Strict locality: rounds do not grow with n for fixed Delta."""
    delta = 4
    g = random_regular_graph(even_n(n, delta), delta, seed=2)
    greedy = greedy_color_algorithm()
    outputs = benchmark.pedantic(lambda: greedy.run_on(g), rounds=1, iterations=1)
    assert fm_from_node_outputs(g, outputs).is_maximal()
    proposal = proposal_algorithm()
    proposal.run_on(g)
    record(
        "E2 maximal-FM rounds vs n (independent of n)",
        n=g.num_nodes(),
        delta=delta,
        greedy_rounds=greedy.rounds_used(g),
        proposal_rounds=proposal.rounds_used(g),
    )
