"""Residual proposal dynamics for maximal fractional matching.

A port-symmetric algorithm in the spirit of the edge-packing algorithms of
Astrand et al. [4] / Astrand-Suomela [3] (the ``O(Delta)`` upper bound the
paper refers to).  Every round:

1. every *unsaturated* node splits its residual capacity evenly over its
   *active* ports (ports whose edge still has both endpoints unsaturated)
   and proposes that amount on each;
2. every active edge increases its weight by the minimum of its two
   endpoints' proposals;
3. saturated nodes announce it, deactivating their incident edges.

Exact rational arithmetic keeps the dynamics well-defined.  Every round the
node with the locally minimal proposal becomes saturated (it receives its
own proposal back on every active port), so the process terminates in at
most ``n`` rounds and — because an edge only deactivates when an endpoint
saturates — terminates in a *maximal* FM.  On bounded-degree graphs the
round count empirically grows with ``Delta``, not ``n`` (experiment E2).

The algorithm uses no identifiers and no colours beyond port labels, so it
runs unchanged in the EC, PO and ID models (set ``model`` at construction).
On EC multigraphs a loop's echo returns the node's own proposal, assigning
the loop the full per-port share — the correct universal-cover behaviour.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, Hashable, Optional

from ..local.algorithm import DistributedAlgorithm, SimulatedECWeights
from ..local.context import NodeContext

Node = Hashable

__all__ = ["ProposalFM", "proposal_algorithm"]

ZERO = Fraction(0)
ONE = Fraction(1)

#: message meaning "I am saturated / this edge is closed on my side"
_CLOSED = "closed"


class ProposalFM(DistributedAlgorithm):
    """State machine for the proposal dynamics (any of EC / PO / ID)."""

    def __init__(self, model: str = "EC"):
        if model not in ("EC", "PO", "ID"):
            raise ValueError(f"unsupported model {model!r}")
        self.model = model

    def initial_state(self, ctx: NodeContext) -> Dict[str, Any]:
        return {
            "residual": ONE,
            "weights": {p: ZERO for p in ctx.ports},
            "active": set(ctx.ports),
            "done": len(ctx.ports) == 0,
        }

    def _proposal(self, state: Dict[str, Any]) -> Optional[Fraction]:
        if state["residual"] == ZERO or not state["active"]:
            return None
        return Fraction(state["residual"], len(state["active"]))

    def send(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Any]:
        if state["done"]:
            return {}
        p = self._proposal(state)
        out: Dict[Any, Any] = {}
        for port in ctx.ports:
            if port in state["active"]:
                out[port] = p if p is not None else _CLOSED
        return out

    def receive(self, state: Dict[str, Any], ctx: NodeContext, inbox: Dict[Any, Any]) -> Dict[str, Any]:
        if state["done"]:
            return state
        state = dict(state)
        state["weights"] = dict(state["weights"])
        state["active"] = set(state["active"])
        my_proposal = self._proposal(state)
        for port in list(state["active"]):
            theirs = inbox.get(port, _CLOSED)
            if theirs == _CLOSED or my_proposal is None:
                # the edge is closed by whichever endpoint is saturated
                state["active"].discard(port)
                continue
            increment = min(my_proposal, theirs)
            state["weights"][port] += increment
            state["residual"] -= increment
        if state["residual"] == ZERO:
            state["active"] = set()
        if not state["active"]:
            state["done"] = True
        return state

    def output(self, state: Dict[str, Any], ctx: NodeContext) -> Optional[Dict[Any, Fraction]]:
        return dict(state["weights"]) if state["done"] else None

    def snapshot(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Fraction]:
        """Current weights — the meaningful partial answer of the dynamics.

        Used when a ``t``-time evaluation cuts the run off after ``t``
        rounds (see :func:`repro.local.runtime.run_rounds`): by locality the
        weights held after ``t`` rounds are what any ``t``-round version of
        the algorithm would announce.
        """
        return dict(state["weights"])


def proposal_algorithm() -> SimulatedECWeights:
    """EC-model packaging of the proposal dynamics for the adversary/benches."""
    algorithm = SimulatedECWeights(
        ProposalFM("EC"),
        max_rounds_factory=lambda g: 4 * (g.num_nodes() + g.num_edges() + 2),
        name="proposal-dynamics",
    )
    # deterministic function of the labelled graph: verified runs are safe
    # to memoize content-addressed (see ECWeightAlgorithm.fingerprint)
    algorithm.fingerprint = "proposal-dynamics-v1"
    return algorithm
