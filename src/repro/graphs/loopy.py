"""Loopiness (paper, Definition 1).

An edge-coloured graph ``G`` is *k-loopy* if every node of its factor graph
``FG`` carries at least ``k`` loops; *loopy* means 1-loopy.  Loops measure a
node's inability to break local symmetry: a node whose factor image has a
loop always has (in every simple lift) a neighbour that any anonymous
algorithm must treat identically — the engine behind Lemma 2.
"""

from __future__ import annotations

from typing import Hashable

from .factor import factor_graph
from .multigraph import ECGraph

Node = Hashable

__all__ = ["loopiness", "is_k_loopy", "is_loopy", "min_direct_loops"]


def loopiness(g: ECGraph) -> int:
    """The largest ``k`` such that ``g`` is k-loopy (0 if some factor node is loop-free).

    Computed as the minimum loop count over the nodes of the factor graph.
    """
    if g.num_nodes() == 0:
        return 0
    fg, _ = factor_graph(g)
    return min(fg.loop_count(v) for v in fg.nodes())


def is_k_loopy(g: ECGraph, k: int) -> bool:
    """Whether every factor-graph node of ``g`` has at least ``k`` loops."""
    return loopiness(g) >= k


def is_loopy(g: ECGraph) -> bool:
    """Whether ``g`` is loopy (Definition 1 with ``k = 1``)."""
    return is_k_loopy(g, 1)


def min_direct_loops(g: ECGraph) -> int:
    """Minimum loop count over the nodes of ``g`` itself (not the factor graph).

    Always a lower bound on :func:`loopiness`, because loops survive the
    quotient; the factor graph may have *more* loops (symmetric non-loop
    edges collapse onto loops).  The lower-bound construction of Section 4
    maintains its loop budget directly on the graphs, so this cheap bound is
    what the adversary tracks round-to-round.
    """
    if g.num_nodes() == 0:
        return 0
    return min(g.loop_count(v) for v in g.nodes())
