"""Radius-``t`` neighbourhoods ``tau_t(G, v)`` (paper, Section 3.1).

The paper defines the *distance of an edge* ``{u, w}`` from ``v`` as
``min(dist(v, u), dist(v, w)) + 1`` and lets ``tau_t(G, v)`` consist of the
nodes and edges of ``G`` within distance ``t`` of ``v``.  Consequently:

* ``tau_0(G, v)`` is the bare node ``v`` — even loops at ``v`` are at
  distance 1 and therefore excluded (this is exactly why the base case of the
  paper's Section 4 works);
* ``tau_t`` contains all nodes at distance at most ``t`` and all edges with
  an endpoint at distance at most ``t - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

from .kernel import GraphKernel
from .multigraph import ECGraph
from .soa import extract_ball as _extract_ball_fast

Node = Hashable

__all__ = ["Ball", "ball"]


@dataclass
class Ball:
    """A rooted radius-``t`` neighbourhood extracted from an EC-graph.

    Attributes
    ----------
    graph:
        The subgraph ``tau_t(G, v)`` (an :class:`ECGraph`, same labels/ids).
    root:
        The centre node ``v``.
    radius:
        The radius ``t``.
    distances:
        BFS distance of each ball node from the root.
    """

    graph: ECGraph
    root: Node
    radius: int
    distances: Dict[Node, int]

    @property
    def kernel(self) -> GraphKernel:
        """Frozen kernel snapshot of the ball's subgraph."""
        return self.graph.kernel

    @property
    def digest(self) -> str:
        """Rooted content digest of the ball — its identity for caching.

        Two balls share a digest iff their labelled rooted subgraphs agree
        (the radius is determined by the distances, so it needs no separate
        encoding for balls extracted by :func:`ball`).
        """
        return self.graph.rooted_digest(self.root)

    def canonical_form(self):
        """Canonical rooted form of the ball's tree-with-loops.

        Delegates to :func:`repro.graphs.isomorphism.canonical_form_of`, so
        an installed canonical-form cache (the sweep engine's) is consulted;
        raises ``ValueError`` for non-tree balls, like the canonicaliser.
        """
        from .isomorphism import canonical_form_of

        return canonical_form_of(self.graph, self.root)


def ball(g: ECGraph, v: Node, t: int) -> Ball:
    """Extract ``tau_t(g, v)`` following the paper's edge-distance rule.

    Nodes at distance at most ``t`` are included; an edge is included iff one
    of its endpoints lies at distance at most ``t - 1`` (equivalently, the
    edge's distance ``min dist + 1`` is at most ``t``).  Loops at a node of
    distance ``d`` have distance ``d + 1``.
    """
    if t < 0:
        raise ValueError("radius must be non-negative")
    fast = _extract_ball_fast(g, v, t)
    if fast is not None:
        sub_kernel, dist = fast
        return Ball(
            graph=ECGraph.from_kernel(sub_kernel), root=v, radius=t, distances=dist
        )
    dist = g.bfs_distances(v, max_dist=t)
    sub = ECGraph()
    for w in dist:
        sub.add_node(w)
    if t >= 1:
        for e in g.edges():
            du = dist.get(e.u)
            dv = dist.get(e.v)
            candidates = [d for d in (du, dv) if d is not None]
            if not candidates:
                continue
            if min(candidates) <= t - 1 and du is not None and dv is not None:
                sub.add_edge(e.u, e.v, e.color, eid=e.eid)
    return Ball(graph=sub, root=v, radius=t, distances=dist)
