"""Graph families and generators used throughout tests, examples and benches.

Provides properly edge-coloured EC versions of standard families (paths,
cycles, stars, complete graphs, caterpillars, random bounded-degree graphs),
the loopy one-node graphs that seed the lower-bound construction, and random
trees-with-loops matching the shape invariants (P2)/(P3) of Section 4.
"""

from __future__ import annotations

import random
from itertools import count
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from .multigraph import ECGraph

Node = Hashable

__all__ = [
    "greedy_edge_coloring",
    "ec_from_simple_edges",
    "single_node_with_loops",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "caterpillar",
    "random_bounded_degree_graph",
    "random_regular_graph",
    "random_loopy_tree",
    "nx_to_simple_edges",
]


def greedy_edge_coloring(edges: Sequence[Tuple[Node, Node]]) -> Dict[Tuple[Node, Node], int]:
    """Properly colour the edges of a simple graph with at most ``2*Delta - 1`` colours.

    Greedy: process edges in the given order, assign the smallest colour
    (1-based) unused at either endpoint.  Deterministic for a fixed order.
    """
    used: Dict[Node, set] = {}
    coloring: Dict[Tuple[Node, Node], int] = {}
    for (u, v) in edges:
        taken = used.setdefault(u, set()) | used.setdefault(v, set())
        color = next(c for c in count(1) if c not in taken)
        coloring[(u, v)] = color
        used[u].add(color)
        used[v].add(color)
    return coloring


def ec_from_simple_edges(edges: Sequence[Tuple[Node, Node]], nodes: Optional[Iterable[Node]] = None) -> ECGraph:
    """Build an EC-graph from simple-graph edges via greedy proper colouring."""
    g = ECGraph()
    if nodes is not None:
        for v in nodes:
            g.add_node(v)
    coloring = greedy_edge_coloring(edges)
    for (u, v), c in coloring.items():
        g.add_edge(u, v, c)
    return g


def single_node_with_loops(num_loops: int, node: Node = 0, first_color: int = 1) -> ECGraph:
    """The graph ``G_0`` of the base case (Section 4.2): one node, ``num_loops``
    differently coloured loops, degree ``num_loops``."""
    g = ECGraph()
    g.add_node(node)
    for c in range(first_color, first_color + num_loops):
        g.add_edge(node, node, c)
    return g


def path_graph(n: int) -> ECGraph:
    """Properly 2-edge-coloured path on nodes ``0 .. n-1``."""
    if n < 1:
        raise ValueError("need at least one node")
    g = ECGraph()
    for v in range(n):
        g.add_node(v)
    for i in range(n - 1):
        g.add_edge(i, i + 1, 1 + (i % 2))
    return g


def cycle_graph(n: int) -> ECGraph:
    """Properly edge-coloured cycle on ``n >= 3`` nodes (2 colours if ``n`` even, 3 if odd)."""
    if n < 3:
        raise ValueError("cycles need at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return ec_from_simple_edges(edges)


def star_graph(k: int) -> ECGraph:
    """Star ``K_{1,k}``: centre ``0`` joined to leaves ``1 .. k``; colour = leaf index."""
    g = ECGraph()
    g.add_node(0)
    for i in range(1, k + 1):
        g.add_edge(0, i, i)
    return g


def complete_graph(n: int) -> ECGraph:
    """Complete graph ``K_n`` with a proper edge colouring (round-robin, n-1 or n colours)."""
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return ec_from_simple_edges(edges, nodes=range(n))


def caterpillar(spine: int, legs: int) -> ECGraph:
    """A caterpillar: a ``spine``-node path, each spine node with ``legs`` leaves.

    Maximum degree is ``legs + 2`` for interior spine nodes.  Spine nodes are
    ``("s", i)`` and leaves ``("l", i, j)``.
    """
    edges: List[Tuple[Node, Node]] = []
    for i in range(spine - 1):
        edges.append((("s", i), ("s", i + 1)))
    for i in range(spine):
        for j in range(legs):
            edges.append((("s", i), ("l", i, j)))
    return ec_from_simple_edges(edges)


def random_bounded_degree_graph(n: int, max_degree: int, seed: int) -> ECGraph:
    """Random simple graph with maximum degree at most ``max_degree``, properly coloured.

    Edges are sampled by repeatedly joining two random nodes whose degrees
    are still below the bound; density targets roughly ``n * max_degree / 4``
    edges, so instances are neither trees nor near-regular.
    """
    rng = random.Random(seed)
    degree = {v: 0 for v in range(n)}
    chosen = set()
    target = max(1, (n * max_degree) // 4)
    attempts = 0
    while len(chosen) < target and attempts < 50 * target:
        attempts += 1
        u, v = rng.sample(range(n), 2)
        key = (min(u, v), max(u, v))
        if key in chosen or degree[u] >= max_degree or degree[v] >= max_degree:
            continue
        chosen.add(key)
        degree[u] += 1
        degree[v] += 1
    return ec_from_simple_edges(sorted(chosen), nodes=range(n))


def random_regular_graph(n: int, d: int, seed: int) -> ECGraph:
    """Random ``d``-regular simple graph (via networkx), properly edge-coloured."""
    nxg = nx.random_regular_graph(d, n, seed=seed)
    return ec_from_simple_edges(sorted(nxg.edges()), nodes=range(n))


def random_loopy_tree(
    n: int,
    loops_per_node: int,
    seed: int,
    tree_colors_offset: int = 100,
) -> ECGraph:
    """A random tree with ``loops_per_node`` loops on every node.

    Matches the structural invariants of the Section 4 construction: ignoring
    loops the graph is a tree (P3), and every node has at least
    ``loops_per_node`` loops, hence the graph is ``loops_per_node``-loopy
    (P2).  Loop colours ``1 .. loops_per_node`` are shared by all nodes; tree
    edges use colours ``>= tree_colors_offset`` so they never clash.
    """
    rng = random.Random(seed)
    edges: List[Tuple[Node, Node]] = []
    for v in range(1, n):
        parent = rng.randrange(v)
        edges.append((parent, v))
    coloring = greedy_edge_coloring(edges)
    g = ECGraph()
    for v in range(n):
        g.add_node(v)
    for (u, v), c in coloring.items():
        g.add_edge(u, v, c + tree_colors_offset - 1)
    for v in range(n):
        for c in range(1, loops_per_node + 1):
            g.add_edge(v, v, c)
    return g


def nx_to_simple_edges(nxg: "nx.Graph") -> List[Tuple[Node, Node]]:
    """Sorted edge list of a networkx graph (helper for colouring pipelines)."""
    return sorted(tuple(sorted(e)) for e in nxg.edges())
