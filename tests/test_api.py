"""Tests for the public facade (repro.api) and the runtime's keyword-only API."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import api
from repro.graphs.families import path_graph
from repro.graphs.ports import po_double_from_ec
from repro.local.runtime import ECNetwork, run, run_rounds
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.proposal import ProposalFM


class TestApiRun:
    def test_run_on_ec_graph(self):
        result = api.run(ProposalFM("EC"), path_graph(4))
        assert result.halted
        assert set(result.outputs) == set(path_graph(4).nodes())

    def test_run_on_po_graph(self):
        doubled = po_double_from_ec(path_graph(3))
        result = api.run(ProposalFM("PO"), doubled)
        assert result.halted

    def test_run_on_nx_graph_id_model(self):
        result = api.run(ProposalFM("ID"), nx.path_graph(4))
        assert result.halted

    def test_run_exact_rounds_snapshots(self):
        g = path_graph(4)
        bounded = api.run(ProposalFM("EC"), g, rounds=1)
        assert bounded.rounds <= 1
        assert all(out is not None for out in bounded.outputs.values())

    def test_run_on_prebuilt_network(self):
        network = ECNetwork(path_graph(3), globals_={"delta": 2})
        assert api.run(ProposalFM("EC"), network).halted

    def test_globals_with_network_rejected(self):
        network = ECNetwork(path_graph(3))
        with pytest.raises(ValueError, match="globals"):
            api.run(ProposalFM("EC"), network, globals={"delta": 2})

    def test_sanitize_records_access_log(self):
        result = api.run(ProposalFM("EC"), path_graph(3), sanitize=True)
        assert result.access_log is not None
        assert result.access_log.clean


class TestApiRefute:
    def test_direct_ec_algorithm(self):
        result = api.refute(greedy_color_algorithm(), 4, claimed_rounds=1)
        assert result.kind == "locality-violation"

    def test_chain_defaults_to_proposal(self):
        result = api.refute(None, 3, claimed_rounds=1, chain="po")
        assert result.kind == "locality-violation"
        assert "ProposalFM" in result.algorithm
        assert result.algorithm.startswith("ec<=po")

    def test_consistent_beyond_reach(self):
        result = api.refute(greedy_color_algorithm(), 4, claimed_rounds=9)
        assert result.kind == "consistent"

    def test_unknown_chain(self):
        with pytest.raises(ValueError, match="unknown chain"):
            api.refute(None, 3, chain="qc")


class TestApiSweep:
    def test_mapping_grid(self):
        result = api.sweep({"algorithms": "greedy", "deltas": 3})
        assert len(result.rows) == 1
        assert result.rows[0]["status"] == "ok"

    def test_returns_frozen_typed_report(self):
        import dataclasses

        report = api.sweep({"algorithms": "greedy", "deltas": 3}, backend="inline")
        assert isinstance(report, api.SweepReport)
        assert isinstance(report.rows, tuple)
        assert report.backend == "inline"
        assert "via the inline backend" in report.summary
        assert 0.0 <= report.cache_hit_rate <= 1.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.backend = "process"

    def test_facade_reexported_at_package_top_level(self):
        import repro

        assert repro.sweep is api.sweep
        assert repro.SweepReport is api.SweepReport
        assert repro.BenchReport is api.BenchReport
        for name in ("run", "refute", "sweep", "bench"):
            assert name in repro.__all__ and name in api.__all__


class TestRuntimeKeywordOnlyOptions:
    """The PR 3 positional-argument shims are gone: keyword-only for real."""

    def test_positional_max_rounds_rejected(self):
        network = ECNetwork(path_graph(3))
        with pytest.raises(TypeError, match="positional"):
            run(network, ProposalFM("EC"), 50)

    def test_positional_run_rounds_extras_rejected(self):
        network = ECNetwork(path_graph(3))
        with pytest.raises(TypeError, match="positional"):
            run_rounds(network, ProposalFM("EC"), 1, False)

    def test_keyword_form_works_without_warnings(self, recwarn):
        network = ECNetwork(path_graph(3))
        result = run(network, ProposalFM("EC"), max_rounds=50)
        assert result.halted
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]

    def test_run_rounds_keyword_form_works(self):
        network = ECNetwork(path_graph(3))
        result = run_rounds(network, ProposalFM("EC"), 1, sanitize=False)
        assert result.rounds <= 1
