"""Edge-coloured digraphs with loops (PO-graphs).

A PO-graph (paper, Section 3.3 and Figure 2) is a directed multigraph whose
edges carry colours such that

* all *outgoing* edges of a node have pairwise distinct colours, and
* all *incoming* edges of a node have pairwise distinct colours

(an outgoing and an incoming edge at the same node may share a colour).  This
edge-coloured-digraph view is equivalent to the usual port-numbering-with-
orientation definition; the conversions live in :mod:`repro.graphs.ports`.

Loops follow the paper's convention (Section 3.5, Figure 3): a *directed* loop
contributes **+2** to its endpoint's degree — once as the tail (an outgoing
colour slot) and once as the head (an incoming colour slot).

Like :class:`repro.graphs.multigraph.ECGraph`, :class:`POGraph` is a thin
mutable view over the :mod:`repro.graphs.kernel` substrate (directed slot
discipline): ``.kernel`` freezes the current state into a digest-addressed
:class:`~repro.graphs.kernel.GraphKernel` and :meth:`POGraph.fork`/:meth:`copy`
derive structurally-shared copies.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional

from .kernel import DiEdge, GraphBuilder, GraphKernel, ImproperPOColoringError

Node = Hashable
Color = int
EdgeId = int

__all__ = ["DiEdge", "POGraph", "ImproperPOColoringError"]


class POGraph:
    """A PO-graph: directed multigraph with the PO edge-colouring discipline.

    Each node has at most one outgoing arc and at most one incoming arc of any
    given colour; properness is enforced on insertion.  A directed loop at
    ``v`` occupies both the outgoing and the incoming colour-``c`` slot of
    ``v`` and counts +2 towards ``degree(v)``.
    """

    __slots__ = ("_b", "_k")

    def __init__(self) -> None:
        self._b = GraphBuilder(directed=True)
        self._k: Optional[GraphKernel] = None

    # ------------------------------------------------------------------
    # kernel plumbing
    # ------------------------------------------------------------------
    @classmethod
    def _wrap(cls, builder: GraphBuilder) -> "POGraph":
        g = cls.__new__(cls)
        g._b = builder
        g._k = None
        return g

    @classmethod
    def from_kernel(cls, kernel: GraphKernel) -> "POGraph":
        """A mutable view forked from a frozen kernel (shares all structure)."""
        if not kernel.directed:
            raise ValueError("POGraph views are directed; got an EC kernel")
        g = cls._wrap(kernel.builder())
        g._k = kernel
        return g

    @property
    def kernel(self) -> GraphKernel:
        """The frozen :class:`GraphKernel` snapshot of the current state."""
        if self._k is None:
            self._k = self._b.freeze()
        return self._k

    @property
    def digest(self) -> str:
        """Content digest of the current state (see :class:`GraphKernel`)."""
        return self.kernel.digest

    def rooted_digest(self, root: Optional[Node]) -> str:
        """Digest of the graph with a distinguished root label."""
        return self.kernel.rooted_digest(root)

    def fork(self) -> "POGraph":
        """An independent structurally-shared copy (labels and ids preserved)."""
        return POGraph.from_kernel(self.kernel)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> Node:
        """Add an isolated node (no-op if already present)."""
        self._k = None
        return self._b.add_node(v)

    def add_edge(self, tail: Node, head: Node, color: Color, eid: Optional[EdgeId] = None) -> EdgeId:
        """Add an arc ``tail -> head`` of the given colour.

        Raises :class:`ImproperPOColoringError` if ``tail`` already has an
        outgoing arc of this colour or ``head`` already has an incoming one.
        """
        self._k = None
        return self._b.add_edge(tail, head, color, eid=eid)

    def remove_edge(self, eid: EdgeId) -> DiEdge:
        """Remove the arc with id ``eid`` and return its record."""
        self._k = None
        return self._b.remove_edge(eid)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def nodes(self) -> List[Node]:
        """List of all nodes."""
        return self._b.nodes()

    def edges(self) -> List[DiEdge]:
        """List of all arc records."""
        return self._b.edges()

    def edge(self, eid: EdgeId) -> DiEdge:
        """The arc with id ``eid``."""
        return self._b.edge(eid)

    def has_node(self, v: Node) -> bool:
        """Whether ``v`` is a node."""
        return self._b.has_node(v)

    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._b.num_nodes()

    def num_edges(self) -> int:
        """Number of arcs (a loop counts once as an arc)."""
        return self._b.num_edges()

    def out_colors(self, v: Node) -> List[Color]:
        """Colours of outgoing arcs at ``v``."""
        return [c for (kind, c) in self._b._slots[v] if kind == "out"]

    def in_colors(self, v: Node) -> List[Color]:
        """Colours of incoming arcs at ``v``."""
        return [c for (kind, c) in self._b._slots[v] if kind == "in"]

    def out_edge(self, v: Node, color: Color) -> Optional[DiEdge]:
        """The outgoing colour-``color`` arc at ``v``, or ``None``."""
        eid = self._b._slots[v].get(("out", color))
        return None if eid is None else self._b._edges[eid]

    def in_edge(self, v: Node, color: Color) -> Optional[DiEdge]:
        """The incoming colour-``color`` arc at ``v``, or ``None``."""
        eid = self._b._slots[v].get(("in", color))
        return None if eid is None else self._b._edges[eid]

    def out_edges(self, v: Node) -> List[DiEdge]:
        """Outgoing arcs at ``v`` in colour order (loops included)."""
        edges = self._b._edges
        pairs = sorted(
            (c, eid) for (kind, c), eid in self._b._slots[v].items() if kind == "out"
        )
        return [edges[eid] for _, eid in pairs]

    def in_edges(self, v: Node) -> List[DiEdge]:
        """Incoming arcs at ``v`` in colour order (loops included)."""
        edges = self._b._edges
        pairs = sorted(
            (c, eid) for (kind, c), eid in self._b._slots[v].items() if kind == "in"
        )
        return [edges[eid] for _, eid in pairs]

    def incident_edges(self, v: Node) -> List[DiEdge]:
        """All arcs with ``v`` as tail or head; loops appear once."""
        seen: Dict[EdgeId, DiEdge] = {}
        for e in self.out_edges(v) + self.in_edges(v):
            seen[e.eid] = e
        return list(seen.values())

    def degree(self, v: Node) -> int:
        """PO degree: out-slots + in-slots.  A directed loop counts +2."""
        return len(self._b._slots[v])

    def max_degree(self) -> int:
        """Maximum PO degree over all nodes."""
        return max((len(s) for s in self._b._slots.values()), default=0)

    def loop_count(self, v: Node) -> int:
        """Number of directed loops at ``v``."""
        return sum(1 for e in self.out_edges(v) if e.is_loop)

    def colors(self) -> List[Color]:
        """Sorted list of colours used."""
        return sorted({e.color for e in self._b._edges.values()})

    def neighbors(self, v: Node) -> List[Node]:
        """Distinct nodes adjacent to ``v`` in either direction."""
        seen: List[Node] = []
        for e in self.incident_edges(v):
            w = e.head if e.tail == v else e.tail
            if w not in seen:
                seen.append(w)
        return seen

    # ------------------------------------------------------------------
    # traversal / copy
    # ------------------------------------------------------------------
    def bfs_distances(self, source: Node, max_dist: Optional[int] = None) -> Dict[Node, int]:
        """Undirected BFS distances from ``source`` (arcs traversed both ways)."""
        dist = {source: 0}
        frontier = [source]
        d = 0
        while frontier and (max_dist is None or d < max_dist):
            d += 1
            nxt: List[Node] = []
            for v in frontier:
                for w in self.neighbors(v):
                    if w not in dist:
                        dist[w] = d
                        nxt.append(w)
            frontier = nxt
        return dist

    def is_connected(self) -> bool:
        """Whether the underlying undirected graph is connected."""
        if self.num_nodes() == 0:
            return True
        src = next(iter(self._b._slots))
        return len(self.bfs_distances(src)) == self.num_nodes()

    def copy(self) -> "POGraph":
        """A copy preserving labels and edge ids (a structurally-shared fork)."""
        return self.fork()

    def validate(self) -> None:
        """Check internal consistency; raises ``AssertionError`` on corruption."""
        for v, slots in self._b._slots.items():
            for (kind, color), eid in slots.items():
                e = self._b._edges[eid]
                assert e.color == color
                assert (e.tail if kind == "out" else e.head) == v
        for e in self._b._edges.values():
            assert self._b._slots[e.tail][("out", e.color)] == e.eid
            assert self._b._slots[e.head][("in", e.color)] == e.eid

    def __contains__(self, v: Node) -> bool:
        return self._b.has_node(v)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._b._slots)

    def __len__(self) -> int:
        return self._b.num_nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"POGraph(n={self.num_nodes()}, m={self.num_edges()}, colors={self.colors()})"
