"""LOCAL-model simulator: networks, algorithm interfaces, views, identifiers."""

from .algorithm import (
    DistributedAlgorithm,
    ECWeightAlgorithm,
    POWeightAlgorithm,
    SimulatedECWeights,
    SimulatedPOWeights,
)
from .context import NodeContext
from .identifiers import (
    assign_ids_respecting_order,
    interpolate_assignments,
    order_respecting_assignments,
    relabel_single_node,
    sparse_subset,
)
from .runtime import ECNetwork, IDNetwork, Network, PONetwork, RunResult, run, run_rounds
from .randomized import RandomTape, my_coins, tape_globals, uniform_tape
from .sanitize import AccessLog, LocalityViolation, SanitizedContext, wrap_contexts
from .views import FullInformationEC, ec_view_tree

__all__ = [
    "DistributedAlgorithm",
    "ECWeightAlgorithm",
    "SimulatedECWeights",
    "POWeightAlgorithm",
    "SimulatedPOWeights",
    "NodeContext",
    "assign_ids_respecting_order",
    "interpolate_assignments",
    "order_respecting_assignments",
    "relabel_single_node",
    "sparse_subset",
    "ECNetwork",
    "IDNetwork",
    "Network",
    "PONetwork",
    "RunResult",
    "run",
    "run_rounds",
    "RandomTape",
    "my_coins",
    "tape_globals",
    "uniform_tape",
    "AccessLog",
    "LocalityViolation",
    "SanitizedContext",
    "wrap_contexts",
    "FullInformationEC",
    "ec_view_tree",
]
