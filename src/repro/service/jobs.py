"""Job machinery behind the sweep-as-a-service HTTP API.

:class:`SweepService` is the transport-free core: a bounded FIFO job queue
drained by a fixed pool of worker threads, each running one submitted
:class:`~repro.engine.grid.GridSpec` through :func:`repro.api.sweep`.  The
HTTP layer (:mod:`repro.service.server`) is a thin translation on top, so
every behaviour here is testable without opening a socket.

Jobs are plain directories.  Each job owns ``<data_dir>/jobs/<id>/`` and a
sweep writes its ordinary artifacts there — JSONL result shards,
``summary.json``, ``trace.json`` and the schema-v1 ``progress.jsonl``
(:mod:`repro.obs.progress`).  "Streaming" a job's progress is therefore
just tailing a file the engine already maintains, and serving finished
rows is reading the store's summary: the service adds queueing, tenancy
and backpressure, never a second result format, which is what keeps job
rows byte-identical to the equivalent CLI sweep.

Tenancy rides on the multi-tenant :class:`~repro.engine.cache.
CanonicalFormCache`: each job sweeps with its tenant's namespaced cache
directory plus a read-through shared tier, so concurrent tenants dedupe
canonicalisation globally without being able to read or evict each other's
private entries (``docs/service.md``).

Backpressure follows the engine's bounded-retry vocabulary: a full queue
or an exhausted per-tenant token bucket raises :class:`Backpressure` with
a ``retry_after`` hint, which the HTTP layer maps to ``429`` +
``Retry-After``.

This module is a sanctioned worker module (``LintConfig.worker_modules``)
for its drain-loop threads, and a sanctioned clock reader
(``LintConfig.clock_modules``): the token bucket's clock is injected and
defaults to :func:`time.monotonic`, feeding only admission control —
never any model output.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

from .. import api
from ..engine.cache import validate_tenant
from ..engine.faults import as_plan
from ..engine.grid import GridSpec, expand
from ..engine.store import ResultStore
from ..obs.progress import ProgressEmitter, read_progress_events

__all__ = [
    "Backpressure",
    "Job",
    "JobCancelled",
    "JOB_STATES",
    "ServiceConfig",
    "SweepService",
    "TokenBucket",
]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class JobCancelled(RuntimeError):
    """Raised inside a running sweep when its job's cancel flag is set."""


class Backpressure(RuntimeError):
    """The service cannot admit a submission right now; retry later.

    ``retry_after`` is the server's hint in seconds — the HTTP layer
    surfaces it as a ``Retry-After`` header on a ``429`` response.
    """

    def __init__(self, reason: str, retry_after: float):
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(f"{reason} (retry after {retry_after:.2f}s)")


class TokenBucket:
    """Classic token-bucket rate limiter with an injected clock.

    ``rate`` tokens refill per second up to ``burst``; :meth:`acquire`
    takes one token and returns ``0.0``, or returns the seconds until the
    next token when the bucket is empty (taking nothing).
    """

    def __init__(self, rate: float, burst: float, clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive, got {rate}/{burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def acquire(self) -> float:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass(frozen=True)
class ServiceConfig:
    """Static knobs of one :class:`SweepService` instance.

    ``sweep_options`` are engine execution options (``workers``,
    ``backend``, ``cell_timeout``, …) forwarded verbatim to every job's
    :func:`repro.api.sweep` call; ``rate == 0`` disables per-tenant rate
    limiting; ``disk_budget`` bounds each cache tier directory in bytes.
    """

    data_dir: Path = Path("service-data")
    cache_dir: Optional[Path] = None
    shared_cache: bool = True
    disk_budget: Optional[int] = None
    queue_size: int = 16
    job_workers: int = 1
    rate: float = 0.0
    burst: int = 4
    progress_interval: float = 0.2
    default_tenant: str = "public"
    sweep_options: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class Job:
    """One submitted sweep and its lifecycle state."""

    id: str
    tenant: str
    grid: GridSpec
    directory: Path
    cells: int
    state: str = "queued"
    error: Optional[str] = None
    summary: Optional[str] = None
    cache: Optional[dict] = None
    rows: int = 0
    faults: Optional[dict] = None
    cancel: threading.Event = field(default_factory=threading.Event)

    def as_dict(self) -> dict:
        """The JSON-ready account the API serves for this job."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "grid": self.grid.as_dict(),
            "cells": self.cells,
            "rows": self.rows,
            "error": self.error,
            "summary": self.summary,
            "cache": self.cache,
        }


class _CancellableProgress:
    """Progress wrapper that aborts the owning sweep when a job is cancelled.

    Raising from the emitter's ``update`` hook unwinds ``run_sweep`` from
    inside its per-row callback; the driver's ``finally`` then calls
    ``close()`` on this wrapper, which flushes the inner emitter's
    ``aborted`` event exactly once (the emitter's own idempotence).  Only
    the thread that created the wrapper raises — a background progress
    monitor polling the same emitter must not die of someone else's
    cancellation.
    """

    def __init__(self, inner: ProgressEmitter, cancel: threading.Event):
        self._inner = inner
        self._cancel = cancel
        self._owner = threading.get_ident()

    @property
    def interval(self) -> float:
        return self._inner.interval

    def start(self, total: int, resumed: int = 0) -> None:
        # forward first: a pre-cancelled job still opens the event log, so
        # its abort is observable as start -> aborted
        self._inner.start(total, resumed=resumed)
        self._check()

    def update(self, done: int, **kwargs) -> None:
        self._check()
        self._inner.update(done, **kwargs)

    def finish(self, done: int, **kwargs) -> None:
        self._inner.finish(done, **kwargs)

    def close(self) -> None:
        self._inner.close()

    def _check(self) -> None:
        if self._cancel.is_set() and threading.get_ident() == self._owner:
            raise JobCancelled("job cancelled")


class SweepService:
    """Bounded job queue + worker threads driving :func:`repro.api.sweep`.

    All mutable state is guarded by one lock; the worker threads' targets
    are bound methods touching only instance state (the engine-concurrency
    lint's sanctioned shape).  ``start()``/``stop()`` bracket the worker
    pool; submissions are accepted while stopped and drain on start.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.data_dir = Path(self.config.data_dir)
        self.jobs_dir = self.data_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir = Path(self.config.cache_dir or self.data_dir / "cache")
        self.shared_dir = self.cache_dir / "shared" if self.config.shared_cache else None
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._buckets: Dict[str, TokenBucket] = {}
        self._sequence = 0
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(max(1, self.config.job_workers)):
            thread = threading.Thread(
                target=self._drain_loop, daemon=True, name=f"sweep-service-{index}"
            )
            self._threads.append(thread)
            thread.start()

    def stop(self) -> None:
        """Stop the workers after their current job; queued jobs remain."""
        self._stop.set()
        with self._wakeup:
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []

    # -- submission and queries --------------------------------------------

    def submit(self, grid, tenant: Optional[str] = None, faults=None) -> Job:
        """Validate and enqueue one sweep; returns the queued :class:`Job`.

        Raises :class:`ValueError` on a bad grid/tenant/fault plan and
        :class:`Backpressure` when the queue is full or the tenant's rate
        budget is exhausted.
        """
        tenant = validate_tenant(tenant or self.config.default_tenant)
        spec = grid if isinstance(grid, GridSpec) else GridSpec.from_mapping(grid)
        cells = len(expand(spec))  # also validates the axes
        plan = as_plan(faults)
        with self._lock:
            if self.config.rate > 0:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = self._buckets[tenant] = TokenBucket(
                        self.config.rate, self.config.burst
                    )
                wait = bucket.acquire()
                if wait > 0:
                    raise Backpressure(f"tenant {tenant!r} rate limited", wait)
            if len(self._queue) >= self.config.queue_size:
                # the engine's bounded-retry idiom: don't block, name the
                # backoff — one queue drain period is the honest hint
                raise Backpressure(
                    "job queue full",
                    max(1.0, self.config.progress_interval * self.config.queue_size),
                )
            self._sequence += 1
            job_id = f"job-{self._sequence:06d}"
            job = Job(
                id=job_id,
                tenant=tenant,
                grid=spec,
                directory=self.jobs_dir / job_id,
                cells=cells,
                faults=plan.as_dict() if plan is not None else None,
            )
            job.directory.mkdir(parents=True, exist_ok=True)
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._queue.append(job)
            self._wakeup.notify()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, tenant: Optional[str] = None) -> List[Job]:
        with self._lock:
            listed = [self._jobs[job_id] for job_id in self._order]
        if tenant is not None:
            listed = [job for job in listed if job.tenant == tenant]
        return listed

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; ``False`` when already settled."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state in ("done", "failed", "cancelled"):
                return False
            if job.state == "queued":
                job.state = "cancelled"
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass
                return True
        # running: flag it; the sweep aborts at its next progress beat
        job.cancel.set()
        return True

    def rows(self, job_id: str) -> Optional[List[dict]]:
        """A finished job's merged result rows, straight from its store."""
        job = self.get(job_id)
        if job is None or job.state != "done":
            return None
        summary = ResultStore(job.directory).read_summary()
        return summary.get("rows", []) if summary else []

    def progress(self, job_id: str, offset: int = 0) -> Optional[dict]:
        """Tail a job's schema-v1 progress events from ``offset``."""
        job = self.get(job_id)
        if job is None:
            return None
        path = job.directory / "progress.jsonl"
        events = read_progress_events(path) if path.exists() else []
        return {"id": job_id, "offset": len(events), "events": events[offset:]}

    def stats(self) -> dict:
        """A JSON-ready account of queue, jobs and tenancy."""
        with self._lock:
            states: Dict[str, int] = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "queue": {"depth": len(self._queue), "capacity": self.config.queue_size},
                "jobs": states,
                "tenants": sorted({job.tenant for job in self._jobs.values()}),
                "workers": len(self._threads),
                "cache_dir": str(self.cache_dir),
                "shared_cache": self.shared_dir is not None,
                "disk_budget": self.config.disk_budget,
            }

    # -- the worker loop ---------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._stop.is_set():
                    self._wakeup.wait(timeout=0.2)
                if self._stop.is_set():
                    return
                job = self._queue.popleft()
                job.state = "running"
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        emitter = ProgressEmitter(
            path=job.directory / "progress.jsonl",
            interval=self.config.progress_interval,
        )
        progress = _CancellableProgress(emitter, job.cancel)
        try:
            self._sweep_job(job, progress)
        except JobCancelled:
            with self._lock:
                job.state = "cancelled"
        except Exception as exc:  # noqa: BLE001 - every failure becomes the job's record
            with self._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
        finally:
            # idempotent: flushes the `aborted` event exactly once when the
            # sweep unwound before its own close (e.g. a cancel raised from
            # the start hook, before run_sweep's finally existed)
            progress.close()

    def _sweep_job(self, job: Job, progress: "_CancellableProgress") -> None:
        report = api.sweep(
            job.grid,
            out=str(job.directory),
            cache_dir=str(self.cache_dir),
            cache_tenant=job.tenant,
            cache_shared_dir=str(self.shared_dir) if self.shared_dir else None,
            cache_disk_budget=self.config.disk_budget,
            faults=job.faults,
            progress=progress,
            **dict(self.config.sweep_options),
        )
        with self._lock:
            job.state = "done"
            job.summary = report.summary
            job.cache = report.cache.as_dict()
            job.rows = len(report.rows)
