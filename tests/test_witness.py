"""Tests for witness datatypes (repro.core.witness)."""

from __future__ import annotations

from fractions import Fraction

from repro.core.witness import AlgorithmFailure, LowerBoundWitness, StepWitness
from repro.graphs.families import single_node_with_loops

F = Fraction


def make_step(index=0, iso=True, trees=True, wg=F(0), wh=F(1)):
    g = single_node_with_loops(3)
    return StepWitness(
        index=index,
        graph_g=g,
        graph_h=g.copy(),
        node_g=0,
        node_h=0,
        color=1,
        weight_g=wg,
        weight_h=wh,
        balls_isomorphic=iso,
        loop_budget=3,
        trees=trees,
        side="base",
    )


class TestStepWitness:
    def test_valid_when_all_checks_pass(self):
        assert make_step().valid

    def test_invalid_without_isomorphism(self):
        assert not make_step(iso=False).valid

    def test_invalid_without_trees(self):
        assert not make_step(trees=False).valid

    def test_invalid_with_equal_weights(self):
        assert not make_step(wg=F(1, 2), wh=F(1, 2)).valid


class TestLowerBoundWitness:
    def test_achieved_depth_empty(self):
        w = LowerBoundWitness(algorithm="x", delta=5)
        assert w.achieved_depth == -1
        assert w.all_valid  # vacuously

    def test_achieved_depth_max_valid(self):
        w = LowerBoundWitness(algorithm="x", delta=5)
        w.steps = [make_step(0), make_step(1), make_step(2, iso=False)]
        assert w.achieved_depth == 1
        assert not w.all_valid

    def test_conclusion_text(self):
        w = LowerBoundWitness(algorithm="greedy", delta=4)
        w.steps = [make_step(0), make_step(1), make_step(2)]
        text = w.conclusion()
        assert "greedy" in text and "> 2 rounds" in text


class TestAlgorithmFailure:
    def test_carries_certificate(self):
        g = single_node_with_loops(2)
        err = AlgorithmFailure("boom", graph=g, detail=(1, 2))
        assert err.graph is g and err.detail == (1, 2)
        assert "boom" in str(err)


class TestReverify:
    def test_sound_witness_passes(self):
        from repro.core.adversary import run_adversary
        from repro.core.witness import reverify_step
        from repro.matching.greedy_color import greedy_color_algorithm

        witness = run_adversary(greedy_color_algorithm(), 5)
        for step in witness.steps:
            assert reverify_step(step, witness.delta) == []

    def test_tampered_witness_caught(self):
        from repro.core.adversary import run_adversary
        from repro.core.witness import reverify_step
        from repro.matching.greedy_color import greedy_color_algorithm

        witness = run_adversary(greedy_color_algorithm(), 4)
        step = witness.steps[-1]
        # tamper: claim equal weights
        step.weight_h = step.weight_g
        problems = reverify_step(step, witness.delta)
        assert any("weights do not differ" in p for p in problems)

    def test_structurally_broken_witness_caught(self):
        from repro.core.witness import reverify_step

        step = make_step()  # single-node graphs; colour 1 IS a loop
        step_problems = reverify_step(step, delta=3)
        assert step_problems == []
        # now break the tree property by adding a cycle to graph_g
        step.graph_g.add_edge("x", "y", 7)
        step.graph_g.add_edge("y", "z", 8)
        step.graph_g.add_edge("x", "z", 9)
        problems = reverify_step(step, delta=3)
        assert any("(P3)" in p for p in problems)
