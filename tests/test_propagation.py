"""Tests for the propagation principle (repro.core.propagation, Facts 3/8)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.graphs.families import random_loopy_tree, single_node_with_loops
from repro.graphs.multigraph import ECGraph
from repro.core.propagation import (
    PropagationError,
    disagreeing_colors,
    disagreement_walk,
    next_disagreement,
    node_load_of_output,
)

F = Fraction


def loopy_path() -> ECGraph:
    """a -- b, with loops: a has loops 2,3; b has loops 2,3 (colour 1 = edge)."""
    g = ECGraph()
    g.add_edge("a", "b", 1)
    g.add_edge("a", "a", 2)
    g.add_edge("a", "a", 3)
    g.add_edge("b", "b", 2)
    g.add_edge("b", "b", 3)
    return g


def saturated_outputs(edge_w, a_loops, b_loops):
    """Two saturated assignments on loopy_path parameterised by weights."""
    return {
        "a": {1: edge_w, 2: a_loops[0], 3: a_loops[1]},
        "b": {1: edge_w, 2: b_loops[0], 3: b_loops[1]},
    }


class TestLoads:
    def test_node_load(self):
        g = loopy_path()
        out = saturated_outputs(F(1, 2), (F(1, 4), F(1, 4)), (F(1, 4), F(1, 4)))
        assert node_load_of_output(g, out, "a") == F(1)

    def test_disagreeing_colors(self):
        g = loopy_path()
        o1 = saturated_outputs(F(1, 2), (F(1, 4), F(1, 4)), (F(1, 4), F(1, 4)))
        o2 = saturated_outputs(F(1, 2), (F(1, 2), F(0)), (F(1, 4), F(1, 4)))
        assert disagreeing_colors(o1, o2, "a") == [2, 3]
        assert disagreeing_colors(o1, o2, "b") == []


class TestFact3:
    def test_second_disagreement_exists(self):
        """Saturated in both + one disagreement => another disagreement."""
        g = loopy_path()
        o1 = saturated_outputs(F(1, 2), (F(1, 4), F(1, 4)), (F(1, 4), F(1, 4)))
        o2 = saturated_outputs(F(1, 4), (F(1, 2), F(1, 4)), (F(1, 2), F(1, 4)))
        c = next_disagreement(g, o1, o2, "a", incoming=1)
        assert c == 2

    def test_unsaturated_rejected(self):
        g = loopy_path()
        o1 = saturated_outputs(F(1, 2), (F(1, 4), F(1, 4)), (F(1, 4), F(1, 4)))
        o2 = saturated_outputs(F(1, 4), (F(1, 4), F(1, 4)), (F(1, 4), F(1, 4)))
        with pytest.raises(PropagationError, match="not saturated"):
            next_disagreement(g, o1, o2, "a", incoming=1)

    def test_no_incoming_disagreement_rejected(self):
        g = loopy_path()
        o1 = saturated_outputs(F(1, 2), (F(1, 4), F(1, 4)), (F(1, 4), F(1, 4)))
        with pytest.raises(PropagationError, match="no disagreement"):
            next_disagreement(g, o1, o1, "a", incoming=1)


class TestWalk:
    def test_walk_resolves_at_loop(self):
        g = loopy_path()
        o1 = saturated_outputs(F(1, 2), (F(1, 4), F(1, 4)), (F(1, 4), F(1, 4)))
        o2 = saturated_outputs(F(1, 4), (F(1, 2), F(1, 4)), (F(1, 2), F(1, 4)))
        node, color, trail = disagreement_walk(g, o1, o2, "a", 1)
        assert node == "a" and color == 2
        assert g.edge_at(node, color).is_loop
        assert trail == [("a", 2)]

    def test_walk_crosses_tree_edges(self):
        """Disagreement injected at one end travels the path to a far loop."""
        g = ECGraph()
        g.add_edge("a", "b", 1)
        g.add_edge("b", "c", 4)
        g.add_edge("a", "a", 2)
        g.add_edge("b", "b", 2)
        g.add_edge("c", "c", 2)
        o1 = {
            "a": {1: F(1, 2), 2: F(1, 2)},
            "b": {1: F(1, 2), 4: F(1, 4), 2: F(1, 4)},
            "c": {4: F(1, 4), 2: F(3, 4)},
        }
        o2 = {
            "a": {1: F(1, 4), 2: F(3, 4)},
            "b": {1: F(1, 4), 4: F(1, 2), 2: F(1, 4)},
            "c": {4: F(1, 2), 2: F(1, 2)},
        }
        # start at 'a' with the disagreement on the loop... walk from the edge
        node, color, trail = disagreement_walk(g, o1, o2, "a", 2)
        assert (node, color) == ("c", 2)
        assert [n for n, _ in trail] == ["a", "b", "c"]

    def test_walk_requires_tree(self):
        from repro.graphs.families import cycle_graph

        g = cycle_graph(4)
        with pytest.raises(PropagationError, match="tree"):
            disagreement_walk(g, {}, {}, 0, 1)

    def test_walk_never_returns_start_color(self):
        """The resolving loop differs from the incoming edge (e* != e)."""
        g = single_node_with_loops(3)
        o1 = {0: {1: F(1, 3), 2: F(1, 3), 3: F(1, 3)}}
        o2 = {0: {1: F(1, 3), 2: F(1, 2), 3: F(1, 6)}}
        node, color, _ = disagreement_walk(g, o1, o2, 0, 2)
        assert color == 3  # not the incoming colour 2
