"""Tests for forest decomposition (repro.coloring.forests)."""

from __future__ import annotations

import networkx as nx

from repro.coloring.forests import forest_decomposition, validate_forest


class TestDecomposition:
    def test_every_edge_in_exactly_one_forest(self):
        g = nx.random_regular_graph(4, 14, seed=0)
        forests = forest_decomposition(g)
        covered = []
        for parent in forests:
            for v, p in parent.items():
                if p is not None:
                    covered.append(tuple(sorted((v, p))))
        assert sorted(covered) == sorted(tuple(sorted(e)) for e in g.edges())

    def test_number_of_forests_is_delta(self):
        g = nx.star_graph(5)  # Delta = 5
        forests = forest_decomposition(g)
        assert len(forests) == 5

    def test_each_forest_acyclic(self):
        for seed in range(4):
            g = nx.gnp_random_graph(18, 0.3, seed=seed)
            for parent in forest_decomposition(g):
                assert validate_forest(parent)

    def test_parents_have_lower_ids(self):
        """Orientation toward lower identifiers is what makes chains finite."""
        g = nx.cycle_graph(7)
        for parent in forest_decomposition(g):
            for v, p in parent.items():
                if p is not None:
                    assert p < v

    def test_out_degree_at_most_one(self):
        g = nx.complete_graph(6)
        for parent in forest_decomposition(g):
            # a parent map trivially has out-degree <= 1; check shape
            assert set(parent.keys()) == set(g.nodes())

    def test_empty_graph(self):
        assert forest_decomposition(nx.empty_graph(4)) == []


class TestValidator:
    def test_detects_cycle(self):
        assert not validate_forest({0: 1, 1: 0})
        assert validate_forest({0: None, 1: 0})
