"""``locality`` — anonymity of EC/PO/OI node algorithms.

The paper's lower bound lives in anonymous models: an EC/PO/OI algorithm's
output must be a function of the node's *view* only (paper Eq. (1); lift
invariance, condition (2)).  ``NodeContext.node`` is bookkeeping and
``NodeContext.identifier`` only exists in the ID model, so node-local code
of an algorithm declared for an anonymous model must not read either — and
must not smuggle in non-local information by reaching into the simulator
runtime or the global graph from inside a node-local method.

What counts as an *algorithm class*: a class subclassing
``DistributedAlgorithm``, or one declaring a class-level ``model`` while
defining node-local methods (``initial_state`` / ``send`` / ``receive`` /
``output``).  Classes declared ``model = "ID"`` are exempt (identifiers are
the model there).  The one sanctioned ``ctx.node`` read — private coins via
:func:`repro.local.randomized.my_coins` — lives in a module this rule does
not see an algorithm class in; algorithms calling it must still declare
``sanitizer_allow`` for the runtime sanitizer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleUnderLint
from .common import base_names, class_level_model, ctx_param_names, iter_class_functions

RULE_ID = "locality"

_ANONYMOUS_MODELS = {"EC", "PO", "OI"}
_FORBIDDEN_CTX_ATTRS = {"node", "identifier"}
_ALGO_BASES = {"DistributedAlgorithm"}
_NODE_LOCAL_METHODS = {"initial_state", "send", "receive", "output", "snapshot"}
_MACHINERY_MODULES = {"runtime", "graphs", "networkx", "nx"}


def _is_anonymous_algorithm_class(cls: ast.ClassDef) -> bool:
    model = class_level_model(cls)
    if model is not None and model not in _ANONYMOUS_MODELS:
        return False  # explicitly ID (or exotic): identifiers are legal there
    if base_names(cls) & _ALGO_BASES:
        return True
    if model in _ANONYMOUS_MODELS:
        defined = {
            node.name for node in cls.body if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        return bool(defined & _NODE_LOCAL_METHODS)
    return False


def _machinery_import(node: ast.AST) -> bool:
    if isinstance(node, ast.Import):
        return any(alias.name.split(".")[0] in _MACHINERY_MODULES for alias in node.names)
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        parts = set(module.split("."))
        return bool(parts & _MACHINERY_MODULES)
    return False


def check(mod: ModuleUnderLint) -> Iterator[Finding]:
    """Flag identity reads and runtime/graph reach-ins in anonymous algorithms."""
    for cls in ast.walk(mod.tree):
        if not isinstance(cls, ast.ClassDef) or not _is_anonymous_algorithm_class(cls):
            continue
        for func in iter_class_functions(cls):
            ctx_names = ctx_param_names(func)
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and node.attr in _FORBIDDEN_CTX_ATTRS
                    and isinstance(node.value, ast.Name)
                    and node.value.id in ctx_names
                ):
                    yield mod.finding(
                        node,
                        RULE_ID,
                        f"anonymous-model algorithm {cls.name!r} reads "
                        f"ctx.{node.attr}; EC/PO/OI outputs must depend on the "
                        f"view only (declare model = \"ID\" or justify with noqa)",
                    )
                elif isinstance(node, ast.Global):
                    yield mod.finding(
                        node,
                        RULE_ID,
                        f"algorithm {cls.name!r} declares global state inside "
                        f"node-local code; nodes may not share hidden state",
                    )
                elif isinstance(node, (ast.Import, ast.ImportFrom)) and _machinery_import(node):
                    yield mod.finding(
                        node,
                        RULE_ID,
                        f"algorithm {cls.name!r} imports runtime/graph machinery "
                        f"inside a method; node-local code must not inspect the "
                        f"global graph or the simulator",
                    )
