"""Tests for Cole-Vishkin forest 3-colouring (repro.coloring.cole_vishkin)."""

from __future__ import annotations

import random

from repro.coloring.cole_vishkin import (
    cole_vishkin_3color,
    cv_step_count,
    validate_forest_coloring,
)


def random_forest(n: int, seed: int):
    """Random rooted forest as a parent map with identifiers = labels."""
    rng = random.Random(seed)
    parent = {}
    ids = {}
    for v in range(n):
        parent[v] = rng.randrange(v) if v > 0 and rng.random() < 0.9 else None
        ids[v] = v * 7 + 3  # sparse identifiers
    return parent, ids


class TestStepCount:
    def test_log_star_growth(self):
        """The iteration count grows extremely slowly (log*)."""
        assert cv_step_count(5) == 0
        assert cv_step_count(2**16) <= 5
        assert cv_step_count(2**64) <= 6

    def test_monotone(self):
        values = [cv_step_count(m) for m in (10, 100, 10**6, 10**12)]
        assert values == sorted(values)


class TestColoring:
    def test_three_colors_on_path(self):
        parent = {i: i - 1 if i > 0 else None for i in range(50)}
        ids = {i: i * 13 + 5 for i in range(50)}
        colors, rounds = cole_vishkin_3color(parent, ids)
        assert set(colors.values()) <= {0, 1, 2}
        assert validate_forest_coloring(parent, colors)

    def test_random_forests(self):
        for seed in range(5):
            parent, ids = random_forest(60, seed)
            colors, _ = cole_vishkin_3color(parent, ids)
            assert set(colors.values()) <= {0, 1, 2}
            assert validate_forest_coloring(parent, colors)

    def test_star_forest(self):
        parent = {0: None}
        parent.update({i: 0 for i in range(1, 20)})
        ids = {i: i + 100 for i in range(20)}
        colors, _ = cole_vishkin_3color(parent, ids)
        assert validate_forest_coloring(parent, colors)
        assert len({colors[i] for i in range(1, 20)} | {colors[0]}) >= 2

    def test_single_node(self):
        colors, rounds = cole_vishkin_3color({0: None}, {0: 12345})
        assert colors[0] in (0, 1, 2)

    def test_round_count_small(self):
        """Rounds = log* iterations + 6 clean-up; tiny even for big ids."""
        parent, ids = random_forest(40, 3)
        big_ids = {v: i * 10**9 for v, i in ids.items()}
        _, rounds = cole_vishkin_3color(parent, big_ids)
        assert rounds <= cv_step_count(max(big_ids.values())) + 6


class TestValidator:
    def test_rejects_conflict(self):
        parent = {0: None, 1: 0}
        assert not validate_forest_coloring(parent, {0: 1, 1: 1})
        assert validate_forest_coloring(parent, {0: 1, 1: 2})
