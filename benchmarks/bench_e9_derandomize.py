"""E9 — Appendix B (Lemma 10): derandomising local algorithms.

Paper claim: for every n there is an identifier set and a random-string
assignment making the derandomised algorithm correct on all graphs over the
set; the proof amplifies failure probabilities across identifier-disjoint
components.  Measured: the search succeeds, and the amplification curve
``1 - (1-p)^q`` shows in the empirical failure rates.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.derandomize import failure_amplification, find_good_assignment


def collision_free(g: "nx.Graph", rho) -> bool:
    """Toy randomised algorithm: correct iff adjacent priorities differ."""
    return all(rho[u] != rho[v] for u, v in g.edges())


def collision_free_coarse(g: "nx.Graph", rho) -> bool:
    """Same with 2-bit strings: per-edge collision probability 1/4."""
    return all(rho[u] % 4 != rho[v] % 4 for u, v in g.edges())


@pytest.mark.parametrize("n", [3, 4])
def test_lemma10_search(benchmark, record, n):
    rng = random.Random(10 + n)
    found = benchmark.pedantic(
        lambda: find_good_assignment(
            collision_free, id_sets=[range(n), range(100, 100 + n)], rng=rng
        ),
        rounds=1,
        iterations=1,
    )
    assert found is not None
    ids, rho = found
    record(
        "E9 Lemma 10: good (S_n, rho_n) pairs exist",
        n=n,
        graphs_checked=2 ** (n * (n - 1) // 2),
        identifier_set=str(ids),
        found=True,
    )


@pytest.mark.parametrize("components", [1, 2, 4, 8])
def test_failure_amplification(benchmark, record, components):
    bad = nx.path_graph(2)
    rng = random.Random(17)
    rate = benchmark.pedantic(
        lambda: failure_amplification(
            collision_free_coarse, bad, rng, components=components, samples=300
        ),
        rounds=1,
        iterations=1,
    )
    expected = 1 - (1 - 0.25) ** components
    record(
        "E9 Lemma 10: failure amplification over disjoint unions",
        components=components,
        empirical_failure=round(rate, 3),
        predicted=round(expected, 3),
    )
