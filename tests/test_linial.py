"""Tests for Linial colour reduction (repro.coloring.linial)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.coloring.linial import (
    greedy_reduce_to,
    linial_reduce,
    linial_step,
    next_prime,
    reduction_parameters,
    validate_coloring,
)


def adjacency_of(g: "nx.Graph"):
    return {v: sorted(g.neighbors(v)) for v in g.nodes()}


class TestPrimes:
    def test_next_prime(self):
        assert next_prime(2) == 2
        assert next_prime(4) == 5
        assert next_prime(14) == 17
        assert next_prime(1) == 2


class TestParameters:
    def test_good_point_guarantee(self):
        q, d = reduction_parameters(m=1000, delta=4)
        assert q ** (d + 1) >= 1000
        assert q > d * 4

    def test_small_palette_degree_zero_poly(self):
        q, d = reduction_parameters(m=3, delta=2)
        assert d == 0 or q > d * 2


class TestStep:
    def test_one_step_properness(self):
        g = nx.random_regular_graph(4, 20, seed=1)
        adj = adjacency_of(g)
        colors = {v: v * 97 + 13 for v in g.nodes()}  # unique = proper
        new_colors, palette = linial_step(colors, adj, 4)
        assert validate_coloring(new_colors, adj)
        assert max(new_colors.values()) < palette

    def test_palette_shrinks_from_large(self):
        g = nx.cycle_graph(50)
        adj = adjacency_of(g)
        colors = {v: v * 10**6 for v in g.nodes()}
        new_colors, palette = linial_step(colors, adj, 2)
        assert palette < 10**6 * 49 + 1


class TestReduce:
    def test_reaches_delta_squared_palette(self):
        g = nx.random_regular_graph(3, 30, seed=2)
        adj = adjacency_of(g)
        colors = {v: v * 1009 for v in g.nodes()}
        final, rounds = linial_reduce(colors, adj, 3)
        assert validate_coloring(final, adj)
        q = next_prime(4)
        assert max(final.values()) < q * q + q  # O(Delta^2) palette
        assert rounds <= 6  # log* behaviour

    def test_reduce_deterministic(self):
        g = nx.cycle_graph(12)
        adj = adjacency_of(g)
        colors = {v: v * 31 for v in g.nodes()}
        a, _ = linial_reduce(dict(colors), adj, 2)
        b, _ = linial_reduce(dict(colors), adj, 2)
        assert a == b


class TestGreedyReduce:
    def test_reduce_to_delta_plus_one(self):
        g = nx.random_regular_graph(4, 16, seed=3)
        adj = adjacency_of(g)
        colors = {v: v for v in g.nodes()}  # palette 16, proper
        reduced, rounds = greedy_reduce_to(colors, adj, target=5)
        assert validate_coloring(reduced, adj)
        assert max(reduced.values()) < 5
        assert rounds == 16 - 5

    def test_already_small_is_noop(self):
        adj = {0: [1], 1: [0]}
        colors = {0: 0, 1: 1}
        reduced, rounds = greedy_reduce_to(colors, adj, target=3)
        assert reduced == colors
        assert rounds == 0
