"""The algorithm x family matrix: every maximal-FM algorithm against every
graph family, all outputs verified through the problems facade and the
1-round distributed checker.  Breadth insurance for the whole stack."""

from __future__ import annotations

import random

import pytest

from repro.graphs.families import (
    caterpillar,
    complete_graph,
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    random_regular_graph,
    single_node_with_loops,
    star_graph,
)
from repro.local.randomized import uniform_tape
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.proposal import proposal_algorithm
from repro.matching.random_priority import RandomPriorityEC
from repro.matching.verify import verify_distributed
from repro.problems import MaximalFractionalMatching

FAMILIES = {
    "path7": lambda: path_graph(7),
    "cycle6": lambda: cycle_graph(6),
    "cycle9": lambda: cycle_graph(9),
    "star6": lambda: star_graph(6),
    "k5": lambda: complete_graph(5),
    "caterpillar": lambda: caterpillar(4, 3),
    "random-sparse": lambda: random_bounded_degree_graph(24, 3, seed=10),
    "random-dense": lambda: random_bounded_degree_graph(24, 6, seed=11),
    "regular4": lambda: random_regular_graph(14, 4, seed=12),
    "loopy-tree": lambda: random_loopy_tree(6, 2, seed=13),
    "one-node-loops": lambda: single_node_with_loops(5),
}

ALGORITHMS = {
    "greedy": lambda g: greedy_color_algorithm(),
    "proposal": lambda g: proposal_algorithm(),
    "random-priority": lambda g: RandomPriorityEC(
        uniform_tape(g.nodes(), random.Random(99), bits=30)
    ),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_matrix(family, algorithm):
    g = FAMILIES[family]()
    alg = ALGORITHMS[algorithm](g)
    outputs = alg.run_on(g)
    # facade verification
    assert MaximalFractionalMatching().is_valid(g, outputs), (family, algorithm)
    # distributed 1-round verification
    ok, verdicts, rounds = verify_distributed(g, outputs)
    assert ok and rounds == 1, (family, algorithm)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_adversarial_relabeling(family):
    """Outputs are label-independent: relabelling the graph relabels the
    outputs, nothing else (the anonymity sanity check, matrix-wide)."""
    g = FAMILIES[family]()
    mapping = {v: ("relabelled", v) for v in g.nodes()}
    h = g.relabel(mapping)
    out_g = greedy_color_algorithm().run_on(g)
    out_h = greedy_color_algorithm().run_on(h)
    for v in g.nodes():
        assert out_g[v] == out_h[mapping[v]], family
