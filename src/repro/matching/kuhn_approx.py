"""Logarithmic-time constant-factor approximation of maximum-weight FM.

Context for the paper's Section 1.2: Kuhn, Moscibroda and Wattenhofer show
that (1-eps)-approximate maximum-weight FMs take ``Theta(log Delta)`` rounds
— exponentially faster than the ``Theta(Delta)`` cost of *maximal* FMs that
Theorem 1 establishes.  To reproduce that contrast (experiment E3) we
implement the classical *doubling dynamics*, a simplified stand-in for the
Kuhn et al. machinery (documented substitution in DESIGN.md):

    start every edge at weight ``2^-L`` with ``2^L >= Delta``; each round,
    every edge whose both endpoints carry load < 1/2 doubles its weight;
    a node with load >= 1/2 freezes all its incident edges.

After at most ``L + 1 = O(log Delta)`` rounds no edge is active.  The result
is feasible (a doubling round at most doubles a sub-1/2 load) and every edge
ends with an endpoint of load >= 1/2, which yields a constant-factor
approximation of the maximum-weight FM (the benches measure ratios of ~0.5+
against the LP optimum).  Port-symmetric: runs in EC, PO and ID models.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, Hashable, Optional

from ..local.algorithm import DistributedAlgorithm, SimulatedECWeights
from ..local.context import NodeContext

Node = Hashable

__all__ = ["DoublingFM", "doubling_algorithm", "initial_exponent"]

HALF = Fraction(1, 2)


def initial_exponent(delta: int) -> int:
    """Smallest ``L`` with ``2**L >= max(delta, 1)``."""
    L = 0
    while (1 << L) < max(delta, 1):
        L += 1
    return L


class DoublingFM(DistributedAlgorithm):
    """State machine for the doubling dynamics.

    Global knowledge: ``ctx.globals["delta"]`` — the maximum degree, used to
    pick the starting weight ``2^-L`` (standard for the LOCAL model).  Each
    round every node tells each active port whether it is *frozen*
    (load >= 1/2); an edge doubles iff both sides are unfrozen.
    """

    def __init__(self, model: str = "EC"):
        if model not in ("EC", "PO", "ID"):
            raise ValueError(f"unsupported model {model!r}")
        self.model = model

    def initial_state(self, ctx: NodeContext) -> Dict[str, Any]:
        L = initial_exponent(int(ctx.globals["delta"]))
        start = Fraction(1, 1 << L)
        return {
            "weights": {p: start for p in ctx.ports},
            "active": set(ctx.ports),
            "rounds_left": L + 1,
        }

    def _load(self, state: Dict[str, Any]) -> Fraction:
        return sum(state["weights"].values(), Fraction(0))

    def send(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Any]:
        if state["rounds_left"] <= 0:
            return {}
        frozen = self._load(state) >= HALF
        return {p: frozen for p in state["active"]}

    def receive(self, state: Dict[str, Any], ctx: NodeContext, inbox: Dict[Any, Any]) -> Dict[str, Any]:
        if state["rounds_left"] <= 0:
            return state
        state = dict(state)
        state["weights"] = dict(state["weights"])
        state["active"] = set(state["active"])
        my_frozen = self._load(state) >= HALF
        for port in list(state["active"]):
            their_frozen = inbox.get(port, True)
            if my_frozen or their_frozen:
                state["active"].discard(port)
            else:
                state["weights"][port] *= 2
        state["rounds_left"] -= 1
        if self._load(state) >= HALF:
            state["active"] = set()
        return state

    def output(self, state: Dict[str, Any], ctx: NodeContext) -> Optional[Dict[Any, Fraction]]:
        if state["rounds_left"] > 0 and state["active"]:
            return None
        return dict(state["weights"])

    def snapshot(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Fraction]:
        """Current weights (partial answer for cut-off ``t``-round evaluations)."""
        return dict(state["weights"])


def doubling_algorithm() -> SimulatedECWeights:
    """EC-model packaging of the doubling dynamics (experiment E3)."""
    return SimulatedECWeights(
        DoublingFM("EC"),
        globals_factory=lambda g: {"delta": max(g.max_degree(), 1)},
        max_rounds_factory=lambda g: initial_exponent(max(g.max_degree(), 1)) + 3,
        name="doubling-approx",
    )
