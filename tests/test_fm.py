"""Tests for the fractional matching datatype (repro.matching.fm)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.graphs.families import path_graph, single_node_with_loops, star_graph
from repro.graphs.multigraph import ECGraph
from repro.graphs.ports import po_double_from_ec
from repro.matching.fm import (
    FractionalMatching,
    InconsistentOutputError,
    fm_from_node_outputs,
    po_node_load,
)

F = Fraction


class TestLoads:
    def test_node_load_sums_incident(self):
        g = path_graph(3)
        fm = FractionalMatching(g, {0: F(1, 3), 1: F(1, 2)})
        assert fm.node_load(1) == F(5, 6)
        assert fm.node_load(0) == F(1, 3)

    def test_loop_counts_once(self):
        """EC convention: a loop's weight contributes once to y[v]."""
        g = single_node_with_loops(2)
        fm = FractionalMatching(g, {0: F(1, 2), 1: F(1, 2)})
        assert fm.node_load(0) == F(1)
        assert fm.is_saturated(0)

    def test_missing_weights_are_zero(self):
        g = path_graph(3)
        fm = FractionalMatching(g, {})
        assert fm.node_load(1) == 0
        assert fm.total_weight() == 0

    def test_unknown_edge_rejected(self):
        g = path_graph(2)
        with pytest.raises(KeyError):
            FractionalMatching(g, {99: F(1)})


class TestFeasibility:
    def test_overload_detected(self):
        g = star_graph(2)
        fm = FractionalMatching(g, {e.eid: F(3, 4) for e in g.edges()})
        problems = fm.feasibility_violations()
        assert any("overloaded" in p for p in problems)
        assert not fm.is_feasible()

    def test_negative_weight_detected(self):
        g = path_graph(2)
        fm = FractionalMatching(g, {0: F(-1, 2)})
        assert not fm.is_feasible()

    def test_above_one_detected(self):
        g = path_graph(2)
        fm = FractionalMatching(g, {0: F(3, 2)})
        assert not fm.is_feasible()

    def test_feasible_example(self):
        g = path_graph(4)
        fm = FractionalMatching(g, {0: F(1, 2), 1: F(1, 2), 2: F(1, 2)})
        assert fm.is_feasible()


class TestMaximality:
    def test_paper_example_maximal(self):
        """The paper's Section 1.2 example (b): a path with weights 1/2."""
        g = path_graph(5)
        weights = {e.eid: F(1, 2) for e in g.edges()}
        fm = FractionalMatching(g, weights)
        assert fm.is_maximal()
        assert len(fm.saturated_nodes()) == 3  # the three interior nodes

    def test_uncovered_edge_detected(self):
        g = path_graph(3)
        fm = FractionalMatching(g, {0: F(1)})  # saturates nodes 0 and 1
        assert fm.maximality_violations() == []
        fm2 = FractionalMatching(g, {0: F(1, 2)})  # nobody saturated
        assert fm2.maximality_violations() == [0, 1]

    def test_loop_needs_saturated_endpoint(self):
        g = single_node_with_loops(2)
        fm = FractionalMatching(g, {0: F(1, 2)})
        assert not fm.is_maximal()
        fm2 = FractionalMatching(g, {0: F(1, 2), 1: F(1, 2)})
        assert fm2.is_maximal()

    def test_fully_saturated(self):
        g = single_node_with_loops(1)
        assert FractionalMatching(g, {0: F(1)}).is_fully_saturated()
        assert not FractionalMatching(g, {0: F(1, 2)}).is_fully_saturated()


class TestComparison:
    def test_disagreements(self):
        g = path_graph(4)
        a = FractionalMatching(g, {0: F(1, 2), 1: F(1, 2)})
        b = FractionalMatching(g, {0: F(1, 2), 2: F(1, 4)})
        assert a.disagreements(b) == [1, 2]

    def test_restricted_to(self):
        g = path_graph(4)
        fm = FractionalMatching(g, {0: F(1), 1: F(0), 2: F(1)})
        restricted = fm.restricted_to([0])
        assert set(restricted.keys()) == {0}


class TestFromNodeOutputs:
    def test_consistent_assembly(self):
        g = path_graph(3)
        outputs = {
            0: {1: F(1, 2)},
            1: {1: F(1, 2), 2: F(1, 2)},
            2: {2: F(1, 2)},
        }
        fm = fm_from_node_outputs(g, outputs)
        assert fm.total_weight() == F(1)

    def test_endpoint_disagreement_raises(self):
        g = path_graph(2)
        outputs = {0: {1: F(1, 2)}, 1: {1: F(1, 3)}}
        with pytest.raises(InconsistentOutputError):
            fm_from_node_outputs(g, outputs)

    def test_missing_node_raises(self):
        g = path_graph(2)
        with pytest.raises(InconsistentOutputError):
            fm_from_node_outputs(g, {0: {1: F(0)}})

    def test_wrong_colour_set_raises(self):
        g = path_graph(2)
        outputs = {0: {1: F(0), 7: F(0)}, 1: {1: F(0)}}
        with pytest.raises(InconsistentOutputError):
            fm_from_node_outputs(g, outputs)

    def test_loop_single_announcement(self):
        g = single_node_with_loops(1)
        fm = fm_from_node_outputs(g, {0: {1: F(1)}})
        assert fm.is_fully_saturated()


class TestPOLoad:
    def test_directed_loop_counts_twice(self):
        """PO convention: a directed loop contributes twice to y[v]."""
        d = po_double_from_ec(single_node_with_loops(1))
        arc = d.edges()[0]
        assert po_node_load(d, {arc.eid: F(1, 2)}, 0) == F(1)

    def test_plain_arcs(self):
        d = po_double_from_ec(path_graph(2))
        weights = {e.eid: F(1, 4) for e in d.edges()}
        assert po_node_load(d, weights, 0) == F(1, 2)
