"""The interned-label table: label ⇄ dense int id, with digest-token memos.

Node labels in the adversary ladder are deeply nested tuples whose ``repr``
is O(label size); colours are small ints.  Every hot kernel operation —
digest accumulation on insert/remove, ball extraction, canonical-form
computation — ultimately reduces to *comparing and hashing labels*, so this
module interns each distinct label (and colour) once into a process-wide
:class:`LabelTable` and memoizes everything derived from it:

* a **dense integer id** (``lid``) per distinct label — the currency of the
  structure-of-arrays snapshots in :mod:`repro.graphs.soa`, where per-node
  and per-edge columns hold ``lid`` arrays instead of label objects;
* the serialised ``repr`` bytes (previously the ``_label_bytes`` memo
  inside :mod:`repro.graphs.kernel`, now folded in here);
* the SHA-256 **node token** per label and **edge token** per
  ``(endpoint, endpoint, colour, directedness)`` tuple — the exact values
  :data:`~repro.graphs.kernel.KERNEL_DIGEST_VERSION` digests are
  accumulated from, so a graph rebuilt from already-interned labels never
  reruns a hash.

The memos are observationally transparent (each cached value is a pure
function of the interned labels), so sharing one table per process cannot
change any digest or canonical form — it only deduplicates work.  The
table is bounded: once ``limit`` distinct labels have been interned the
table clears itself and bumps :attr:`LabelTable.generation`; consumers
holding ``lid`` arrays (the SoA snapshots, the canonical plan cache) must
check the generation and rebuild when it moved.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Hashable, List, Optional, Tuple

Node = Hashable

__all__ = ["LabelTable", "LABELS"]

#: matches the old in-kernel ``_LABEL_CACHE_LIMIT``: generous enough that a
#: full E1 sweep never clears, small enough to bound a pathological run
_DEFAULT_LIMIT = 1 << 20


class LabelTable:
    """Process-wide intern table for graph labels and colours.

    ``lid`` values are dense (0, 1, 2, ...) in first-seen order and stay
    valid until :meth:`clear` runs (overflow or explicit), which bumps
    :attr:`generation`.  Interning is keyed by equality, so two equal
    labels — however they were constructed — share one id, one ``repr``
    serialisation, and one set of digest tokens.
    """

    __slots__ = (
        "limit",
        "generation",
        "_ids",
        "_labels",
        "_repr_bytes",
        "_node_tokens",
        "_edge_tokens",
    )

    def __init__(self, limit: int = _DEFAULT_LIMIT) -> None:
        self.limit = limit
        self.generation = 0
        self._ids: Dict[Node, int] = {}
        self._labels: List[Node] = []
        self._repr_bytes: List[bytes] = []
        self._node_tokens: List[Optional[int]] = []
        #: (lid_a, lid_b, lid_colour, directed) -> SHA-256 token int
        self._edge_tokens: Dict[Tuple[int, int, int, bool], int] = {}

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def intern(self, label: Node) -> int:
        """The dense id of ``label``, assigning one on first sight."""
        lid = self._ids.get(label)
        if lid is None:
            if len(self._ids) >= self.limit:
                self.clear()
            lid = len(self._labels)
            self._ids[label] = lid
            self._labels.append(label)
            self._repr_bytes.append(repr(label).encode("utf-8"))
            self._node_tokens.append(None)
        return lid

    def label_for(self, lid: int) -> Node:
        """The representative label object interned under ``lid``."""
        return self._labels[lid]

    def repr_bytes(self, label: Node) -> bytes:
        """Memoized ``repr(label).encode("utf-8")`` (the digest serialisation)."""
        return self._repr_bytes[self.intern(label)]

    def repr_bytes_of(self, lid: int) -> bytes:
        """The serialised ``repr`` bytes of an already-interned id."""
        return self._repr_bytes[lid]

    def __len__(self) -> int:
        return len(self._labels)

    def clear(self) -> None:
        """Drop every interned label and memo; invalidates all ids."""
        self.generation += 1
        self._ids.clear()
        self._labels.clear()
        self._repr_bytes.clear()
        self._node_tokens.clear()
        self._edge_tokens.clear()

    # ------------------------------------------------------------------
    # digest tokens (byte-identical to the historical kernel hashing)
    # ------------------------------------------------------------------
    def node_token(self, label: Node) -> int:
        """SHA-256 token of a node label, as the kernel digest accumulates it."""
        return self.node_token_of(self.intern(label))

    def node_token_of(self, lid: int) -> int:
        """The node token of an already-interned id (skips re-hashing the
        label object — the SoA hot paths hold lid columns, not labels)."""
        token = self._node_tokens[lid]
        if token is None:
            payload = b"node\x00" + self._repr_bytes[lid]
            token = int.from_bytes(hashlib.sha256(payload).digest(), "big")
            self._node_tokens[lid] = token
        return token

    def edge_token(self, ends: Tuple[Node, Node], color: Any, directed: bool) -> int:
        """SHA-256 token of an edge record, as the kernel digest accumulates it.

        Undirected tokens sort the two endpoint serialisations (the digest
        is orientation-free); directed tokens keep tail/head order and use
        the ``arc`` tag.  Memoized per ``(lid, lid, colour lid, directed)``,
        so re-grafting an edge between already-seen labels is a dict hit.
        """
        return self.edge_token_of(
            self.intern(ends[0]), self.intern(ends[1]), self.intern(color), directed
        )

    def edge_token_of(self, lid_a: int, lid_b: int, lid_c: int, directed: bool) -> int:
        """The edge token over already-interned endpoint and colour ids."""
        key = (lid_a, lid_b, lid_c, directed)
        token = self._edge_tokens.get(key)
        if token is None:
            if directed:
                a, b = self._repr_bytes[lid_a], self._repr_bytes[lid_b]
                tag = b"arc\x00"
            else:
                a, b = sorted((self._repr_bytes[lid_a], self._repr_bytes[lid_b]))
                tag = b"edge\x00"
            payload = tag + a + b"\x00" + b + b"\x00" + self._repr_bytes[lid_c]
            token = int.from_bytes(hashlib.sha256(payload).digest(), "big")
            self._edge_tokens[key] = token
        return token


#: the process-wide table every kernel, snapshot and plan cache shares
LABELS = LabelTable()
