"""Tests for the doubling approximation (repro.matching.kuhn_approx)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.graphs.families import (
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_regular_graph,
    star_graph,
)
from repro.matching.fm import fm_from_node_outputs
from repro.matching.kuhn_approx import DoublingFM, doubling_algorithm, initial_exponent
from repro.matching.lp import max_weight_fm_lp


class TestInitialExponent:
    def test_values(self):
        assert initial_exponent(1) == 0
        assert initial_exponent(2) == 1
        assert initial_exponent(3) == 2
        assert initial_exponent(4) == 2
        assert initial_exponent(5) == 3
        assert initial_exponent(0) == 0


class TestFeasibility:
    def test_always_feasible(self):
        for g in (
            path_graph(6),
            cycle_graph(5),
            star_graph(6),
            random_bounded_degree_graph(20, 5, seed=0),
        ):
            alg = doubling_algorithm()
            fm = fm_from_node_outputs(g, alg.run_on(g))
            assert fm.is_feasible(), repr(g)

    def test_every_edge_half_covered(self):
        """Every edge ends with an endpoint of load >= 1/2 — the invariant
        behind the constant-factor guarantee."""
        g = random_bounded_degree_graph(20, 4, seed=1)
        alg = doubling_algorithm()
        fm = fm_from_node_outputs(g, alg.run_on(g))
        half = Fraction(1, 2)
        for e in g.edges():
            assert fm.node_load(e.u) >= half or fm.node_load(e.v) >= half


class TestApproximation:
    def test_constant_factor_of_lp(self):
        for seed in range(3):
            g = random_bounded_degree_graph(24, 5, seed=seed)
            alg = doubling_algorithm()
            fm = fm_from_node_outputs(g, alg.run_on(g))
            opt, _ = max_weight_fm_lp(g)
            if opt > 0:
                assert float(fm.total_weight()) >= opt / 5


class TestRoundComplexity:
    def test_rounds_logarithmic_in_delta(self):
        """O(log Delta) rounds — the contrast with Theta(Delta) maximality."""
        observed = []
        for delta in (2, 4, 8, 16):
            n = 34 if (34 * delta) % 2 == 0 else 35
            g = random_regular_graph(n, delta, seed=2)
            alg = doubling_algorithm()
            alg.run_on(g)
            observed.append((delta, alg.rounds_used(g)))
        for delta, rounds in observed:
            assert rounds <= initial_exponent(delta) + 2

    def test_rounds_much_smaller_than_delta_for_large_delta(self):
        delta = 16
        g = random_regular_graph(34, delta, seed=3)
        alg = doubling_algorithm()
        alg.run_on(g)
        assert alg.rounds_used(g) < delta // 2
