"""E11 — Section 5.5 / Theorem 1: the end-to-end refutation pipeline.

Paper claim: a ``t``-time ID-algorithm yields, through OI <= ID, PO <= OI
and EC <= PO, a ``t``-time EC-algorithm on degree-``Delta/2`` graphs, which
the Section 4 construction then defeats — so maximal FM needs
``Omega(Delta)`` rounds in the full LOCAL model.  Measured: both branches of
the refutation dichotomy against the real chained algorithm, and direct
refutations of claimed-fast algorithms.
"""

from __future__ import annotations

import pytest

from repro.core.theorem import chain_id_to_ec, refute
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.naive import DegreeSplitFM, ZeroFM
from repro.matching.proposal import ProposalFM


def id_pool(n: int):
    return [1000 + 7 * i for i in range(n)]


@pytest.mark.parametrize("claimed", [0, 1, 2, 3, 4])
def test_refute_claims_against_greedy(benchmark, record, claimed):
    delta = 6
    r = benchmark.pedantic(
        lambda: refute(greedy_color_algorithm(), claimed, delta), rounds=1, iterations=1
    )
    expected = "locality-violation" if claimed <= delta - 2 else "consistent"
    assert r.kind == expected
    record(
        "E11 refutation of claimed round counts (Delta = 6)",
        claimed_rounds=claimed,
        verdict=r.kind,
        witness_depth=r.witness.achieved_depth if r.witness else "-",
    )


@pytest.mark.parametrize("alg_name", ["zero", "degree-split"])
def test_refute_flawed_algorithms(benchmark, record, alg_name):
    alg = ZeroFM() if alg_name == "zero" else DegreeSplitFM()
    r = benchmark.pedantic(lambda: refute(alg, 1, 5), rounds=1, iterations=1)
    assert r.kind == "incorrect-output"
    record(
        "E11 refutation of flawed fast algorithms",
        algorithm=alg_name,
        verdict=r.kind,
        certificate="attached",
    )


@pytest.mark.parametrize("t,expected", [(3, "incorrect-output"), (4, "locality-violation")])
def test_full_id_chain_dichotomy(benchmark, record, t, expected):
    delta = 4
    ec = chain_id_to_ec(ProposalFM("ID"), t=t, id_pool=id_pool)
    # claim a sub-(Delta-2) round count: either the output is wrong
    # (time-starved chain) or the claim is refuted by the witness pair
    r = benchmark.pedantic(lambda: refute(ec, 1, delta), rounds=1, iterations=1)
    assert r.kind == expected
    record(
        "E11 EC<=PO<=OI<=ID chain vs adversary (Delta = 4)",
        time_budget_t=t,
        verdict=r.kind,
        meaning="truncated run caught" if expected == "incorrect-output" else "Omega(Delta) certified",
    )
