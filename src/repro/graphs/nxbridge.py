"""Bridges between :class:`repro.graphs.multigraph.ECGraph` and networkx.

networkx is used for LP/matching cross-checks, VF2 isomorphism fallbacks and
random graph generation; these helpers convert losslessly in both directions
(edge colours are stored in the ``color`` attribute, edge ids in ``eid``).
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from .multigraph import ECGraph

Node = Hashable

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(g: ECGraph) -> "nx.MultiGraph":
    """Convert an EC-graph to a networkx MultiGraph.

    Loops become networkx self-loops; each edge stores ``color`` and ``eid``
    attributes.  Note networkx degree counts self-loops twice, unlike the EC
    convention — use the original graph for degree queries.
    """
    out = nx.MultiGraph()
    out.add_nodes_from(g.nodes())
    for e in g.edges():
        out.add_edge(e.u, e.v, key=e.eid, color=e.color, eid=e.eid)
    return out


def from_networkx(nxg: "nx.MultiGraph") -> ECGraph:
    """Convert a networkx (Multi)Graph with ``color`` edge attributes back.

    Edges lacking a ``color`` attribute are coloured greedily afterwards in
    insertion order.  ``eid`` attributes are respected when present.
    """
    g = ECGraph()
    for v in nxg.nodes():
        g.add_node(v)
    uncolored = []
    for u, v, data in nxg.edges(data=True):
        color = data.get("color")
        if color is None:
            uncolored.append((u, v))
        else:
            g.add_edge(u, v, color, eid=data.get("eid"))
    if uncolored:
        from .families import greedy_edge_coloring

        base = max([c for c in g.colors() if isinstance(c, int)], default=0)
        for (u, v), c in greedy_edge_coloring(uncolored).items():
            g.add_edge(u, v, base + c)
    return g
