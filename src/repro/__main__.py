"""``python -m repro`` — dispatch to the CLI."""

import sys

from .cli import main

sys.exit(main())
