"""Tests for view trees (repro.local.views).

The central validation: the message-passing full-information algorithm run
through the simulator gathers *exactly* the mathematically defined view
tree, including on multigraphs with loops — certifying the runtime's loop
echo semantics against the universal-cover definition.
"""

from __future__ import annotations

import pytest

from repro.graphs.families import (
    cycle_graph,
    path_graph,
    random_loopy_tree,
    single_node_with_loops,
    star_graph,
)
from repro.graphs.lifts import random_two_lift
from repro.local.runtime import ECNetwork, run
from repro.local.views import FullInformationEC, ec_view_tree


class TestDirectRecursion:
    def test_depth0_is_empty(self):
        g = star_graph(3)
        assert ec_view_tree(g, 0, 0) == ()

    def test_depth1_sees_colors(self):
        g = star_graph(2)
        v = ec_view_tree(g, 0, 1)
        assert v == ((1, ()), (2, ()))

    def test_loop_contributes_own_view(self):
        g = single_node_with_loops(1)
        v2 = ec_view_tree(g, 0, 2)
        # depth-2 view through the loop: the "neighbour" (itself) has colour 1
        assert v2 == ((1, ((1, ()),)),)

    def test_symmetric_nodes_equal_views(self):
        g = cycle_graph(6)
        views = {v: ec_view_tree(g, v, 3) for v in g.nodes()}
        assert len(set(views.values())) <= 2  # parity classes at most

    def test_asymmetric_nodes_differ(self):
        g = path_graph(4)
        assert ec_view_tree(g, 0, 2) != ec_view_tree(g, 1, 2)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            ec_view_tree(path_graph(2), 0, -1)


class TestMessagePassingGathersViews:
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_simulator_matches_recursion(self, depth):
        for g in (path_graph(4), cycle_graph(5), random_loopy_tree(4, 1, seed=8)):
            result = run(ECNetwork(g), FullInformationEC(depth))
            assert result.halted
            assert result.rounds == depth
            for v in g.nodes():
                assert result.outputs[v] == ec_view_tree(g, v, depth)

    def test_loop_echo_matches_universal_cover(self):
        g = single_node_with_loops(3)
        result = run(ECNetwork(g), FullInformationEC(2))
        assert result.outputs[0] == ec_view_tree(g, 0, 2)


class TestLiftInvarianceOfViews:
    def test_views_invariant_under_2lifts(self, rng):
        """Views are functions of the universal cover, hence lift-invariant."""
        for seed in range(3):
            g = random_loopy_tree(4, 1, seed=seed)
            lifted, alpha = random_two_lift(g, rng)
            for w in lifted.nodes():
                assert ec_view_tree(lifted, w, 3) == ec_view_tree(g, alpha[w], 3)

    def test_views_do_not_depend_on_labels(self):
        g = path_graph(3)
        h = g.relabel({0: "x", 1: "y", 2: "z"})
        assert ec_view_tree(g, 0, 2) == ec_view_tree(h, "x", 2)
