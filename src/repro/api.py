"""The stable public surface of :mod:`repro`.

Three verbs cover the repository's workflows:

* :func:`run` — execute a distributed algorithm on a graph (or prebuilt
  network) under the LOCAL runtime, optionally bounded to an exact round
  budget, sanitized, and traced;
* :func:`refute` — test a claimed run-time against the Section 4 adversary,
  optionally stacking the Section 5 simulation chain (EC ⇐ PO ⇐ OI ⇐ ID)
  in front of a base machine;
* :func:`sweep` — run a declarative grid of (algorithm, ∆, chain, seed)
  cells through the parallel experiment engine (:mod:`repro.engine`);
* :func:`bench` — run a declared scaling-experiment suite
  (:mod:`repro.obs.bench`) and return its per-commit trajectory rows.

Everything here is re-exported keyword-first and model-agnostic: ``run``
builds the right network adapter from the algorithm's declared model, and
``refute`` accepts either a ready EC-weight algorithm or a ``chain`` name.
Returns are typed: ``run`` a :class:`RunResult`, ``refute`` a
:class:`Refutation`, ``sweep`` a frozen :class:`SweepReport`, ``bench`` a
frozen :class:`BenchReport` — no raw dict ever escapes the facade.  The
lower-level modules remain importable, but new code (and the CLI) should
go through this facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .core.theorem import Refutation, chain_from_name
from .core.theorem import refute as _theorem_refute
from .graphs.digraph import POGraph
from .graphs.multigraph import ECGraph
from .local.algorithm import DistributedAlgorithm, ECWeightAlgorithm
from .local.runtime import (
    ECNetwork,
    IDNetwork,
    Network,
    PONetwork,
    RunResult,
    run as _run,
    run_rounds as _run_rounds,
)

__all__ = [
    "BenchReport",
    "Refutation",
    "RunResult",
    "SweepReport",
    "bench",
    "refute",
    "run",
    "sweep",
]

_NETWORKS = {"EC": ECNetwork, "PO": PONetwork, "ID": IDNetwork}


@dataclass(frozen=True)
class SweepReport:
    """Immutable facade view of one sweep, mirroring
    :class:`repro.engine.SweepResult`.

    ``rows`` is a tuple (the engine's merged, key-sorted result rows);
    ``cache`` is the engine's :class:`~repro.engine.cache.CacheStats`;
    ``summary`` is the engine's one-line human account, precomputed so the
    report never needs the engine imported to describe itself.
    """

    grid: Mapping[str, Any]
    rows: Tuple[Mapping[str, Any], ...]
    workers: int
    backend: str
    cache: Any
    resumed: int
    recovery: Mapping[str, int]
    out_dir: Optional[str]
    trace: Optional[Mapping[str, Any]]
    summary: str

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    @classmethod
    def from_engine(cls, result) -> "SweepReport":
        """Freeze a :class:`repro.engine.SweepResult` into a report."""
        return cls(
            grid=result.grid,
            rows=tuple(result.rows),
            workers=result.workers,
            backend=result.backend,
            cache=result.cache,
            resumed=result.resumed,
            recovery=result.recovery,
            out_dir=result.out_dir,
            trace=result.trace,
            summary=result.summary(),
        )


@dataclass(frozen=True)
class BenchReport:
    """Immutable facade view of one bench-suite run.

    ``rows`` are the schema-versioned trajectory rows (see
    :mod:`repro.obs.bench.trajectory`), untouched, so they can be handed
    straight to ``append_rows``/``check_rows``.
    """

    suite: str
    rows: Tuple[Mapping[str, Any], ...]

    @property
    def commit(self) -> Optional[str]:
        return self.rows[0].get("commit") if self.rows else None

    @property
    def experiments(self) -> Tuple[str, ...]:
        return tuple(row.get("experiment", "?") for row in self.rows)


def _as_network(algorithm: DistributedAlgorithm, graph: Any, globals_: Optional[Dict[str, Any]]) -> Network:
    """Wrap ``graph`` in the network adapter matching the algorithm's model."""
    if isinstance(graph, Network):
        if globals_:
            raise ValueError("pass globals to the Network constructor, not to run()")
        return graph
    if isinstance(graph, ECGraph):
        network_cls = ECNetwork
    elif isinstance(graph, POGraph):
        network_cls = PONetwork
    else:
        network_cls = _NETWORKS.get(algorithm.model, IDNetwork)
    return network_cls(graph, globals_=globals_)


def run(
    algorithm: DistributedAlgorithm,
    graph: Any,
    *,
    rounds: Optional[int] = None,
    max_rounds: int = 10_000,
    tracer=None,
    sanitize: bool = False,
    sanitize_mode: str = "raise",
    globals: Optional[Dict[str, Any]] = None,  # noqa: A002 - deliberate public name
) -> RunResult:
    """Execute ``algorithm`` on ``graph`` and return the :class:`RunResult`.

    ``graph`` may be an :class:`ECGraph`, a :class:`POGraph`, a simple
    networkx graph (ID model) or an already-built :class:`Network`; the
    adapter is chosen from the algorithm's declared model.  With ``rounds``
    set, exactly that many communication rounds execute and non-halted
    nodes are snapshotted (:func:`repro.local.runtime.run_rounds`);
    otherwise the run continues until all nodes output or ``max_rounds``.

    ``sanitize`` wraps every node context in the locality sanitizer;
    ``tracer`` attaches a :class:`repro.obs.Tracer` (defaults to the
    ambient one).  ``globals`` seeds the network's shared global knowledge
    (e.g. ``{"delta": 4}``) and must be ``None`` when ``graph`` is already
    a network.
    """
    network = _as_network(algorithm, graph, globals)
    if rounds is not None:
        return _run_rounds(
            network,
            algorithm,
            rounds,
            sanitize=sanitize,
            sanitize_mode=sanitize_mode,
            tracer=tracer,
        )
    return _run(
        network,
        algorithm,
        max_rounds=max_rounds,
        sanitize=sanitize,
        sanitize_mode=sanitize_mode,
        tracer=tracer,
    )


def refute(
    algorithm: Union[ECWeightAlgorithm, DistributedAlgorithm],
    delta: int,
    *,
    claimed_rounds: int = 1,
    chain: Optional[str] = None,
    deep_verify: bool = False,
    tracer=None,
) -> Refutation:
    """Test "``algorithm`` computes maximal FM in ``claimed_rounds`` rounds
    on degree-``delta`` EC-graphs" with the Section 4 adversary.

    ``algorithm`` is either a ready EC-weight algorithm (``chain=None``) or
    a base state machine to stack the named simulation chain in front of:
    ``chain="ec"`` presents it directly, ``"po"``/``"oi"``/``"id"`` add the
    Section 5 simulations (see :func:`repro.core.theorem.chain_from_name`).
    Returns a machine-checked :class:`Refutation`.
    """
    if chain is not None:
        algorithm = chain_from_name(chain, t=delta, base=algorithm)
    return _theorem_refute(
        algorithm, claimed_rounds, delta, deep_verify=deep_verify, tracer=tracer
    )


def sweep(
    grid=None,
    *,
    workers: int = 0,
    backend: Optional[str] = None,
    hosts=None,
    memory_budget: Optional[int] = None,
    out: Optional[str] = None,
    cache_dir: Optional[str] = None,
    cache_tenant: Optional[str] = None,
    cache_shared_dir: Optional[str] = None,
    cache_disk_budget: Optional[int] = None,
    use_cache: bool = True,
    resume: bool = False,
    tracer=None,
    faults=None,
    cell_timeout: Optional[float] = None,
    retries: int = 1,
    max_restarts: int = 2,
    progress=None,
) -> SweepReport:
    """Run a grid of experiment cells through the parallel engine.

    ``grid`` is a :class:`repro.engine.GridSpec`, a mapping accepted by
    :meth:`GridSpec.from_mapping`, or ``None`` for the paper's E1 grid.
    Returns a frozen :class:`SweepReport`; see :mod:`repro.engine` for
    sharding, caching and resume semantics.

    ``backend`` selects the :class:`~repro.engine.executors.SweepExecutor`
    that runs the shards — ``"inline"``, ``"process"`` or ``"socket"``
    (``None`` keeps the workers-based default: ``workers >= 2`` spawns the
    process pool, anything less runs inline).  ``hosts`` and
    ``memory_budget`` configure the socket backend's shard servers and
    per-request ball-volume budget.

    ``cache_tenant``/``cache_shared_dir``/``cache_disk_budget`` configure
    the multi-tenant canonical-form cache the sweep service uses: a
    namespaced per-tenant disk tier under ``cache_dir``, a read-through
    shared tier deduping canonicalisation across tenants, and a byte
    budget past which oldest-used disk entries are evicted — see
    ``docs/service.md``.

    ``faults`` replays a deterministic failure scenario (a
    :class:`repro.engine.FaultPlan`, its dict form, or a path to its JSON
    file); ``cell_timeout``/``retries``/``max_restarts`` bound the per-cell
    watchdog, the retry loop, and dead-worker recovery — see
    ``docs/fault_injection.md``.  ``progress`` attaches a
    :class:`repro.obs.ProgressEmitter` for live heartbeat telemetry; it
    observes the sweep without changing any row.
    """
    from .engine import GridSpec, run_sweep

    if grid is not None and not isinstance(grid, GridSpec):
        grid = GridSpec.from_mapping(grid)
    result = run_sweep(
        grid,
        workers=workers,
        backend=backend,
        hosts=hosts,
        memory_budget=memory_budget,
        out_dir=out,
        cache_dir=cache_dir,
        cache_tenant=cache_tenant,
        cache_shared_dir=cache_shared_dir,
        cache_disk_budget=cache_disk_budget,
        use_cache=use_cache,
        resume=resume,
        tracer=tracer,
        faults=faults,
        cell_timeout=cell_timeout,
        retries=retries,
        max_restarts=max_restarts,
        progress=progress,
    )
    return SweepReport.from_engine(result)


def bench(
    suite="smoke",
    *,
    repeats: int = 3,
    warmup: int = 1,
    commit: Optional[str] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    hosts=None,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    max_restarts: Optional[int] = None,
) -> BenchReport:
    """Run the named scaling-experiment suite; returns a :class:`BenchReport`.

    The execution-control options (``workers``/``backend``/``cell_timeout``/
    ``retries``/``max_restarts``) are validated through
    :class:`repro.engine.executors.ExecutionOptions` and forwarded to every
    sweep the suite's runners launch (worker-scaling keeps sweeping its own
    worker counts); left at ``None`` they change nothing, so default bench
    rows stay comparable across the committed trajectory.

    Rows are schema-versioned dicts (see
    :mod:`repro.obs.bench.trajectory`) and are **not** persisted here —
    append them with :func:`repro.obs.bench.append_rows`, or use
    ``python -m repro bench``, which also runs the regression gate
    (``--check``) and the dashboard (``--report``).
    """
    from .obs.bench import run_suite

    overrides = {
        "workers": workers,
        "backend": backend,
        "hosts": hosts,
        "cell_timeout": cell_timeout,
        "retries": retries,
        "max_restarts": max_restarts,
    }
    engine_opts = {key: value for key, value in overrides.items() if value is not None}
    if engine_opts:
        from .engine.executors import ExecutionOptions, parse_hosts

        checked = dict(engine_opts)
        if "hosts" in checked:
            checked["hosts"] = tuple(parse_hosts(checked["hosts"]))
        ExecutionOptions(**{"workers": 1, **checked})  # shared validation
    rows = run_suite(
        suite, repeats=repeats, warmup=warmup, commit=commit, engine_opts=engine_opts
    )
    name = suite if isinstance(suite, str) else suite.name
    return BenchReport(suite=name, rows=tuple(rows))
