"""The backend-agnostic sweep driver: sharding, persistence, recovery.

:func:`run_sweep` owns everything a sweep *means* — expanding the grid,
splitting pending cells round-robin into shards, the
:class:`~repro.engine.store.ResultStore`, progress emission, resume/dedup
bookkeeping, and the dead-worker recovery policy.  *Where* a shard runs is
delegated to a :class:`~repro.engine.executors.SweepExecutor` backend
(``backend=``): ``inline`` executes in-process on an asyncio loop (the
serial baseline), ``process`` maps shards over a spawn-context pool, and
``socket`` ships them to shard servers over JSON framing — see
:mod:`repro.engine.executors` and ``docs/engine.md``.

Every backend funnels through the same shard runtime
(:mod:`repro.engine.executors.shard`), so the invariants are uniform: each
shard runs under its own :class:`repro.obs.Tracer` and an installed
:class:`~repro.engine.cache.CanonicalFormCache`, appends rows to its store
shard as it goes, and applies the per-cell watchdog/retry discipline.
Rows carry no wall-clock data and are merged in cell-key order, so a sweep
result is byte-for-byte identical whichever backend (and however many
workers) produced it — and, by the same construction, however many faults
it survived on the way.

Fault tolerance
---------------
The engine assumes workers can die, cells can hang, and disks can lie:

* every cell runs under an optional watchdog (``cell_timeout`` seconds) and
  a bounded, deterministically backed-off retry loop (``retries``); a cell
  whose error survives every retry surfaces as a :class:`CellExecutionError`
  that **names the failing cell** instead of a bare pool teardown;
* a shard whose worker dies (SIGKILL, crash, vanished host) is detected by
  the driver via the backend's ``is_worker_loss`` triage, which reads back
  whatever rows the dead worker had already flushed and **reassigns only
  the missing cells** to a fresh round (``max_restarts`` rounds,
  ``engine.recovery`` spans); the last restart round always runs inline —
  recovery must not be starved by an environment that keeps killing
  whatever the backend spawns;
* cache and store damage degrades gracefully (see their modules) and is
  exercised end to end by :mod:`repro.engine.faults` — pass ``faults=``
  (a :class:`~repro.engine.faults.FaultPlan`) to replay a failure scenario
  deterministically.

The progress monitor's polling thread is why this module remains a
sanctioned worker module (``LintConfig.worker_modules``).
"""

from __future__ import annotations

import json
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..obs.export import merge_trace_documents
from ..obs.progress import NULL_PROGRESS, NullProgressEmitter
from ..obs.tracer import current_tracer
from .cache import CacheStats
from .executors.base import ExecutorContext, SweepExecutor, as_executor
from .executors.shard import (
    CellExecutionError,
    CellTimeout,
    shard_cells,
    shard_payloads,
)
from .faults import as_plan
from .grid import Cell, GridSpec, expand, run_cell
from .store import ResultStore

__all__ = [
    "CellExecutionError",
    "CellTimeout",
    "SweepResult",
    "run_sweep",
    "verify_store",
]


@dataclass
class SweepResult:
    """Outcome of one sweep: merged rows, cache stats, merged trace."""

    grid: dict
    rows: List[dict]
    workers: int
    cache: CacheStats = field(default_factory=CacheStats)
    trace: Optional[dict] = None
    resumed: int = 0
    out_dir: Optional[str] = None
    #: restart/reassignment account: zeros on a fault-free run
    recovery: Dict[str, int] = field(default_factory=dict)
    #: registry name of the executor that ran the parallel rounds
    backend: str = "inline"

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    def summary(self) -> str:
        """One-line human account of the sweep."""
        fresh = len(self.rows) - self.resumed
        line = (
            f"{len(self.rows)} cells ({fresh} computed, {self.resumed} resumed) "
            f"on {self.workers} worker(s) via the {self.backend} backend; "
            f"canonical-form cache hit-rate "
            f"{self.cache.hit_rate:.0%} ({self.cache.hits}/{self.cache.lookups})"
        )
        restarts = self.recovery.get("restarts", 0)
        if restarts:
            line += (
                f"; recovered in {restarts} restart(s) "
                f"({self.recovery.get('reassigned', 0)} cells reassigned, "
                f"{self.recovery.get('worker_losses', 0)} worker(s) lost)"
            )
        return line


def run_sweep(
    grid: Union[GridSpec, Mapping, None] = None,
    *,
    workers: int = 0,
    backend: Union[str, SweepExecutor, None] = None,
    hosts=None,
    memory_budget: Optional[int] = None,
    out_dir=None,
    cache_dir=None,
    cache_tenant: Optional[str] = None,
    cache_shared_dir=None,
    cache_disk_budget: Optional[int] = None,
    use_cache: bool = True,
    resume: bool = False,
    tracer=None,
    faults=None,
    cell_timeout: Optional[float] = None,
    retries: int = 1,
    max_restarts: int = 2,
    progress=None,
) -> SweepResult:
    """Run every cell of ``grid``, sharded over the selected backend.

    Parameters
    ----------
    grid:
        A :class:`GridSpec`, a plain mapping of axes, or ``None`` for the
        default E1 grid.
    workers:
        Shard fan-out for parallel backends.  With the default
        ``backend=None``, ``0`` or ``1`` selects the inline backend (the
        serial baseline the parallel paths must reproduce byte-identically)
        and ``n >= 2`` selects the process pool — the historical behaviour.
    backend:
        Which :class:`~repro.engine.executors.SweepExecutor` runs the
        shards: ``"inline"``, ``"process"``, ``"socket"``, an executor
        instance, or ``None`` for the workers-based default above.
    hosts:
        Socket backend only: shard servers to dispatch to, as
        ``"host:port,host:port"`` or a list of ``(host, port)`` pairs.
        Without hosts the socket backend self-hosts loopback servers.
    memory_budget:
        Socket backend only: per-request budget in estimated ball-volume
        units (:mod:`repro.engine.executors.sockets`); Δ-large shards are
        split into sequential batches under this budget so one worker is
        never handed more resident witness balls than it can hold.
    out_dir:
        Results directory (JSONL shards, ``summary.json``, ``trace.json``).
        ``None`` keeps everything in memory — such a sweep cannot resume,
        and a lost worker's finished cells must be recomputed instead of
        read back.
    cache_dir:
        On-disk canonical-form store shared by all workers; defaults to
        ``$REPRO_CACHE_DIR`` when set (workers always get an in-memory LRU).
    cache_tenant:
        Namespace the disk cache under ``cache_dir/tenants/<tenant>/`` —
        the multi-tenant discipline the sweep service uses so co-hosted
        clients cannot evict each other (see ``docs/service.md``).
    cache_shared_dir:
        Read-through shared cache tier consulted after a tenant-tier miss
        and populated by every write, so concurrent sweeps dedupe
        canonicalisation globally (hits are counted as ``shared_hits``).
    cache_disk_budget:
        Per-directory byte budget for the on-disk cache tiers; the
        oldest-used entries are evicted past it (``disk_evictions``).
        ``None`` (default) never evicts from disk.
    use_cache:
        ``False`` disables canonical-form memoization entirely.
    resume:
        Skip cells whose rows already sit in ``out_dir``'s shards; their
        persisted rows are merged into the result untouched (rows for cells
        outside this grid are ignored).
    tracer:
        Parent tracer for the coordinating ``engine.sweep`` span; defaults
        to the ambient tracer.
    faults:
        A :class:`~repro.engine.faults.FaultPlan` (or its dict form, or a
        path to its JSON file) replayed deterministically during the sweep.
    cell_timeout:
        Per-cell watchdog in seconds; ``None`` (default) disables it.
    retries:
        Extra attempts per cell after a timeout or error (default 1).
    max_restarts:
        Rounds of dead-worker recovery: each round reassigns only the
        cells the lost shards had not yet persisted (default 2).
    progress:
        A :class:`repro.obs.progress.ProgressEmitter` fed heartbeat events
        while the sweep runs (rounds on a backend with per-row callbacks
        report per row; other rounds are polled from the result store).
        The emitter only observes the sweep — rows are byte-identical with
        or without it.  ``None`` (default) uses the shared no-op emitter.
    """
    if grid is None:
        spec = GridSpec()
    elif isinstance(grid, GridSpec):
        spec = grid
    else:
        spec = GridSpec.from_mapping(grid)
    tracer = tracer if tracer is not None else current_tracer()
    plan = as_plan(faults)
    cells = expand(spec)
    cell_keys = {cell.key for cell in cells}
    store = ResultStore(out_dir) if out_dir else None

    executor = as_executor(backend, workers=workers, hosts=hosts, memory_budget=memory_budget)
    parallel = executor.capabilities.parallel
    # the serial fallback executor: used for every round of a non-parallel
    # backend and for the last recovery round of a parallel one
    if parallel:
        from .executors.inline import InlineExecutor

        fallback: SweepExecutor = InlineExecutor()
    else:
        fallback = executor

    done: Dict[str, dict] = {}
    if resume:
        if store is None:
            raise ValueError("resume=True needs an out_dir to read shards from")
        done = {key: row for key, row in store.completed().items() if key in cell_keys}
    pending = [cell for cell in cells if cell.key not in done]

    collected: Dict[str, dict] = {}
    shard_docs: List[dict] = []
    stats_dicts: List[dict] = []
    recovery = {"restarts": 0, "reassigned": 0, "worker_losses": 0}
    failures: List[Tuple[dict, BaseException]] = []

    progress = progress if progress is not None else NULL_PROGRESS
    live = {"done": len(done)}

    def _note_row(row, cache_stats) -> None:
        # per-row-capable rounds only: exact heartbeats (closure-local state)
        live["done"] += 1
        progress.update(
            live["done"],
            cache_hits=cache_stats.hits,
            cache_lookups=cache_stats.lookups,
        )

    monitor = None
    if parallel and store is not None and not isinstance(progress, NullProgressEmitter):
        monitor = _ProgressMonitor(progress, store, total=len(cells))

    progress.start(total=len(cells), resumed=len(done))
    if monitor is not None:
        monitor.start()
    executor.start(ExecutorContext(workers=workers))
    try:
        with tracer.span(
            "engine.sweep",
            cells=len(cells),
            pending=len(pending),
            resumed=len(done),
            workers=workers,
            backend=executor.name,
        ) as sweep_span:
            remaining = list(pending)
            round_ = 0
            while remaining:
                span_ctx = (
                    tracer.span("engine.recovery", round=round_, cells=len(remaining))
                    if round_ > 0
                    else nullcontext()
                )
                # the last restart round runs in-process: recovery must not be
                # starved by an environment that keeps killing fresh workers
                parallel_round = parallel and round_ < max_restarts
                active = executor if parallel_round else fallback
                with span_ctx:
                    shards = shard_cells(remaining, active.width if parallel_round else 1)
                    payloads = shard_payloads(
                        shards, store, cache_dir, use_cache, plan, round_,
                        cell_timeout, retries,
                        in_worker=parallel_round and active.capabilities.separate_process,
                        cache_tenant=cache_tenant,
                        shared_cache_dir=cache_shared_dir,
                        cache_disk_budget=cache_disk_budget,
                    )
                    ctx = ExecutorContext(
                        workers=workers,
                        on_row=_note_row if active.capabilities.supports_on_row else None,
                    )
                    outcomes, failures = active.run_round(payloads, ctx)
                    for _, rows, doc, stats in sorted(outcomes, key=lambda item: item[0]):
                        for row in rows:
                            collected.setdefault(row["key"], row)
                        shard_docs.append(doc)
                        stats_dicts.append(stats)
                # round boundary: forced heartbeat with best-known counts
                live["done"] = len(done) + len(collected)
                round_stats = CacheStats.merged(stats_dicts)
                progress.update(
                    live["done"],
                    cache_hits=round_stats.hits,
                    cache_lookups=round_stats.lookups,
                    force=True,
                )
                if not failures:
                    break
                # dead-worker recovery: read back what the lost shards already
                # flushed, then reassign only the cells still missing
                persisted = store.completed() if store is not None else {}
                for key, row in persisted.items():
                    if key in cell_keys and key not in done:
                        collected.setdefault(key, row)
                remaining = [cell for cell in remaining if cell.key not in collected and cell.key not in done]
                recovery["worker_losses"] += sum(
                    1 for _, exc in failures if active.is_worker_loss(exc)
                )
                if not remaining:
                    # the dead shard had already flushed every cell it owed
                    break
                if round_ >= max_restarts:
                    _abort_sweep(
                        store, spec, done, collected, stats_dicts, workers,
                        recovery, failures, progress,
                    )
                recovery["restarts"] += 1
                recovery["reassigned"] += len(remaining)
                tracer.metrics.counter("engine.sweep_restart").inc()
                round_ += 1

            cache_stats = CacheStats.merged(stats_dicts)
            sweep_span.set(
                cache_hits=cache_stats.hits,
                cache_misses=cache_stats.misses,
                cache_hit_rate=round(cache_stats.hit_rate, 4),
                restarts=recovery["restarts"],
            )

        all_rows = sorted(
            _dedup_rows(done, collected), key=lambda row: row.get("key", "")
        )
        merged = merge_trace_documents(
            shard_docs,
            command=f"sweep ({len(cells)} cells, {workers} workers, {executor.name} backend)",
            extra={"cache": cache_stats.as_dict(), "recovery": recovery},
        )
        result = SweepResult(
            grid=spec.as_dict(),
            rows=all_rows,
            workers=workers,
            cache=cache_stats,
            trace=merged,
            resumed=len(done),
            out_dir=str(store.directory) if store else None,
            recovery=recovery,
            backend=executor.name,
        )
        if store is not None:
            store.write_summary(
                spec.as_dict(),
                all_rows,
                cache_stats=cache_stats.as_dict(),
                workers=workers,
                recovery=recovery,
            )
            store.trace_path.write_text(
                json.dumps(merged, indent=2, default=str) + "\n", encoding="utf-8"
            )
        if monitor is not None:
            monitor.stop()
        # the final event is exact by construction: `done` is the merged row
        # count — the same number summary.json records as "cells"
        progress.finish(
            done=len(all_rows),
            failed=0,
            retries=_merged_counter_total(merged, "engine.cell_retry"),
            cache_hits=cache_stats.hits,
            cache_lookups=cache_stats.lookups,
        )
        return result
    finally:
        executor.close()
        if fallback is not executor:
            fallback.close()
        if monitor is not None:
            monitor.stop()
        progress.close()


class _ProgressMonitor:
    """Background poller feeding heartbeats while parallel shards run.

    The driver cannot observe remote rows directly (shards only report
    back when they finish), so parallel-round heartbeats poll the result
    store's cheap line count — what the workers have flushed so far.  That
    count can legitimately *exceed* the sweep's cell total (torn lines and
    duplicate cells from a recovered worker both count as lines), so the
    monitor clamps it to the cell total itself rather than trusting every
    emitter to: a heartbeat must never report ``done > total``.  The
    counts remain an approximation refined by the exact ``final`` event.
    The thread target is a bound method touching only instance state, the
    engine-concurrency lint's sanctioned shape.
    """

    def __init__(self, progress, store: ResultStore, total: int):
        self._progress = progress
        self._store = store
        self._total = total
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._poll, daemon=True, name="sweep-progress"
        )

    def start(self) -> None:
        self._thread.start()

    def tick(self) -> None:
        """One clamped heartbeat from the store's line count."""
        self._progress.update(min(self._store.count_rows(), self._total))

    def _poll(self) -> None:
        interval = max(0.05, float(self._progress.interval))
        while not self._stop_event.wait(interval):
            self.tick()

    def stop(self) -> None:
        self._stop_event.set()
        self._thread.join(timeout=2.0)


def _merged_counter_total(merged_doc: dict, name: str) -> int:
    """Total of one counter across a merged trace document's metric rows."""
    return sum(
        row.get("value", 0)
        for row in merged_doc.get("metrics", {}).get("counters", [])
        if row.get("name") == name
    )


def _dedup_rows(done: Dict[str, dict], collected: Dict[str, dict]) -> List[dict]:
    """Merge resumed and fresh rows, first occurrence per cell key winning.

    A shard killed after flushing a row but before the resume bookkeeping
    saw it can present the same cell twice (persisted + recomputed); the
    rows are identical by determinism, so keeping the first is sound.
    """
    merged: Dict[str, dict] = dict(done)
    for key, row in collected.items():
        merged.setdefault(key, row)
    return list(merged.values())


def _abort_sweep(
    store, spec, done, collected, stats_dicts, workers, recovery, failures,
    progress=NULL_PROGRESS,
) -> None:
    """Give up after the restart budget: record the damage, raise named."""
    records = []
    first_error: Optional[BaseException] = None
    for payload, exc in failures:
        if first_error is None:
            first_error = exc
        if isinstance(exc, CellExecutionError):
            records.append(exc.as_record())
        else:
            for cell_dict in payload["cells"]:
                cell = Cell.from_dict(cell_dict)
                if cell.key not in collected and cell.key not in done:
                    records.append(
                        {**cell.as_dict(), "key": cell.key, "error": f"{type(exc).__name__}: {exc}"}
                    )
    rows = sorted(_dedup_rows(done, collected), key=lambda row: row.get("key", ""))
    stats = CacheStats.merged(stats_dicts)
    if store is not None:
        store.write_summary(
            spec.as_dict(),
            rows,
            cache_stats=stats.as_dict(),
            workers=workers,
            failed=records,
            recovery=recovery,
        )
    # the sweep *completed* with failures recorded, it did not vanish: emit
    # the exact final event (done == surviving rows, failed == records)
    # before raising, so an all-cells-failed sweep still closes its
    # lifecycle with `final` rather than a bare `aborted`
    progress.finish(
        done=len(rows),
        failed=len(records),
        cache_hits=stats.hits,
        cache_lookups=stats.lookups,
    )
    if isinstance(first_error, CellExecutionError):
        raise first_error
    keys = ", ".join(sorted(record["key"] for record in records)) or "?"
    raise CellExecutionError(
        keys, cause=f"shards failed after {recovery['restarts']} restart(s): {first_error}"
    ) from first_error


def verify_store(directory) -> dict:
    """Replay a finished store's rows against fresh serial computation.

    Re-executes every persisted cell in-process (no cache, no workers) and
    compares the recomputed row byte-for-byte with the stored one — the
    independent check that a store (however many faults its sweep survived)
    contains exactly what a fault-free serial sweep would have produced.
    Also cross-checks ``summary.json``'s rows against the shard rows when a
    summary is present.

    Returns a JSON-ready report::

        {"cells": N, "matched": N, "mismatched": [...], "summary_consistent": bool}
    """
    store = ResultStore(directory)
    rows = store.rows()
    tracer = current_tracer()
    mismatched: List[dict] = []
    with tracer.span("engine.verify_store", cells=len(rows)):
        for row in rows:
            fresh = run_cell(Cell.from_dict(row))
            stored_bytes = json.dumps(row, sort_keys=True, default=str)
            fresh_bytes = json.dumps(fresh, sort_keys=True, default=str)
            if stored_bytes != fresh_bytes:
                mismatched.append({"key": row["key"], "stored": row, "recomputed": fresh})
    summary = store.read_summary()
    summary_consistent = True
    if summary is not None:
        summary_rows = json.dumps(summary.get("rows", []), sort_keys=True, default=str)
        shard_rows = json.dumps(rows, sort_keys=True, default=str)
        summary_consistent = summary_rows == shard_rows
    return {
        "cells": len(rows),
        "matched": len(rows) - len(mismatched),
        "mismatched": mismatched,
        "summary_consistent": summary_consistent,
        "scan": dict(store.last_scan),
    }
