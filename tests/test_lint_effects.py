"""Tests for the interprocedural analyses (repro.lint.callgraph / .effects).

The headline cases are the two the per-line rules provably cannot catch:

* a clock read laundered into model code through two layers of helper
  functions in another module;
* an unpicklable lambda laundered into a pool submission through two
  layers of forwarding helpers.

Fixtures are written as real on-disk package trees under ``tmp_path`` so
``module_name_for`` assigns them model-package names and the import
resolver has actual ``__init__.py`` chains to chase.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.callgraph import MODULE_BODY, CallGraph
from repro.lint.effects import EffectAnalysis, classify_external
from repro.lint.engine import DEFAULT_CONFIG, ProjectUnderLint, module_name_for
from repro.lint.engine import _parse_module


def make_tree(root: Path, files: dict) -> list:
    """Write ``{relpath: source}`` under root, with __init__.py for each dir."""
    modules = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in [path.parent, *path.parent.parents]:
            if parent == root:
                break  # the root itself is not a package: the dotted names
                # of the fixture modules start just below it
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
        path.write_text(source)
    for file in sorted(root.rglob("*.py")):
        mod, syntax = _parse_module(
            file.read_text(), str(file), module_name_for(file), DEFAULT_CONFIG
        )
        assert syntax is None, syntax
        modules.append(mod)
    return modules


def project_for(root: Path, files: dict) -> ProjectUnderLint:
    return ProjectUnderLint(modules=make_tree(root, files), config=DEFAULT_CONFIG)


# ---------------------------------------------------------------------------
# call graph
# ---------------------------------------------------------------------------


class TestCallGraph:
    def test_resolves_relative_import_two_levels_up(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {
                "repro/util/helpers.py": "def helper():\n    return 1\n",
                "repro/core/deep/user.py": (
                    "from ...util.helpers import helper\n"
                    "def use():\n    return helper()\n"
                ),
            },
        )
        graph = project.callgraph
        assert graph.project_callees["repro.core.deep.user.use"] == [
            "repro.util.helpers.helper"
        ]

    def test_resolves_reexport_through_package_init(self, tmp_path):
        files = {
            "repro/util/impl.py": "def work():\n    return 1\n",
            "repro/core/user.py": (
                "from repro.util import work\n"
                "def use():\n    return work()\n"
            ),
        }
        root = tmp_path / "repro"
        modules = make_tree(root, files)
        # overwrite the auto-generated util __init__ with a re-export
        init = root / "repro" / "util" / "__init__.py"
        init.write_text("from .impl import work\n")
        modules = [
            m for m in modules if not m.path.endswith("util/__init__.py")
        ]
        mod, _ = _parse_module(
            init.read_text(), str(init), module_name_for(init), DEFAULT_CONFIG
        )
        modules.append(mod)
        graph = CallGraph(modules)
        assert graph.project_callees["repro.core.user.use"] == [
            "repro.util.impl.work"
        ]

    def test_self_method_call_resolves_to_same_class(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {
                "repro/core/alg.py": (
                    "class Alg:\n"
                    "    def step(self):\n"
                    "        return self.helper()\n"
                    "    def helper(self):\n"
                    "        return 1\n"
                ),
            },
        )
        graph = project.callgraph
        assert graph.project_callees["repro.core.alg.Alg.step"] == [
            "repro.core.alg.Alg.helper"
        ]

    def test_module_body_is_a_pseudo_function(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {"repro/core/boot.py": "def f():\n    return 1\nx = f()\n"},
        )
        graph = project.callgraph
        body = f"repro.core.boot.{MODULE_BODY}"
        assert graph.project_callees[body] == ["repro.core.boot.f"]

    def test_class_instantiation_edges_to_init(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {
                "repro/core/thing.py": (
                    "class Thing:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "def make():\n"
                    "    return Thing()\n"
                ),
            },
        )
        graph = project.callgraph
        assert graph.project_callees["repro.core.thing.make"] == [
            "repro.core.thing.Thing.__init__"
        ]

    def test_external_references_resolved_through_aliases(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {
                "repro/core/t.py": (
                    "import time as clock\n"
                    "def f():\n    return clock.perf_counter()\n"
                ),
            },
        )
        refs = project.callgraph.references["repro.core.t.f"]
        assert [r.dotted for r in refs] == ["time.perf_counter"]
        assert not refs[0].through_project


# ---------------------------------------------------------------------------
# effect classification and masking
# ---------------------------------------------------------------------------


class TestClassifyExternal:
    @pytest.mark.parametrize(
        "dotted,effect",
        [
            ("time.perf_counter", "clock"),
            ("time.time", "clock"),
            ("secrets.token_bytes", "entropy"),
            ("os.urandom", "entropy"),
            ("numpy.random.rand", "entropy"),
            ("random.random", "entropy"),
            ("multiprocessing.Pool", "worker-spawn"),
            ("threading.Thread", "worker-spawn"),
            ("concurrent.futures.ProcessPoolExecutor", "worker-spawn"),
        ],
    )
    def test_forbidden_names(self, dotted, effect):
        assert classify_external(dotted) == effect

    @pytest.mark.parametrize(
        "dotted",
        ["random.Random", "random.Random.randint", "os.path.join", "math.sqrt"],
    )
    def test_benign_names(self, dotted):
        assert classify_external(dotted) is None


class TestEffectInference:
    def test_clock_laundered_through_two_helper_layers(self, tmp_path):
        """THE headline case: per-line rules see nothing in model.py."""
        project = project_for(
            tmp_path / "repro",
            {
                "repro/util/timing.py": (
                    "import time\n"
                    "def _now():\n    return time.perf_counter()\n"
                    "def stamp():\n    return _now()\n"
                ),
                "repro/core/model.py": (
                    "from ..util.timing import stamp\n"
                    "def decide(x):\n    return x + stamp()\n"
                ),
            },
        )
        analysis = project.effects
        fx = analysis.functions["repro.core.model.decide"]
        assert "clock" in fx.visible
        sources = fx.sources["clock"]
        assert sources[0].kind == "call"
        chain = analysis.path("repro.core.model.decide", "clock")
        assert chain == [
            "repro.core.model.decide",
            "repro.util.timing.stamp",
            "repro.util.timing._now",
            "time.perf_counter",
        ]
        # and the rule flags it
        findings = lint_paths([tmp_path / "repro"])
        escaped = [f for f in findings if f.rule == "effect-escape"]
        assert any("decide" in f.message and "clock" in f.message for f in escaped)

    def test_covert_reexport_is_flagged_overt_direct_is_not(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {
                "repro/obs/clockmod.py": "from time import perf_counter\n# repro: clock\n",
                "repro/core/covert.py": (
                    "from ..obs.clockmod import perf_counter\n"
                    "def sneak():\n    return perf_counter()\n"
                ),
            },
        )
        analysis = project.effects
        fx = analysis.functions["repro.core.covert.sneak"]
        assert "clock" in fx.visible
        assert fx.sources["clock"][0].kind == "covert"

    def test_effect_masked_at_declared_boundary(self, tmp_path):
        # the tracer module is a declared clock module: calls into it are
        # contained, so the model caller stays clean
        project = project_for(
            tmp_path / "repro",
            {
                "repro/obs/tracer.py": (
                    "import time\n"
                    "def now():\n    return time.perf_counter()\n"
                ),
                "repro/core/model.py": (
                    "from ..obs.tracer import now\n"
                    "def timed(x):\n    return x, now()\n"
                ),
            },
        )
        analysis = project.effects
        tracer_fx = analysis.functions["repro.obs.tracer.now"]
        assert "clock" in tracer_fx.contained
        assert "clock" not in tracer_fx.visible
        model_fx = analysis.functions["repro.core.model.timed"]
        assert "clock" not in model_fx.visible
        findings = lint_paths([tmp_path / "repro"])
        assert [f for f in findings if f.rule == "effect-escape"] == []

    def test_entropy_masked_at_randomized_module(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {
                "repro/local/randomized.py": (
                    "import random\n"
                    "def coin(rng=None):\n    return random.random()\n"
                ),
                "repro/core/user.py": (
                    "from ..local.randomized import coin\n"
                    "def decide():\n    return coin()\n"
                ),
            },
        )
        analysis = project.effects
        assert "entropy" not in analysis.functions["repro.core.user.decide"].visible

    def test_global_mutation_detected_and_propagated(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {
                "repro/core/registry.py": (
                    "REGISTRY = {}\n"
                    "def register(name, value):\n"
                    "    REGISTRY[name] = value\n"
                    "def convenience(v):\n"
                    "    register('x', v)\n"
                ),
            },
        )
        analysis = project.effects
        assert "global-mutation" in analysis.functions[
            "repro.core.registry.register"
        ].direct
        assert "global-mutation" in analysis.functions[
            "repro.core.registry.convenience"
        ].visible
        findings = lint_paths([tmp_path / "repro"])
        assert any(f.rule == "effect-escape" for f in findings)

    def test_local_shadowing_is_not_global_mutation(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {
                "repro/core/shadow.py": (
                    "CACHE = {}\n"
                    "def pure(x):\n"
                    "    CACHE = {}\n"
                    "    CACHE[x] = 1\n"
                    "    return CACHE\n"
                ),
            },
        )
        analysis = project.effects
        assert "global-mutation" not in analysis.functions[
            "repro.core.shadow.pure"
        ].direct

    def test_noqa_sanctioned_site_does_not_propagate(self, tmp_path):
        project = project_for(
            tmp_path / "repro",
            {
                "repro/core/memo.py": (
                    "_MEMO = {}\n"
                    "def remember(k, v):\n"
                    "    _MEMO[k] = v  # repro: noqa[effect-escape]\n"
                ),
            },
        )
        analysis = project.effects
        fx = analysis.functions["repro.core.memo.remember"]
        assert "global-mutation" not in fx.direct
        assert "global-mutation" in fx.raw_direct
        findings = lint_paths([tmp_path / "repro"])
        assert [f for f in findings if f.rule == "effect-escape"] == []
        # and the consumed noqa is not reported as unused
        assert [f for f in findings if f.rule == "suppression-hygiene"] == []

    def test_effects_lookup_falls_back_to_module_body(self, tmp_path):
        project = project_for(
            tmp_path / "repro", {"repro/core/boot.py": "x = 1\n"}
        )
        fx = project.effects.lookup("repro.core.boot")
        assert fx is not None and fx.qualname.endswith(MODULE_BODY)
