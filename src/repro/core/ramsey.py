"""Finite Ramsey machinery for the Naor-Stockmeyer technique (Section 5.4).

Lemma 5 of the paper extracts, via the *infinite* Ramsey theorem, an
identifier set on which the (finitely-valued!) saturation indicator ``A*``
behaves order-invariantly.  Executably we use the *finite* counterpart,
exactly as the paper's Appendix B does for the randomised case: colour every
``k``-subset of a finite identifier universe by the behaviour it induces and
search for a monochromatic subset.

Two searches are provided:

* :func:`find_monochromatic_subset` — exhaustive over candidate subsets
  (feasible for the small universes the tests and benches use);
* :func:`ramsey_pairs` — the classical pivot extraction for ``k = 2``,
  polynomial and good for larger universes.

:func:`order_invariant_subset` applies the search sequentially over several
"behaviour templates" (neighbourhood shapes): a subset monochromatic for one
template stays monochromatic when later templates shrink it further, so
iterative refinement is sound.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = [
    "find_monochromatic_subset",
    "ramsey_pairs",
    "order_invariant_subset",
]

Behaviour = Callable[[Tuple[int, ...]], Hashable]


def find_monochromatic_subset(
    universe: Sequence[int],
    k: int,
    color: Behaviour,
    target: int,
) -> Optional[Tuple[List[int], Hashable]]:
    """Find ``target`` identifiers whose ``k``-subsets all share one colour.

    ``color`` maps a sorted ``k``-tuple of identifiers to a hashable value.
    Exhaustive search over size-``target`` subsets (ascending lexicographic),
    with memoised colours; returns ``(subset, colour)`` or ``None``.
    """
    ids = sorted(universe)
    if target < k:
        raise ValueError("target size must be at least k")
    cache: Dict[Tuple[int, ...], Hashable] = {}

    def colour_of(tup: Tuple[int, ...]) -> Hashable:
        if tup not in cache:
            cache[tup] = color(tup)
        return cache[tup]

    for candidate in combinations(ids, target):
        subsets = combinations(candidate, k)
        first = colour_of(next(subsets))
        if all(colour_of(s) == first for s in subsets):
            return list(candidate), first
    return None


def ramsey_pairs(
    universe: Sequence[int],
    color: Behaviour,
    target: int,
) -> Optional[Tuple[List[int], Hashable]]:
    """Pivot extraction for ``k = 2`` (the textbook Ramsey proof, effectively).

    Builds a pre-homogeneous sequence — each pivot sees a single colour
    towards everything after it — then takes the longest constant-colour
    run of pivots.  Polynomial time; may return ``None`` if the universe is
    too small for the requested target.
    """
    remaining = sorted(universe)
    pivots: List[Tuple[int, Hashable]] = []
    while len(remaining) >= 2:
        pivot, rest = remaining[0], remaining[1:]
        classes: Dict[Hashable, List[int]] = {}
        for y in rest:
            classes.setdefault(color((pivot, y)), []).append(y)
        best_color, best_class = max(classes.items(), key=lambda kv: len(kv[1]))
        pivots.append((pivot, best_color))
        remaining = best_class
    groups: Dict[Hashable, List[int]] = {}
    for pid, c in pivots:
        groups.setdefault(c, []).append(pid)
    if not groups:
        return None
    best_color, members = max(groups.items(), key=lambda kv: len(kv[1]))
    if len(members) < target:
        return None
    return sorted(members)[:target], best_color


def order_invariant_subset(
    universe: Sequence[int],
    templates: Sequence[Tuple[int, Behaviour]],
    target: int,
    intermediate_slack: int = 2,
) -> Optional[Tuple[List[int], List[Hashable]]]:
    """Sequentially refine the universe until every template is monochromatic.

    ``templates`` is a list of ``(k, behaviour)`` pairs — ``behaviour`` maps
    a sorted ``k``-tuple of identifiers (assigned, in order, to the template
    neighbourhood's nodes) to the induced output pattern.  Returns
    ``(identifier set I, constant behaviour per template)``; on ``I`` every
    order-respecting identifier assignment induces the *same* behaviour on
    every template — the executable content of Lemma 5.

    Refinement is sound because subsets of a monochromatic set remain
    monochromatic; earlier steps aim ``intermediate_slack`` above the final
    ``target`` per remaining template so that later searches have room.  As
    with any finite Ramsey statement the search can fail on a too-small
    universe, in which case ``None`` is returned and the caller should widen
    the identifier pool.
    """
    current = sorted(universe)
    constants: List[Hashable] = []
    for idx, (k, behaviour) in enumerate(templates):
        remaining = len(templates) - 1 - idx
        step_target = min(len(current), target + intermediate_slack * remaining)
        if step_target < max(target, k):
            return None
        found = find_monochromatic_subset(current, k, behaviour, step_target)
        if found is None and step_target > target:
            found = find_monochromatic_subset(current, k, behaviour, target)
        if found is None:
            return None
        current, constant = found
        constants.append(constant)
    return current, constants
