"""Error-path and boundary coverage across the stack: the failure modes a
downstream user will actually hit must fail loudly and informatively."""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, Optional

import pytest

from repro.graphs.families import cycle_graph, path_graph, single_node_with_loops
from repro.graphs.multigraph import ECGraph
from repro.local.algorithm import (
    DistributedAlgorithm,
    SimulatedECWeights,
    SimulatedPOWeights,
)
from repro.local.context import NodeContext
from repro.matching.proposal import ProposalFM


class Stubborn(DistributedAlgorithm):
    """Never halts; used to exercise round-cap errors."""

    model = "EC"

    def initial_state(self, ctx):
        return 0

    def send(self, state, ctx):
        return {}

    def receive(self, state, ctx, inbox):
        return state + 1

    def output(self, state, ctx):
        return None


class TestAdapterErrors:
    def test_simulated_ec_requires_ec_model(self):
        with pytest.raises(ValueError, match="EC-model"):
            SimulatedECWeights(ProposalFM("ID"))

    def test_simulated_po_requires_po_model(self):
        with pytest.raises(ValueError, match="PO-model"):
            SimulatedPOWeights(ProposalFM("EC"))

    def test_non_halting_algorithm_raises(self):
        alg = SimulatedECWeights(Stubborn(), max_rounds_factory=lambda g: 5)
        with pytest.raises(RuntimeError, match="did not halt"):
            alg.run_on(cycle_graph(4))


class TestGraphErrors:
    def test_edge_lookup_on_missing_node(self):
        g = path_graph(2)
        with pytest.raises(KeyError):
            g.degree("ghost")

    def test_remove_missing_edge(self):
        g = path_graph(2)
        with pytest.raises(KeyError):
            g.remove_edge(999)

    def test_disjoint_union_tags_prevent_collisions(self):
        g = single_node_with_loops(1)
        u = g.disjoint_union(g)
        assert u.num_nodes() == 2
        u.validate()


class TestAdversaryBoundaries:
    def test_delta_two_is_base_case_only(self):
        from repro.core.adversary import run_adversary
        from repro.matching.greedy_color import greedy_color_algorithm

        witness = run_adversary(greedy_color_algorithm(), 2)
        assert witness.achieved_depth == 0
        assert len(witness.steps) == 1
        assert witness.steps[0].side == "base"

    def test_refute_claim_zero(self):
        """Even a claimed 0-round algorithm is refutable: tau_0 views of the
        base pair are isomorphic (bare nodes) yet the outputs differ."""
        from repro.core.theorem import refute
        from repro.matching.greedy_color import greedy_color_algorithm

        r = refute(greedy_color_algorithm(), claimed_rounds=0, delta=3)
        assert r.kind == "locality-violation"
        assert r.step.index == 0


class TestVerifierEdgeCases:
    def test_isolated_node_accepts_vacuously(self):
        from repro.matching.verify import verify_distributed

        g = ECGraph()
        g.add_node("lonely")
        ok, verdicts, rounds = verify_distributed(g, {"lonely": {}})
        assert ok

    def test_empty_graph_lp(self):
        from repro.matching.lp import max_weight_fm_lp

        assert max_weight_fm_lp(ECGraph()) == (0.0, {})


class TestCanonicalOrderErrors:
    def test_bad_direction_rejected_everywhere(self):
        from repro.core.canonical_order import reduce_word

        with pytest.raises(ValueError):
            reduce_word([(1, 2)])

    def test_unreduced_bracket_rejected(self):
        from repro.core.canonical_order import bracket

        with pytest.raises(ValueError):
            bracket(((1, 1), (1, -1)))


class TestSimulationChainErrors:
    def test_oi_from_id_pool_exhaustion_message(self):
        from repro.core.sim_oi_id import OIFromID
        from repro.core.sim_po_oi import POFromOI
        from repro.graphs.ports import po_double_from_ec

        oi = OIFromID(ProposalFM("ID"), t=2, id_pool=[1, 2])
        d = po_double_from_ec(cycle_graph(4))
        with pytest.raises(ValueError, match="identifier pool"):
            POFromOI(oi).run_on(d)

    def test_symmetric_adapter_model_check(self):
        from repro.core.sim_po_oi import SymmetricOIAdapter

        with pytest.raises(ValueError, match="PO-model"):
            SymmetricOIAdapter(ProposalFM("EC"), t=2)
