"""E4 — Figures 1-3 / Section 3: the deterministic models and their glue.

Paper artefacts: the PO1 <-> PO2 equivalence (Figure 2), the EC/PO loop
degree conventions and factor graphs (Figure 3), universal covers and lift
invariance (Section 3.4).  Measured: conversion round-trips, factor-graph
compression on symmetric families, cover construction costs, and empirical
lift invariance of the simulator.
"""

from __future__ import annotations

import random

import pytest

from repro.core.saturation import check_lift_invariance
from repro.graphs.cover import universal_cover_ec
from repro.graphs.factor import factor_graph
from repro.graphs.families import cycle_graph, random_loopy_tree, single_node_with_loops
from repro.graphs.ports import po_double_from_ec, port_numbering_from_po
from repro.matching.greedy_color import greedy_color_algorithm


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_factor_graph_compression(benchmark, record, n):
    g = cycle_graph(n)

    def compute():
        return factor_graph(g)

    fg, _ = benchmark.pedantic(compute, rounds=1, iterations=1)
    record(
        "E4 factor graphs compress symmetric inputs (Figure 3)",
        family=f"C{n} (even)" if n % 2 == 0 else f"C{n}",
        nodes=n,
        factor_nodes=fg.num_nodes(),
    )


@pytest.mark.parametrize("loops,radius", [(2, 4), (3, 4), (3, 6), (4, 5)])
def test_universal_cover_growth(benchmark, record, loops, radius):
    g = single_node_with_loops(loops)
    cover = benchmark.pedantic(
        lambda: universal_cover_ec(g, 0, radius), rounds=1, iterations=1
    )
    record(
        "E4 truncated universal covers (Section 3.4)",
        base="1 node, " + str(loops) + " loops",
        radius=radius,
        cover_nodes=cover.tree.num_nodes(),
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_lift_invariance_of_simulator(benchmark, record, seed):
    g = random_loopy_tree(5, 1, seed=seed)
    rng = random.Random(seed)
    problems = benchmark.pedantic(
        lambda: check_lift_invariance(greedy_color_algorithm(), g, rng, trials=3),
        rounds=1,
        iterations=1,
    )
    assert problems == []
    record(
        "E4 lift invariance of simulator outputs (condition (2))",
        graph=f"loopy tree seed={seed}",
        trials=3,
        violations=len(problems),
    )


def test_port_numbering_round_trip(benchmark, record):
    g = po_double_from_ec(cycle_graph(8))
    numbering = benchmark.pedantic(lambda: port_numbering_from_po(g), rounds=1, iterations=1)
    slots = sum(len(v) for v in numbering.values())
    assert slots == 2 * g.num_edges()
    record(
        "E4 PO1 <-> PO2 conversions (Figure 2)",
        graph="doubled C8",
        arcs=g.num_edges(),
        port_slots=slots,
    )
