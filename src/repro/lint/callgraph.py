"""Project-wide call-graph construction for the interprocedural rules.

Builds, from the parsed modules of one lint run, a conservative static call
graph: every function (and every module body, as the pseudo-function
``<module>``), the project functions it calls, and every *external* dotted
name it references.  Resolution follows import aliases — including relative
imports and re-export chains through package ``__init__`` files — so

    from repro.obs.tracer import perf_counter

resolves ``perf_counter()`` to ``time.perf_counter`` *through* the project,
which is exactly the laundering the per-line rules cannot see.  The effect
analysis (:mod:`repro.lint.effects`) distinguishes such *covert* references
(``through_project=True``) from overt ones the import-scanning rules already
catch on their own line.

The graph is deliberately conservative: names rebound at runtime, calls
through containers, and attribute calls on unannotated objects resolve to
``unknown`` rather than guessing.  Soundness for the contract rules comes
from the *direct* effect scans — an unresolved call can hide a callee's
effects from a caller, but the callee itself is still scanned and flagged
in its own module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .engine import ModuleUnderLint
from .rules.common import attribute_chain

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "Reference",
    "Resolution",
    "MODULE_BODY",
]

#: qualname tail used for a module's top-level code.
MODULE_BODY = "<module>"

#: depth guard for re-export chains (cyclic ``__init__`` imports).
_MAX_RESOLVE_DEPTH = 16


@dataclass(frozen=True)
class Resolution:
    """What a name used in some function resolved to.

    ``kind`` is one of:

    * ``"project"`` — a function/method defined in a linted module
      (``target`` is its qualname);
    * ``"class"``   — a class defined in a linted module (``target`` is the
      class qualname; instantiation is edged to ``__init__`` when defined);
    * ``"module"``  — a linted module itself (``target`` is its name);
    * ``"external"``— a canonical dotted name outside the project
      (``target`` e.g. ``"time.perf_counter"``);
    * ``"local"``   — a function-local binding (parameter, local variable,
      nested def);
    * ``"unknown"`` — could not be resolved statically.

    ``through_project`` marks resolutions that chased at least one project
    re-export — the name as written in the using module does *not* reveal
    the external target, so per-line rules cannot flag it.
    """

    kind: str
    target: Optional[str]
    through_project: bool = False


@dataclass
class FunctionInfo:
    """One function (or module body) as a call-graph node."""

    qualname: str
    module: str
    name: str
    lineno: int
    cls: Optional[str]
    params: Tuple[str, ...]
    nodes: Tuple[ast.AST, ...]
    nested_defs: FrozenSet[str]
    local_names: FrozenSet[str]
    local_callables: FrozenSet[str]
    is_module_body: bool = False

    @property
    def annotations(self) -> Dict[str, Optional[str]]:
        """Parameter name -> dotted annotation text (best effort)."""
        out: Dict[str, Optional[str]] = {}
        for node in self.nodes:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                ann = arg.annotation
                dotted = attribute_chain(ann) if ann is not None else None
                if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                    dotted = ann.value
                out[arg.arg] = dotted
        return out


@dataclass
class CallSite:
    """One call expression inside a function."""

    caller: str
    node: ast.Call
    resolution: Resolution
    #: trailing attribute for unresolved ``obj.attr(...)`` calls — lets the
    #: concurrency rule recognise ``pool.submit(...)`` without knowing
    #: ``pool``'s type.
    attr: Optional[str] = None


@dataclass(frozen=True)
class Reference:
    """One use of an externally-resolved dotted name inside a function."""

    caller: str
    line: int
    dotted: str
    through_project: bool


def _is_package_init(mod: ModuleUnderLint) -> bool:
    return Path(mod.path).name == "__init__.py"


class _ModuleSymbols:
    """Name bindings visible at a module's top level."""

    def __init__(self, mod: ModuleUnderLint) -> None:
        self.module = mod.module
        #: the package relative imports resolve against
        if _is_package_init(mod):
            self.package = mod.module
        else:
            self.package = mod.module.rpartition(".")[0]
        self.functions: Dict[str, str] = {}
        self.classes: Dict[str, Dict[str, str]] = {}
        self.imports: Dict[str, str] = {}
        self.assigned: Set[str] = set()
        self._collect(mod.tree)

    def _collect(self, tree: ast.AST) -> None:
        for stmt in getattr(tree, "body", []):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = f"{self.module}.{stmt.name}"
            elif isinstance(stmt, ast.ClassDef):
                methods = {
                    sub.name: f"{self.module}.{stmt.name}.{sub.name}"
                    for sub in stmt.body
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                self.classes[stmt.name] = methods
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            self.assigned.add(node.id)
        # imports anywhere in the module (function-local imports included:
        # they bind a narrower scope, but recording them module-wide only
        # makes resolution *more* complete, never less sound)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        self.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{base}.{alias.name}" if base else alias.name

    def _import_base(self, node: ast.ImportFrom) -> Optional[str]:
        """The absolute dotted module an ``from X import ...`` names."""
        if node.level == 0:
            return node.module or ""
        parts = self.package.split(".") if self.package else []
        climb = node.level - 1
        if climb > len(parts):
            return None
        kept = parts[: len(parts) - climb]
        if node.module:
            kept.append(node.module)
        return ".".join(kept) if kept else None


class CallGraph:
    """The static call graph of one lint run's modules."""

    def __init__(self, modules: Sequence[ModuleUnderLint]) -> None:
        self.modules: Dict[str, ModuleUnderLint] = {}
        self._symbols: Dict[str, _ModuleSymbols] = {}
        for mod in modules:
            if mod.module not in self.modules:
                self.modules[mod.module] = mod
                self._symbols[mod.module] = _ModuleSymbols(mod)
        self.functions: Dict[str, FunctionInfo] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        self.references: Dict[str, List[Reference]] = {}
        for mod in self.modules.values():
            self._collect_functions(mod)
        for info in self.functions.values():
            self._collect_uses(info)
        #: caller qualname -> sorted unique project callee qualnames
        self.project_callees: Dict[str, List[str]] = {
            caller: sorted(
                {
                    site.resolution.target
                    for site in sites
                    if site.resolution.kind == "project" and site.resolution.target
                }
            )
            for caller, sites in self.calls.items()
        }

    # -- construction ----------------------------------------------------

    def _collect_functions(self, mod: ModuleUnderLint) -> None:
        module_nodes: List[ast.AST] = []
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(mod, sub, cls=stmt.name)
                    else:
                        module_nodes.append(sub)
                module_nodes.extend(stmt.bases)
                module_nodes.extend(stmt.decorator_list)
            else:
                module_nodes.append(stmt)
        qualname = f"{mod.module}.{MODULE_BODY}"
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=mod.module,
            name=MODULE_BODY,
            lineno=1,
            cls=None,
            params=(),
            nodes=tuple(module_nodes),
            nested_defs=frozenset(),
            local_names=frozenset(),
            local_callables=frozenset(),
            is_module_body=True,
        )

    def _add_function(
        self, mod: ModuleUnderLint, node: ast.AST, cls: Optional[str]
    ) -> None:
        name = node.name
        qualname = (
            f"{mod.module}.{cls}.{name}" if cls else f"{mod.module}.{name}"
        )
        args = node.args
        params = tuple(
            arg.arg
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        if args.vararg:
            params += (args.vararg.arg,)
        if args.kwarg:
            params += (args.kwarg.arg,)

        nested: Set[str] = set()
        local_names: Set[str] = set(params)
        local_callables: Set[str] = set()
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                nested.add(sub.name)
                local_names.add(sub.name)
                local_callables.add(sub.name)
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
                local_names.add(sub.id)
            elif isinstance(sub, ast.ExceptHandler) and sub.name:
                local_names.add(sub.name)
            elif isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Lambda):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        local_callables.add(target.id)
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=mod.module,
            name=name,
            lineno=node.lineno,
            cls=cls,
            params=params,
            nodes=(node,),
            nested_defs=frozenset(nested),
            local_names=frozenset(local_names),
            local_callables=frozenset(local_callables),
        )

    # -- name resolution -------------------------------------------------

    def resolve(self, module: str, dotted: str, _depth: int = 0, _through: bool = False) -> Resolution:
        """Resolve a dotted name as used at ``module``'s top level."""
        if _depth > _MAX_RESOLVE_DEPTH:
            return Resolution("unknown", None, _through)
        syms = self._symbols.get(module)
        if syms is None:
            return Resolution("external", dotted, _through)
        head, _sep, rest = dotted.partition(".")
        if head in syms.functions:
            if rest:
                return Resolution("unknown", None, _through)
            return Resolution("project", syms.functions[head], _through)
        if head in syms.classes:
            if not rest:
                return Resolution("class", f"{module}.{head}", _through)
            first = rest.split(".")[0]
            method = syms.classes[head].get(first)
            if method and first == rest:
                return Resolution("project", method, _through)
            return Resolution("unknown", None, _through)
        if head in syms.imports:
            target = syms.imports[head] + (f".{rest}" if rest else "")
            return self.resolve_absolute(target, _depth + 1, _through)
        if head in syms.assigned:
            return Resolution("unknown", None, _through)
        return Resolution("external", dotted, _through)

    def resolve_absolute(self, dotted: str, _depth: int = 0, _through: bool = False) -> Resolution:
        """Resolve an absolute dotted name, chasing project re-exports."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self._symbols:
                rest = ".".join(parts[cut:])
                if not rest:
                    return Resolution("module", prefix, _through)
                return self.resolve(prefix, rest, _depth + 1, _through=True)
        return Resolution("external", dotted, _through)

    # -- use collection --------------------------------------------------

    def _collect_uses(self, info: FunctionInfo) -> None:
        calls: List[CallSite] = []
        refs: List[Reference] = []

        def resolve_chain(dotted: str) -> Resolution:
            head = dotted.split(".")[0]
            if head in ("self", "cls") and info.cls is not None:
                parts = dotted.split(".")
                if len(parts) == 2:
                    methods = self._symbols[info.module].classes.get(info.cls, {})
                    target = methods.get(parts[1])
                    if target:
                        return Resolution("project", target)
                return Resolution("unknown", None)
            if head in info.local_names:
                if head in info.nested_defs and "." not in dotted:
                    return Resolution("local", dotted)
                return Resolution("local" if "." not in dotted else "unknown", None)
            res = self.resolve(info.module, dotted)
            if res.kind == "class" and res.target:
                init = f"{res.target}.__init__"
                if init in self.functions:
                    return Resolution("project", init, res.through_project)
            return res

        def note(dotted: str, line: int, res: Resolution) -> None:
            if res.kind == "external" and res.target:
                refs.append(
                    Reference(
                        caller=info.qualname,
                        line=line,
                        dotted=res.target,
                        through_project=res.through_project,
                    )
                )

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.Call):
                func = node.func
                dotted = attribute_chain(func)
                if dotted is not None:
                    res = resolve_chain(dotted)
                    note(dotted, func.lineno, res)
                    attr = None
                    if res.kind in ("unknown", "local") and isinstance(func, ast.Attribute):
                        attr = func.attr
                    calls.append(
                        CallSite(caller=info.qualname, node=node, resolution=res, attr=attr)
                    )
                else:
                    calls.append(
                        CallSite(
                            caller=info.qualname,
                            node=node,
                            resolution=Resolution("unknown", None),
                            attr=func.attr if isinstance(func, ast.Attribute) else None,
                        )
                    )
                    visit(func)
                for arg in node.args:
                    visit(arg)
                for kw in node.keywords:
                    visit(kw.value)
                return
            if isinstance(node, (ast.Name, ast.Attribute)):
                dotted = attribute_chain(node)
                if dotted is not None:
                    if isinstance(getattr(node, "ctx", None), ast.Load):
                        note(dotted, node.lineno, resolve_chain(dotted))
                    return  # leaf chain fully consumed (any ctx)
                if isinstance(node, ast.Attribute):
                    visit(node.value)
                return
            for child in ast.iter_child_nodes(node):
                visit(child)

        for node in info.nodes:
            visit(node)
        self.calls[info.qualname] = calls
        self.references[info.qualname] = refs

    # -- queries ---------------------------------------------------------

    def call_sites(self, caller: str, callee: str) -> List[CallSite]:
        """The sites in ``caller`` whose resolution is project ``callee``."""
        return [
            site
            for site in self.calls.get(caller, [])
            if site.resolution.kind == "project" and site.resolution.target == callee
        ]

    def functions_in(self, module: str) -> List[FunctionInfo]:
        """All function infos of one module, module body included."""
        return sorted(
            (f for f in self.functions.values() if f.module == module),
            key=lambda f: (f.lineno, f.qualname),
        )
