"""Tests for the model-contract static analyzer (repro.lint)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import (
    DEFAULT_CONFIG,
    lint_paths,
    lint_source,
    module_name_for,
    render_json,
    render_text,
    summarize,
)

SRC = Path(__file__).resolve().parents[1] / "src"


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# rule: locality
# ---------------------------------------------------------------------------

CHEATING_EC = """
from repro.local.algorithm import DistributedAlgorithm

class Cheater(DistributedAlgorithm):
    model = "EC"
    def initial_state(self, ctx):
        return {"me": ctx.node}
    def send(self, state, ctx):
        return {}
    def receive(self, state, ctx, inbox):
        return state
    def output(self, state, ctx):
        return ctx.identifier
"""

ID_ALGORITHM = """
from repro.local.algorithm import DistributedAlgorithm

class IdAlg(DistributedAlgorithm):
    model = "ID"
    def initial_state(self, ctx):
        return ctx.identifier
    def send(self, state, ctx):
        return {p: ctx.node for p in ctx.ports}
    def receive(self, state, ctx, inbox):
        return state
    def output(self, state, ctx):
        return state
"""

REACHY_EC = """
class Reacher:
    model = "EC"
    def initial_state(self, ctx):
        from repro.local.runtime import ECNetwork
        return ECNetwork
    def send(self, state, ctx):
        global shared
        return {}
"""


class TestLocalityRule:
    def test_ec_algorithm_reading_node_and_identifier_is_flagged(self):
        findings = lint_source(CHEATING_EC, module="fixture")
        assert rules_of(findings) == ["locality"]
        assert len(findings) == 2  # ctx.node and ctx.identifier
        assert any("ctx.node" in f.message for f in findings)
        assert any("ctx.identifier" in f.message for f in findings)

    def test_id_algorithm_may_read_identity(self):
        assert lint_source(ID_ALGORITHM, module="fixture") == []

    def test_runtime_import_and_global_inside_method_are_flagged(self):
        findings = lint_source(REACHY_EC, module="fixture")
        assert rules_of(findings) == ["locality"]
        assert any("machinery" in f.message for f in findings)
        assert any("global" in f.message for f in findings)

    def test_noqa_suppresses_locality(self):
        suppressed = CHEATING_EC.replace(
            'return {"me": ctx.node}',
            'return {"me": ctx.node}  # repro: noqa[locality]',
        ).replace(
            "return ctx.identifier",
            "return ctx.identifier  # repro: noqa[locality]",
        )
        assert lint_source(suppressed, module="fixture") == []


# ---------------------------------------------------------------------------
# rule: determinism
# ---------------------------------------------------------------------------

AMBIENT_RANDOM = """
import random

def flip():
    return random.random() < 0.5
"""

SEEDED_RANDOM = """
import random

def make(seed: int) -> random.Random:
    return random.Random(seed)
"""

UNSEEDED_RANDOM = """
import random

def make():
    return random.Random()
"""

NUMPY_TIME_ENTROPY = """
import numpy as np
import os
import time

def stamp():
    return time.time(), np.random.rand(), os.urandom(4)
"""


class TestDeterminismRule:
    def test_ambient_random_is_flagged(self):
        findings = lint_source(AMBIENT_RANDOM, module="fixture")
        assert rules_of(findings) == ["determinism"]

    def test_seeded_random_is_allowed(self):
        assert lint_source(SEEDED_RANDOM, module="fixture") == []

    def test_unseeded_random_is_flagged(self):
        findings = lint_source(UNSEEDED_RANDOM, module="fixture")
        assert any("unseeded" in f.message for f in findings)

    def test_numpy_time_urandom_are_flagged(self):
        findings = lint_source(NUMPY_TIME_ENTROPY, module="fixture")
        messages = " ".join(f.message for f in findings)
        assert "numpy.random" in messages
        assert "time" in messages
        assert "urandom" in messages

    def test_declared_randomized_module_is_skipped(self):
        declared = lint_source(AMBIENT_RANDOM, module="repro.local.randomized")
        assert declared == []

    def test_randomized_marker_line_is_honoured(self):
        marked = "# repro: randomized\n" + AMBIENT_RANDOM
        assert lint_source(marked, module="fixture") == []

    def test_from_import_of_ambient_name_is_flagged(self):
        findings = lint_source("from random import choice\n", module="fixture")
        assert rules_of(findings) == ["determinism"]
        assert lint_source("from random import Random\n", module="fixture") == []


CLOCK_ONLY = """
import time

def now():
    return time.perf_counter()
"""

CLOCK_AND_RANDOM = """
import random
import time

def tainted():
    return time.perf_counter() + random.random()
"""


class TestClockExemption:
    """The observability tracer is a sanctioned clock reader — and only that.

    Nothing the model computes may depend on a clock, so the exemption is
    surgical: it relaxes the ``time`` checks alone, for exactly the modules
    in ``LintConfig.clock_modules`` or carrying a ``# repro: clock`` marker.
    """

    def test_tracer_module_is_sanctioned_by_config(self):
        assert "repro.obs.tracer" in DEFAULT_CONFIG.clock_modules
        assert lint_source(CLOCK_ONLY, module="repro.obs.tracer") == []

    def test_other_modules_still_flag_time(self):
        findings = lint_source(CLOCK_ONLY, module="repro.obs.export")
        assert rules_of(findings) == ["determinism"]
        assert any("time" in f.message for f in findings)

    def test_clock_marker_line_is_honoured(self):
        marked = "# repro: clock\n" + CLOCK_ONLY
        assert lint_source(marked, module="fixture") == []

    def test_from_time_import_is_exempt_in_clock_module(self):
        source = "from time import perf_counter\n"
        assert lint_source(source, module="repro.obs.tracer") == []
        assert rules_of(lint_source(source, module="fixture")) == ["determinism"]

    def test_exemption_does_not_cover_other_entropy(self):
        # a sanctioned clock module may read clocks but not ambient randomness
        findings = lint_source(CLOCK_AND_RANDOM, module="repro.obs.tracer")
        assert rules_of(findings) == ["determinism"]
        assert all("random" in f.message for f in findings)

    def test_sanctioned_modules_are_the_only_time_readers_in_src(self):
        # linting src with the exemption removed flags exactly the sanctioned
        # clock modules: the tracer (span timing), the shard runtime (retry
        # backoff, watchdog joins), the fault injector (stall injection), the
        # progress emitter (heartbeat throttling/ETAs), the bench runner
        # (the warmup/repeat timing harness) and the sweep service's
        # token-bucket rate limiter
        from dataclasses import replace

        strict = replace(DEFAULT_CONFIG, clock_modules=frozenset())
        findings = lint_paths([SRC], config=strict, select=["determinism"])
        offenders = {f.path for f in findings}
        assert offenders == {
            str(SRC / "repro" / "obs" / "tracer.py"),
            str(SRC / "repro" / "obs" / "progress.py"),
            str(SRC / "repro" / "obs" / "bench" / "runner.py"),
            str(SRC / "repro" / "engine" / "executors" / "shard.py"),
            str(SRC / "repro" / "engine" / "faults.py"),
            str(SRC / "repro" / "service" / "jobs.py"),
        }

    def test_sanctioned_clock_set_is_exactly_declared(self):
        # the PR-5 pattern: the config names the sanctioned set explicitly,
        # so adding a clock reader anywhere else must touch this assertion
        assert DEFAULT_CONFIG.clock_modules == frozenset(
            {
                "repro.obs.tracer",
                "repro.obs.progress",
                "repro.obs.bench.runner",
                "repro.engine.executors.shard",
                "repro.engine.faults",
                "repro.service.jobs",
            }
        )


POOL_ONLY = """
import multiprocessing

def fan_out(jobs):
    with multiprocessing.get_context("spawn").Pool(2) as pool:
        return pool.map(len, jobs)
"""

POOL_AND_RANDOM = """
import multiprocessing
import random

def shuffle_jobs(jobs):
    random.shuffle(jobs)
    return jobs
"""


class TestWorkerExemption:
    """The sweep engine's pool is the sanctioned process spawner — only that.

    Worker scheduling is nondeterministic, so like the clock exemption this
    one is surgical: it relaxes the worker-pool import checks alone, for
    exactly the modules in ``LintConfig.worker_modules`` or carrying a
    ``# repro: workers`` marker.
    """

    def test_pool_module_is_sanctioned_by_config(self):
        assert "repro.engine.pool" in DEFAULT_CONFIG.worker_modules
        assert lint_source(POOL_ONLY, module="repro.engine.pool") == []

    def test_other_modules_flag_worker_imports(self):
        findings = lint_source(POOL_ONLY, module="repro.core.adversary")
        assert rules_of(findings) == ["determinism"]
        assert any("workers" in f.message for f in findings)

    def test_from_import_and_threading_are_flagged(self):
        source = "from concurrent.futures import ProcessPoolExecutor\nimport threading\n"
        findings = lint_source(source, module="fixture")
        assert len(findings) == 2
        assert rules_of(findings) == ["determinism"]

    def test_workers_marker_line_is_honoured(self):
        marked = "# repro: workers\n" + POOL_ONLY
        assert lint_source(marked, module="fixture") == []

    def test_exemption_does_not_cover_randomness(self):
        findings = lint_source(POOL_AND_RANDOM, module="repro.engine.pool")
        assert rules_of(findings) == ["determinism"]
        assert all("random" in f.message for f in findings)

    def test_shipped_executors_are_the_only_spawners_in_src(self):
        # the driver (monitor thread), the shard runtime (watchdog thread),
        # the process/socket backends, and the sweep service (queue-drain
        # workers + the threading HTTP front-end); the inline backend runs
        # on asyncio and needs no sanction at all
        from dataclasses import replace

        strict = replace(DEFAULT_CONFIG, worker_modules=frozenset())
        findings = lint_paths([SRC], config=strict, select=["determinism"])
        offenders = {f.path for f in findings}
        assert offenders == {
            str(SRC / "repro" / "engine" / "pool.py"),
            str(SRC / "repro" / "engine" / "executors" / "shard.py"),
            str(SRC / "repro" / "engine" / "executors" / "process.py"),
            str(SRC / "repro" / "engine" / "executors" / "sockets.py"),
            str(SRC / "repro" / "service" / "jobs.py"),
            str(SRC / "repro" / "service" / "server.py"),
        }

    def test_sanctioned_worker_set_is_exactly_declared(self):
        # same exact-set discipline as the clock exemption: growing the
        # executors package must grow this assertion consciously
        assert DEFAULT_CONFIG.worker_modules == frozenset(
            {
                "repro.engine.pool",
                "repro.engine.executors.shard",
                "repro.engine.executors.process",
                "repro.engine.executors.sockets",
                "repro.service.jobs",
                "repro.service.server",
            }
        )


KERNEL_TOUCHING = """
def attach(kernel, snap):
    object.__setattr__(kernel, "_soa", snap)
"""


class TestKernelExemption:
    """The SoA snapshot/label layers are sanctioned kernel modules — only those.

    Frozen kernels are immutable everywhere else, so like the clock and
    worker exemptions this one is surgical: it masks the kernel-mutation
    effect for exactly the modules in ``LintConfig.kernel_modules`` (the
    kernel/builder implementation, the columnar snapshot layer that memoizes
    onto the kernel's dedicated ``_soa`` slot, and the interned-label table
    backing the digest tokens).
    """

    def test_soa_and_labels_are_sanctioned_by_config(self):
        assert "repro.graphs.soa" in DEFAULT_CONFIG.kernel_modules
        assert "repro.graphs.labels" in DEFAULT_CONFIG.kernel_modules
        assert lint_source(KERNEL_TOUCHING, module="repro.graphs.soa") == []
        assert lint_source(KERNEL_TOUCHING, module="repro.graphs.labels") == []

    def test_other_modules_still_flag_kernel_mutation(self):
        findings = lint_source(KERNEL_TOUCHING, module="repro.core.adversary")
        assert rules_of(findings) == ["kernel-escape"]

    def test_soa_snapshot_slot_is_a_kernel_internal(self):
        # the memoized snapshot slot counts as a frozen attribute: forging
        # it from outside the sanctioned modules is a kernel escape
        from repro.lint.effects import KERNEL_INTERNALS

        assert "_soa" in KERNEL_INTERNALS

    def test_unsanctioning_soa_flags_the_snapshot_memo(self):
        # with the exemption narrowed back to the kernel module alone, the
        # snapshot layer's memo writes surface as kernel-escape findings
        from dataclasses import replace

        strict = replace(
            DEFAULT_CONFIG, kernel_modules=frozenset({"repro.graphs.kernel"})
        )
        findings = lint_paths([SRC], config=strict, select=["kernel-escape"])
        offenders = {f.path for f in findings}
        assert str(SRC / "repro" / "graphs" / "soa.py") in offenders

    def test_sanctioned_kernel_set_is_exactly_declared(self):
        # same exact-set discipline as the clock and worker exemptions:
        # growing the kernel implementation must grow this assertion
        assert DEFAULT_CONFIG.kernel_modules == frozenset(
            {
                "repro.graphs.kernel",
                "repro.graphs.soa",
                "repro.graphs.labels",
            }
        )


# ---------------------------------------------------------------------------
# rule: exact-arith
# ---------------------------------------------------------------------------

FLOATY = """
def ratio(a, b):
    x = 0.5
    return float(a) / b + x
"""


class TestExactArithRule:
    def test_floats_and_division_flagged_inside_scope(self):
        findings = lint_source(FLOATY, module="repro.matching.fixture")
        assert rules_of(findings) == ["exact-arith"]
        assert len(findings) == 3  # literal, float(), division

    def test_out_of_scope_module_is_ignored(self):
        assert lint_source(FLOATY, module="repro.graphs.fixture") == []

    def test_lp_and_analysis_are_exempt(self):
        assert lint_source(FLOATY, module="repro.matching.lp") == []
        assert lint_source(FLOATY, module="repro.analysis") == []

    def test_core_is_in_scope(self):
        findings = lint_source(FLOATY, module="repro.core.fixture")
        assert rules_of(findings) == ["exact-arith"]

    def test_noqa_suppresses_exact_arith(self):
        suppressed = FLOATY.replace("x = 0.5", "x = 0.5  # repro: noqa[exact-arith]").replace(
            "return float(a) / b + x",
            "return float(a) / b + x  # repro: noqa[exact-arith]",
        )
        assert lint_source(suppressed, module="repro.matching.fixture") == []


# ---------------------------------------------------------------------------
# rule: frozen-mutation
# ---------------------------------------------------------------------------

MUTATING = """
def sneak(ctx, extra):
    ctx.globals["extra"] = extra
    ctx.globals.update(extra)
    object.__setattr__(ctx, "model", "ID")

def poke(ball):
    ball.distances.pop(0)

def renamed(snapshot: NodeContext):
    snapshot.ports = ()
"""

CLEAN_STATE = """
def step(state, ctx):
    state["weights"] = dict(state["weights"])
    state["weights"][0] = 1
    return state
"""


class TestFrozenMutationRule:
    def test_context_view_ball_mutation_flagged(self):
        findings = lint_source(MUTATING, module="fixture")
        assert rules_of(findings) == ["frozen-mutation"]
        assert len(findings) == 5

    def test_annotated_parameter_is_tracked(self):
        findings = lint_source(MUTATING, module="fixture")
        # snapshot.ports = () is only caught via the NodeContext annotation
        assert any("snapshot" in f.message for f in findings)

    def test_ordinary_state_mutation_is_fine(self):
        assert lint_source(CLEAN_STATE, module="fixture") == []

    def test_noqa_suppresses_mutation(self):
        suppressed = MUTATING.replace(
            'ctx.globals["extra"] = extra',
            'ctx.globals["extra"] = extra  # repro: noqa[frozen-mutation]',
        )
        findings = lint_source(suppressed, module="fixture")
        assert len(findings) == 4

    def test_kernel_mutation_now_owned_by_kernel_escape(self):
        # kernels moved from the name-heuristic frozen-mutation rule to the
        # interprocedural kernel-escape rule
        source = (
            "def corrupt(kernel, g):\n"
            "    kernel._slots[0] = {}\n"
            "    kernel._edges.pop(3)\n"
            "    object.__setattr__(kernel, '_digest', 'forged')\n"
        )
        findings = lint_source(source, module="fixture")
        assert set(rules_of(findings)) == {"kernel-escape"}
        assert len(findings) == 3


# ---------------------------------------------------------------------------
# suppression machinery
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_bare_noqa_silences_every_rule(self):
        source = 'import random\nx = random.random()  # repro: noqa\n'
        assert lint_source(source, module="fixture") == []

    def test_listed_noqa_only_silences_named_rules(self):
        source = 'import random\nx = random.random()  # repro: noqa[exact-arith]\n'
        findings = lint_source(source, module="fixture")
        assert "determinism" in rules_of(findings)
        # and the decoy suppression is itself reported as unused
        assert "suppression-hygiene" in rules_of(findings)

    def test_multiple_rules_in_one_noqa(self):
        source = (
            "import random\n"
            "x = random.random()  # repro: noqa[determinism, exact-arith]\n"
        )
        assert lint_source(source, module="fixture") == []

    def test_noqa_anywhere_on_a_multiline_statement_suppresses(self):
        # the finding anchors on the random.random() line; the suppression
        # sits two physical lines later, still inside the same statement
        source = (
            "import random\n"
            "x = [\n"
            "    random.random()\n"
            "    for _ in range(3)\n"
            "    # repro: noqa[determinism]\n"
            "]\n"
        )
        assert lint_source(source, module="fixture") == []

    def test_noqa_on_first_line_covers_wrapped_expression(self):
        source = (
            "import random\n"
            "x = (  # repro: noqa[determinism]\n"
            "    random.random()\n"
            ")\n"
        )
        assert lint_source(source, module="fixture") == []

    def test_noqa_inside_function_body_does_not_leak_to_def_line(self):
        # a compound statement's span is its header only: a noqa buried in
        # the body must not suppress findings anchored on other body lines
        source = (
            "import random\n"
            "def f():\n"
            "    y = 1  # repro: noqa[determinism]\n"
            "    return random.random()\n"
        )
        findings = lint_source(source, module="fixture")
        assert "determinism" in rules_of(findings)

    def test_docstring_mentioning_noqa_is_not_a_suppression(self):
        source = (
            '"""Docs showing the # repro: noqa[determinism] syntax."""\n'
            "import random\n"
            "x = random.random()\n"
        )
        findings = lint_source(source, module="fixture")
        assert "determinism" in rules_of(findings)

    def test_unknown_select_raises(self):
        import pytest

        with pytest.raises(ValueError, match="unknown lint rule"):
            lint_source("x = 1\n", module="fixture", select=["not-a-rule"])


# ---------------------------------------------------------------------------
# engine + reporters + the shipped tree
# ---------------------------------------------------------------------------


class TestEngine:
    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n", module="fixture")
        assert rules_of(findings) == ["syntax"]

    def test_module_name_for_walks_packages(self):
        assert module_name_for(SRC / "repro" / "matching" / "lp.py") == "repro.matching.lp"
        assert module_name_for(SRC / "repro" / "lint" / "__init__.py") == "repro.lint"

    def test_module_name_for_file_outside_any_package(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) == "script"

    def test_module_name_for_stops_at_missing_intermediate_init(self, tmp_path):
        # pkg/ has no __init__.py, so the climb stops there: sub is the root
        (tmp_path / "pkg" / "sub").mkdir(parents=True)
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        mod = tmp_path / "pkg" / "sub" / "leaf.py"
        mod.write_text("x = 1\n")
        assert module_name_for(mod) == "sub.leaf"

    def test_module_name_for_init_of_nested_package(self, tmp_path):
        (tmp_path / "a" / "b").mkdir(parents=True)
        (tmp_path / "a" / "__init__.py").write_text("")
        (tmp_path / "a" / "b" / "__init__.py").write_text("")
        assert module_name_for(tmp_path / "a" / "b" / "__init__.py") == "a.b"

    def test_module_name_for_loose_init_is_its_directory(self, tmp_path):
        # an __init__.py whose own directory has no parent package
        (tmp_path / "only").mkdir()
        init = tmp_path / "only" / "__init__.py"
        init.write_text("")
        assert module_name_for(init) == "only"

    def test_lint_paths_dedupes_file_given_directly_and_via_directory(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        once = lint_paths([tmp_path])
        twice = lint_paths([tmp_path, bad])
        thrice = lint_paths([bad, tmp_path, bad])
        assert once and once == twice == thrice
        assert len(set(once)) == len(once)  # no duplicated findings

    def test_default_config_declares_the_randomized_trio(self):
        assert "repro.local.randomized" in DEFAULT_CONFIG.randomized_modules
        assert "repro.matching.random_priority" in DEFAULT_CONFIG.randomized_modules
        assert "repro.matching.integral" in DEFAULT_CONFIG.randomized_modules

    def test_select_restricts_rules(self):
        findings = lint_source(FLOATY, module="repro.matching.fixture", select=["locality"])
        assert findings == []


class TestReporters:
    def test_render_json_round_trips(self):
        findings = lint_source(FLOATY, module="repro.matching.fixture")
        payload = json.loads(render_json(findings))
        assert payload["clean"] is False
        assert payload["total"] == 3
        assert payload["by_rule"] == {"exact-arith": 3}
        assert len(payload["findings"]) == 3

    def test_render_text_clean_message(self):
        assert "clean" in render_text([])

    def test_summarize_clean(self):
        assert summarize([]) == {"clean": True, "total": 0, "by_rule": {}, "findings": []}


class TestShippedTreeIsContractClean:
    def test_lint_paths_on_src_is_clean(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_lint_exits_zero_on_src(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_lint_json_output(self, capsys):
        assert main(["lint", str(SRC), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True

    def test_cli_lint_nonzero_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "determinism" in out

    def test_cli_sanitize_demo(self, capsys):
        assert main(["lint", "--sanitize-demo"]) == 0
        out = capsys.readouterr().out
        assert "cheating algorithm caught" in out
        assert "honest algorithm clean: True" in out
