"""E7 — Section 5.4, Lemmas 5-7: finite Ramsey extraction of order-invariance.

Paper claim: the saturation indicator's finite range lets Ramsey's theorem
extract identifier sets on which an ID-algorithm behaves order-invariantly
on loopy neighbourhoods.  Measured: the extraction succeeds for both an
order-oblivious machine and the deliberately identifier-sensitive
ParityTiltFM (which needs a constant-parity subset), plus Lemma 6/7 checks.
"""

from __future__ import annotations

import pytest

from repro.core.sim_oi_id import (
    extract_order_invariant_ids,
    lemma6_check,
    lemma7_check,
    loopy_oi_neighbourhood,
)
from repro.graphs.families import single_node_with_loops
from repro.graphs.ports import po_double_from_ec
from repro.local.identifiers import sparse_subset
from repro.matching.naive import ParityTiltFM
from repro.matching.proposal import ProposalFM


def nbhd_of(loops: int, t: int):
    return loopy_oi_neighbourhood(po_double_from_ec(single_node_with_loops(loops)), 0, t)


@pytest.mark.parametrize("machine_name", ["proposal (order-oblivious)", "parity-tilt (id-sensitive)"])
def test_lemma5_extraction(benchmark, record, machine_name):
    machine = ProposalFM("ID") if "proposal" in machine_name else ParityTiltFM()
    nbhd = nbhd_of(2, 1)
    found = benchmark.pedantic(
        lambda: extract_order_invariant_ids(
            machine, [nbhd], range(20, 40), target=nbhd.size + 1
        ),
        rounds=1,
        iterations=1,
    )
    assert found is not None
    record(
        "E7 Lemma 5: Ramsey-extracted order-invariant identifier sets",
        machine=machine_name,
        neighbourhood_size=nbhd.size,
        universe=20,
        extracted=len(found),
    )


def test_lemma6_saturation(benchmark, record):
    nbhd = nbhd_of(2, 3)
    pool = [10 * i + 7 for i in range(nbhd.size)]
    ok = benchmark.pedantic(
        lambda: lemma6_check(ProposalFM("ID"), nbhd, pool), rounds=1, iterations=1
    )
    assert ok
    record(
        "E7 Lemma 6: centre saturated under order-respecting assignments",
        neighbourhood_size=nbhd.size,
        radius=3,
        saturated=ok,
    )


def test_lemma7_order_invariance(benchmark, record):
    nbhd = nbhd_of(2, 2)
    pool = sparse_subset(range(0, 20 * nbhd.size), m=3)
    ok = benchmark.pedantic(
        lambda: lemma7_check(ProposalFM("ID"), nbhd, pool, limit=5), rounds=1, iterations=1
    )
    assert ok
    record(
        "E7 Lemma 7: outputs invariant across sparse-pool assignments",
        neighbourhood_size=nbhd.size,
        pool_size=len(pool),
        assignments_tested=5,
        invariant=ok,
    )
