"""Model separations (paper, Section 2.1 and Figure 1), executable.

The paper calibrates the four deterministic models with two examples:

* *"there are problems that are trivial to solve in ID, OI, and PO but
  impossible to solve in EC ... (example: graph colouring in 1-regular
  graphs)"* — a PO algorithm 2-colours a perfect matching in zero rounds
  (tails take colour 0, heads colour 1), but in EC both endpoints of an
  edge have *identical views at every radius*, so any EC algorithm outputs
  the same colour on both: :func:`ec_coloring_impossibility_certificate`
  produces that certificate for any radius.

* *"there are also problems that can be solved with a local algorithm in EC
  but they do not admit a local algorithm in ID, OI, or PO (example:
  maximal matching)"* — greedy-by-colour maximal matching runs in
  ``k = O(Delta)`` EC rounds (:class:`GreedyColorMatching`), while in the
  ID model maximal matching needs ``Omega(log* n)`` rounds (Linial), i.e.
  is not strictly local.

Both halves are used by the Section 2.1 tests and benches.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..graphs.digraph import POGraph
from ..graphs.multigraph import ECGraph
from ..local.algorithm import DistributedAlgorithm
from ..local.context import NodeContext
from ..local.runtime import ECNetwork, run
from ..local.views import ec_view_tree

Node = Hashable

__all__ = [
    "two_color_one_regular_po",
    "ec_coloring_impossibility_certificate",
    "GreedyColorMatching",
    "maximal_matching_in_ec",
]


def two_color_one_regular_po(g: POGraph) -> Dict[Node, int]:
    """2-colour a 1-regular PO-graph with no communication at all.

    Every node of a 1-regular PO-graph is either the tail or the head of
    its unique arc — locally visible information — so tails take colour 0
    and heads colour 1.  Raises ``ValueError`` on non-1-regular inputs
    (including directed loops, whose node is both tail and head: the lift
    argument below applies to them too).
    """
    colors: Dict[Node, int] = {}
    for v in g.nodes():
        out_deg, in_deg = len(g.out_colors(v)), len(g.in_colors(v))
        if out_deg + in_deg != 1:
            raise ValueError(f"node {v!r} has PO degree {out_deg + in_deg}, not 1")
        colors[v] = 0 if out_deg == 1 else 1
    return colors


def ec_coloring_impossibility_certificate(radius: int) -> Tuple[ECGraph, Node, Node]:
    """Why no EC algorithm colours 1-regular graphs: a symmetry certificate.

    Returns the single-edge EC-graph ``K2`` and its two endpoints, whose
    view trees agree at the given radius (checked, not assumed).  Since any
    EC algorithm is a function of the view, it must output the same colour
    on both endpoints of the edge — never a proper colouring.  This is the
    ``t``-round impossibility for every ``t``.
    """
    g = ECGraph()
    g.add_edge("u", "v", 1)
    view_u = ec_view_tree(g, "u", radius)
    view_v = ec_view_tree(g, "v", radius)
    if view_u != view_v:  # pragma: no cover - would falsify the theorem
        raise AssertionError("K2 endpoints must have identical EC views")
    return g, "u", "v"


class GreedyColorMatching(DistributedAlgorithm):
    """EC-model maximal (integral) matching in ``k`` rounds.

    Round ``r`` handles the ``r``-th palette colour: both endpoints of each
    live colour-``r`` edge announce whether they are still unmatched, and
    the edge joins the matching iff both are.  Colour classes are matchings
    (properness), so no conflicts arise; when an edge's colour is handled,
    either it joins or an endpoint is already matched — maximality.

    Output per node: ``{colour: 0/1}`` flags (1 = incident edge of that
    colour is in the matching).  Loops cannot belong to a matching, and a
    loop's echo would make an unmatched node "match with its own copy", so
    the wrapper :func:`maximal_matching_in_ec` strips loops before running
    — integral matching is a problem on the loop-free part by definition.
    """

    model = "EC"

    def initial_state(self, ctx: NodeContext) -> Dict[str, Any]:
        return {
            "palette": list(ctx.globals["palette"]),
            "step": 0,
            "matched": False,
            "flags": {},
        }

    def send(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Any]:
        step = state["step"]
        if step >= len(state["palette"]):
            return {}
        color = state["palette"][step]
        if color in ctx.ports:
            return {color: state["matched"]}
        return {}

    def receive(self, state: Dict[str, Any], ctx: NodeContext, inbox: Dict[Any, Any]) -> Dict[str, Any]:
        state = dict(state)
        state["flags"] = dict(state["flags"])
        step = state["step"]
        if step < len(state["palette"]):
            color = state["palette"][step]
            if color in ctx.ports:
                their_matched = inbox[color]
                take = not state["matched"] and not their_matched
                state["flags"][color] = 1 if take else 0
                if take:
                    state["matched"] = True
        state["step"] = step + 1
        return state

    def output(self, state: Dict[str, Any], ctx: NodeContext) -> Optional[Dict[Any, int]]:
        if state["step"] < len(state["palette"]):
            return None
        return {c: state["flags"].get(c, 0) for c in ctx.ports}


def maximal_matching_in_ec(g: ECGraph) -> Tuple[Set[int], int]:
    """Run greedy-by-colour matching in the EC model; return (edge ids, rounds).

    Loops are excluded up front (they cannot belong to a matching; on the
    loop-free rest the algorithm's self-matching concern vanishes).  The
    result is verified to be a maximal matching of the loop-free part.
    """
    core = g.copy()
    for e in list(core.edges()):
        if e.is_loop:
            core.remove_edge(e.eid)
    network = ECNetwork(core, globals_={"palette": core.colors()})
    result = run(network, GreedyColorMatching(), max_rounds=len(core.colors()) + 1)
    if not result.halted:
        raise RuntimeError("greedy matching did not halt")
    chosen: Set[int] = set()
    for v, flags in result.outputs.items():
        for color, flag in flags.items():
            if flag:
                chosen.add(core.edge_at(v, color).eid)
    return chosen, result.rounds
