"""Rule registry.

Two kinds of rules:

* *module rules* — ``check(module: ModuleUnderLint) -> Iterator[Finding]``,
  the per-line contract checks; they see one module at a time;
* *project rules* — ``check(project: ProjectUnderLint) -> Iterator[Finding]``,
  the interprocedural whole-program checks; they see every module of the
  run plus the shared call-graph/effect analyses.

Project rules run after all module rules, in registry order;
``suppression-hygiene`` must stay last — it audits the accumulated raw
findings of every other rule.  Each rule lives in its own module and
enforces one model contract; see ``docs/static_analysis.md`` for the
paper/DESIGN justification of each, or ``repro lint --explain RULE`` for
the rule's own documentation.
"""

from __future__ import annotations

from . import (
    concurrency,
    determinism,
    effect_escape,
    exact_arith,
    kernel_escape,
    locality,
    mutation,
    suppression,
)

MODULE_RULES = {
    locality.RULE_ID: locality.check,
    determinism.RULE_ID: determinism.check,
    exact_arith.RULE_ID: exact_arith.check,
    mutation.RULE_ID: mutation.check,
}

PROJECT_RULES = {
    effect_escape.RULE_ID: effect_escape.check,
    concurrency.RULE_ID: concurrency.check,
    kernel_escape.RULE_ID: kernel_escape.check,
    # must stay last: audits every other rule's raw findings
    suppression.RULE_ID: suppression.check,
}

ALL_RULES = {**MODULE_RULES, **PROJECT_RULES}

#: rule id -> implementing module (``repro lint --explain`` reads these docs).
RULE_MODULES = {
    locality.RULE_ID: locality,
    determinism.RULE_ID: determinism,
    exact_arith.RULE_ID: exact_arith,
    mutation.RULE_ID: mutation,
    effect_escape.RULE_ID: effect_escape,
    concurrency.RULE_ID: concurrency,
    kernel_escape.RULE_ID: kernel_escape,
    suppression.RULE_ID: suppression,
}

__all__ = ["ALL_RULES", "MODULE_RULES", "PROJECT_RULES", "RULE_MODULES"]
