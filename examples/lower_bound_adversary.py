"""The paper's Theorem 1, live: run the unfold-and-mix adversary.

For each algorithm and each maximum degree Delta, the Section 4 adversary
constructs the pairs (G_i, H_i) of loopy edge-coloured graphs, i = 0 ..
Delta-2, machine-checking on every step that

  (P1) the radius-i views at the witness nodes are isomorphic while the
       algorithm's outputs differ on a common loop colour,
  (P2) the graphs keep their loop budget (Delta-1-i loops per node), and
  (P3) they are trees once loops are ignored.

Reaching depth Delta-2 certifies run-time > Delta-2: Omega(Delta).
Incorrect fast algorithms are caught instead, with a certificate.

Run:  python examples/lower_bound_adversary.py
"""

from __future__ import annotations

from repro.core import refute, run_adversary
from repro.core.witness import AlgorithmFailure
from repro.matching import greedy_color_algorithm, proposal_algorithm
from repro.matching.naive import DegreeSplitFM, ZeroFM


def certify_correct_algorithms() -> None:
    print("== correct algorithms: witness depth grows linearly in Delta ==")
    print(f"{'algorithm':20} {'Delta':>5} {'witness depth':>14} {'graph size':>11}")
    for make in (greedy_color_algorithm, proposal_algorithm):
        for delta in (3, 4, 5, 6, 7):
            alg = make()
            witness = run_adversary(alg, delta)
            assert witness.all_valid and witness.achieved_depth == delta - 2
            top = witness.steps[-1]
            print(
                f"{alg.name:20} {delta:>5} {witness.achieved_depth:>14} "
                f"{top.graph_g.num_nodes() + top.graph_h.num_nodes():>11}"
            )
    print()


def show_one_witness() -> None:
    print("== anatomy of a witness (greedy-by-colour, Delta = 5) ==")
    witness = run_adversary(greedy_color_algorithm(), 5)
    for step in witness.steps:
        print(
            f"  step {step.index} [{step.side:>4}]: |G|={step.graph_g.num_nodes():>2} "
            f"|H|={step.graph_h.num_nodes():>2}  loop colour {step.color!r}: "
            f"weights {step.weight_g} vs {step.weight_h}  "
            f"(balls isomorphic: {step.balls_isomorphic}, loops/node >= {step.loop_budget})"
        )
    print(f"  => {witness.conclusion()}")
    print()


def catch_flawed_algorithms() -> None:
    print("== flawed fast algorithms are refuted with certificates ==")
    for alg in (ZeroFM(), DegreeSplitFM()):
        try:
            run_adversary(alg, 5)
            print(f"  {alg.name}: unexpectedly survived!")
        except AlgorithmFailure as failure:
            print(f"  {alg.name}: caught — {failure}")
    refutation = refute(greedy_color_algorithm(), claimed_rounds=2, delta=6)
    print(f"  claimed-2-rounds greedy: {refutation.kind} — {refutation.summary()}")
    print()


def main() -> None:
    certify_correct_algorithms()
    show_one_witness()
    catch_flawed_algorithms()


if __name__ == "__main__":
    main()
