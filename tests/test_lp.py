"""Tests for maximum-weight FM solvers (repro.matching.lp)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.graphs.families import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    single_node_with_loops,
    star_graph,
)
from repro.graphs.multigraph import ECGraph
from repro.matching.lp import fractional_matching_number_exact, max_weight_fm_lp
from repro.matching.sequential import greedy_maximal_fm


class TestLP:
    def test_single_edge(self):
        opt, weights = max_weight_fm_lp(path_graph(2))
        assert opt == pytest.approx(1.0)

    def test_path4(self):
        # P4 has a perfect matching: nu_f = 2
        opt, _ = max_weight_fm_lp(path_graph(4))
        assert opt == pytest.approx(2.0)

    def test_odd_cycle_is_half_integral(self):
        """nu_f(C5) = 5/2: all weights 1/2 — fractional beats integral (2)."""
        opt, _ = max_weight_fm_lp(cycle_graph(5))
        assert opt == pytest.approx(2.5)

    def test_star(self):
        opt, _ = max_weight_fm_lp(star_graph(5))
        assert opt == pytest.approx(1.0)

    def test_loop_saturates_alone(self):
        opt, weights = max_weight_fm_lp(single_node_with_loops(1))
        assert opt == pytest.approx(1.0)

    def test_empty_graph(self):
        assert max_weight_fm_lp(ECGraph()) == (0.0, {})

    def test_lp_weights_feasible(self):
        g = random_bounded_degree_graph(16, 4, seed=1)
        opt, weights = max_weight_fm_lp(g)
        for v in g.nodes():
            load = sum(weights[e.eid] for e in g.incident_edges(v))
            assert load <= 1.0 + 1e-7


class TestExact:
    def test_matches_lp_on_loop_free(self):
        for g in (path_graph(5), cycle_graph(5), cycle_graph(6), complete_graph(4)):
            opt, _ = max_weight_fm_lp(g)
            exact = fractional_matching_number_exact(g)
            assert float(exact) == pytest.approx(opt, abs=1e-6)

    def test_odd_cycle_exact_value(self):
        assert fractional_matching_number_exact(cycle_graph(7)) == Fraction(7, 2)

    def test_rejects_loops(self):
        with pytest.raises(ValueError):
            fractional_matching_number_exact(single_node_with_loops(1))

    def test_random_graphs_agree(self):
        for seed in range(3):
            g = random_bounded_degree_graph(12, 3, seed=seed)
            opt, _ = max_weight_fm_lp(g)
            exact = fractional_matching_number_exact(g)
            assert float(exact) == pytest.approx(opt, abs=1e-6)


class TestHalfApproximation:
    def test_maximal_fm_is_half_of_optimum(self):
        """Section 1.2: a maximal FM is a 1/2-approximation of the maximum."""
        for seed in range(4):
            g = random_bounded_degree_graph(18, 4, seed=seed)
            fm = greedy_maximal_fm(g)
            opt, _ = max_weight_fm_lp(g)
            assert float(fm.total_weight()) >= opt / 2 - 1e-9


class TestDuality:
    """LP duality nu_f = tau_f (Section 1.2's background identity)."""

    def test_duality_on_samples(self):
        from repro.matching.lp import min_fractional_vertex_cover_lp

        for g in (path_graph(5), cycle_graph(5), cycle_graph(8), star_graph(4)):
            nu, _ = max_weight_fm_lp(g)
            tau, _ = min_fractional_vertex_cover_lp(g)
            assert tau == pytest.approx(nu, abs=1e-6)

    def test_duality_random(self):
        from repro.matching.lp import min_fractional_vertex_cover_lp

        for seed in range(4):
            g = random_bounded_degree_graph(16, 4, seed=seed)
            nu, _ = max_weight_fm_lp(g)
            tau, _ = min_fractional_vertex_cover_lp(g)
            assert tau == pytest.approx(nu, abs=1e-6)

    def test_loop_forces_full_cover_value(self):
        from repro.matching.lp import min_fractional_vertex_cover_lp

        g = single_node_with_loops(1)
        tau, values = min_fractional_vertex_cover_lp(g)
        assert tau == pytest.approx(1.0)
        assert values[0] == pytest.approx(1.0)

    def test_cover_values_feasible(self):
        from repro.matching.lp import min_fractional_vertex_cover_lp

        g = random_bounded_degree_graph(14, 4, seed=9)
        _, values = min_fractional_vertex_cover_lp(g)
        for e in g.edges():
            total = values[e.u] + (0 if e.is_loop else values[e.v])
            assert total >= 1.0 - 1e-7

    def test_empty_graph(self):
        from repro.matching.lp import min_fractional_vertex_cover_lp

        tau, _ = min_fractional_vertex_cover_lp(ECGraph())
        assert tau == 0.0
