"""Chaos tests: the sweep engine under deterministic fault injection.

The headline invariant — merged sweep rows serialise byte-identically to a
fault-free serial sweep — must hold under every fault class in
``repro.engine.faults``: worker kills, worker exceptions, shard truncation,
cache corruption, cell stalls past the watchdog, and transient cache I/O
errors, plus randomly sampled combinations over a seeded matrix.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import (
    CellExecutionError,
    Fault,
    FaultInjector,
    FaultPlan,
    run_sweep,
    smoke_grid,
    verify_store,
)
from repro.engine.faults import InjectedWorkerError, active_injector, as_plan, use_faults
from repro.obs import Tracer, use_tracer

SRC = str(Path(__file__).resolve().parent.parent / "src")


def rows_bytes(rows) -> str:
    return json.dumps(rows, sort_keys=True, default=str)


@pytest.fixture(scope="module")
def baseline():
    """The fault-free serial smoke sweep every chaos run must reproduce."""
    result = run_sweep(smoke_grid(), workers=0, use_cache=False)
    return rows_bytes(result.rows), [row["key"] for row in result.rows]


class TestFaultPlan:
    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            faults=(
                Fault(kind="kill-worker", cell="greedy/d3/ec/s0"),
                Fault(kind="corrupt-cache", offset=3, length=2),
            ),
            seed=11,
            note="roundtrip",
        )
        path = plan.dump(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="set-on-fire")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault fields"):
            Fault.from_dict({"kind": "kill-worker", "blast_radius": 3})

    def test_foreign_format_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan format"):
            FaultPlan.from_dict({"format": "somebody-elses-plan", "faults": []})

    def test_sample_is_deterministic(self):
        keys = ["greedy/d3/ec/s0", "proposal/d4/ec/s0"]
        assert FaultPlan.sample(keys, seed=5) == FaultPlan.sample(keys, seed=5)
        assert FaultPlan.sample(keys, seed=5) != FaultPlan.sample(keys, seed=6)

    def test_sample_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="empty grid"):
            FaultPlan.sample([], seed=0)

    def test_as_plan_coercions(self, tmp_path):
        plan = FaultPlan(faults=(Fault(kind="raise-worker"),))
        assert as_plan(None) is None
        assert as_plan(plan) is plan
        assert as_plan(plan.as_dict()) == plan
        assert as_plan(plan.dump(tmp_path / "p.json")) == plan


class TestFaultInjector:
    def test_fires_at_most_times(self):
        plan = FaultPlan(faults=(Fault(kind="raise-worker", cell="*", attempt=None, times=1),))
        injector = FaultInjector(plan)
        with pytest.raises(InjectedWorkerError):
            injector.on_worker_cell("a/d3/ec/s0", 0)
        injector.on_worker_cell("a/d3/ec/s0", 1)  # spent: no second fire
        assert len(injector.report()) == 1

    def test_cell_pattern_must_match(self):
        plan = FaultPlan(faults=(Fault(kind="raise-worker", cell="greedy/d3/ec/s0"),))
        injector = FaultInjector(plan)
        injector.on_worker_cell("proposal/d3/ec/s0", 0)  # no match, no fire
        with pytest.raises(InjectedWorkerError):
            injector.on_worker_cell("greedy/d3/ec/s0", 0)

    def test_restart_round_anchoring(self):
        """A round-0 kill does not fire again during the recovery round."""
        plan = FaultPlan(faults=(Fault(kind="kill-worker", cell="*", attempt=0, times=5),))
        injector = FaultInjector(plan)  # in_worker=False degrades to raise
        with pytest.raises(InjectedWorkerError):
            injector.on_worker_cell("x/d3/ec/s0", 0)
        injector.on_worker_cell("x/d3/ec/s0", 1)  # round 1: anchored away

    def test_fires_are_counted_on_the_tracer(self):
        tracer = Tracer()
        plan = FaultPlan(faults=(Fault(kind="raise-worker"),))
        with use_tracer(tracer):
            injector = FaultInjector(plan)
            with pytest.raises(InjectedWorkerError):
                injector.on_worker_cell("x/d3/ec/s0", 0)
        counters = {
            (c["name"], c["labels"].get("kind")): c["value"]
            for c in tracer.metrics.snapshot()["counters"]
        }
        assert counters[("engine.fault", "raise-worker")] == 1

    def test_use_faults_none_is_a_noop(self):
        with use_faults(None) as installed:
            assert installed is None
            assert active_injector() is None


class TestChaosInvariant:
    """Every fault class: the sweep completes and rows match the baseline."""

    def test_kill_worker_sigkill(self, tmp_path, baseline):
        base, keys = baseline
        plan = FaultPlan(faults=(Fault(kind="kill-worker", cell=keys[2]),))
        result = run_sweep(
            smoke_grid(), workers=2, out_dir=tmp_path / "out", use_cache=False, faults=plan
        )
        assert rows_bytes(result.rows) == base
        assert result.recovery["restarts"] >= 1
        assert result.recovery["worker_losses"] >= 1

    def test_raise_worker_serial(self, baseline):
        base, keys = baseline
        plan = FaultPlan(faults=(Fault(kind="raise-worker", cell=keys[1]),))
        result = run_sweep(smoke_grid(), workers=0, use_cache=False, faults=plan)
        assert rows_bytes(result.rows) == base
        assert result.recovery["restarts"] == 1

    def test_shard_truncation_plus_worker_loss(self, tmp_path, baseline):
        """A torn shard row and a dead worker in the same sweep both heal."""
        base, keys = baseline
        plan = FaultPlan(
            faults=(
                Fault(kind="truncate-shard", cell=keys[1], offset=-5),
                Fault(kind="kill-worker", cell=keys[3]),
            )
        )
        result = run_sweep(
            smoke_grid(), workers=2, out_dir=tmp_path / "out", use_cache=False, faults=plan
        )
        assert rows_bytes(result.rows) == base

    def test_cell_stall_hits_watchdog_and_retries(self, baseline):
        base, keys = baseline
        plan = FaultPlan(faults=(Fault(kind="stall-cell", cell=keys[0], seconds=0.6, attempt=0),))
        result = run_sweep(
            smoke_grid(), workers=0, use_cache=False, faults=plan,
            cell_timeout=0.2, retries=1,
        )
        assert rows_bytes(result.rows) == base
        # shard-local counters are merged into the sweep's trace document
        counters = {c["name"]: c["value"] for c in result.trace["metrics"]["counters"]}
        assert counters["engine.cell_timeout"] == 1
        assert counters["engine.cell_retry"] == 1
        assert counters["engine.fault"] == 1

    def test_cache_corruption_recomputed_next_sweep(self, tmp_path, baseline):
        base, _ = baseline
        cache_dir = tmp_path / "cache"
        plan = FaultPlan(faults=(Fault(kind="corrupt-cache", offset=0, length=6),))
        first = run_sweep(smoke_grid(), workers=0, cache_dir=cache_dir, faults=plan)
        assert rows_bytes(first.rows) == base
        second = run_sweep(smoke_grid(), workers=0, cache_dir=cache_dir)
        assert rows_bytes(second.rows) == base
        assert second.cache.disk_corrupt >= 1

    def test_transient_cache_io_errors(self, tmp_path, baseline):
        base, _ = baseline
        plan = FaultPlan(
            faults=(
                Fault(kind="cache-io-error", op="read"),
                Fault(kind="cache-io-error", op="write"),
            )
        )
        result = run_sweep(smoke_grid(), workers=0, cache_dir=tmp_path / "cache", faults=plan)
        assert rows_bytes(result.rows) == base
        assert result.cache.disk_errors >= 2

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sampled_fault_matrix(self, tmp_path, baseline, seed):
        """Seeded random fault combinations: the sweep always recovers."""
        base, keys = baseline
        plan = FaultPlan.sample(keys, seed=seed)
        result = run_sweep(
            smoke_grid(),
            workers=2,
            out_dir=tmp_path / f"out{seed}",
            cache_dir=tmp_path / f"cache{seed}",
            faults=plan,
        )
        assert rows_bytes(result.rows) == base


class TestFailureReporting:
    def test_unsurvivable_fault_names_the_cell(self, tmp_path, baseline):
        """A fault that outlives every restart raises a *named* error and
        records the failed cell in summary.json (not a bare pool teardown)."""
        _, keys = baseline
        plan = FaultPlan(
            faults=(Fault(kind="raise-worker", cell=keys[0], attempt=None, times=99),)
        )
        out = tmp_path / "out"
        with pytest.raises(CellExecutionError) as excinfo:
            run_sweep(
                smoke_grid(), workers=0, out_dir=out, use_cache=False,
                faults=plan, max_restarts=1,
            )
        assert keys[0] in str(excinfo.value)
        summary = json.loads((out / "summary.json").read_text())
        assert summary["failed"], "summary.json must record the failed cells"
        assert any(record["key"] == keys[0] for record in summary["failed"])
        # the healthy cells the failing shard did not block are persisted
        assert summary["recovery"]["restarts"] == 1

    def test_cell_execution_error_survives_pickling(self):
        import pickle

        err = CellExecutionError("g/d3/ec/s0", "greedy", 3, "ec", 0, "ValueError: boom")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.key == err.key
        assert clone.as_record() == err.as_record()
        assert "greedy" in str(clone) and "g/d3/ec/s0" in str(clone)


class TestVerifyStore:
    def test_clean_store_verifies(self, tmp_path, baseline):
        base, _ = baseline
        out = tmp_path / "out"
        run_sweep(smoke_grid(), workers=0, out_dir=out, use_cache=False)
        report = verify_store(out)
        assert report["cells"] == 4
        assert report["matched"] == 4
        assert report["mismatched"] == []
        assert report["summary_consistent"] is True

    def test_tampered_row_detected(self, tmp_path):
        out = tmp_path / "out"
        run_sweep(smoke_grid(), workers=0, out_dir=out, use_cache=False)
        shard = out / "shard-0.jsonl"
        lines = shard.read_text().splitlines()
        tampered = json.loads(lines[0])
        tampered["witness_depth"] = 99
        lines[0] = json.dumps(tampered, sort_keys=True)
        shard.write_text("\n".join(lines) + "\n")
        report = verify_store(out)
        assert len(report["mismatched"]) == 1
        assert report["mismatched"][0]["key"] == tampered["key"]


HAMMER_SCRIPT = """
import json, sys
from pathlib import Path
from repro.engine.cache import CACHE_FORMAT, CanonicalFormCache, decode_form

directory, tag, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
cache = CanonicalFormCache(directory=directory)
key = "contested-key"
# a large distinctive payload: interleaved writes would tear it visibly
form = tuple((tag, i, "x" * 200) for i in range(40))
path = cache.directory / f"{key}.json"
for n in range(rounds):
    cache._disk_put(cache.directory, key, form)
    if path.exists():
        payload = json.loads(path.read_bytes().decode("utf-8"))
        assert payload["format"] == CACHE_FORMAT, "foreign entry"
        got = decode_form(payload["form"])
        first = got[0][0]
        assert all(item[0] == first for item in got), "interleaved write observed"
print("ok")
"""


class TestConcurrentCacheWrites:
    def test_two_processes_hammering_one_key(self, tmp_path):
        """Regression: per-writer temp names keep concurrent rewrites of the
        same entry atomic — every observed file is one writer's whole JSON."""
        script = tmp_path / "hammer.py"
        script.write_text(HAMMER_SCRIPT)
        procs = [
            subprocess.Popen(
                [sys.executable, str(script), str(tmp_path / "cache"), tag, "120"],
                env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for tag in ("alpha", "beta")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, f"hammer process failed: {err}"
            assert out.strip() == "ok"
        # no abandoned temp files survive the hammering
        assert not list((tmp_path / "cache").glob("*.tmp"))

    def test_temp_names_embed_writer_identity(self, tmp_path, monkeypatch):
        """The temp file a writer uses is unique per process and per write."""
        from repro.engine import cache as cache_mod

        recorded = []
        original = cache_mod.os.replace

        def spy(src, dst):
            recorded.append(Path(src).name)
            return original(src, dst)

        monkeypatch.setattr(cache_mod.os, "replace", spy)
        cache = cache_mod.CanonicalFormCache(directory=tmp_path / "cache")
        cache._disk_put(cache.directory, "k", (1, 2))
        cache._disk_put(cache.directory, "k", (3, 4))
        assert len(set(recorded)) == 2, "every write must use a fresh temp name"
        assert all(str(cache_mod.os.getpid()) in name for name in recorded)
