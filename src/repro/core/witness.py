"""Witness objects emitted by the lower-bound adversary (Section 4).

Every inductive step of the unfold-and-mix construction is recorded as a
:class:`StepWitness` carrying the graph pair, the witness nodes, and the
machine-checked facts (P1)-(P3): the radius-``i`` neighbourhoods are
isomorphic while the outputs disagree on a common loop colour; the graphs
are suitably loopy; and they are trees once loops are ignored.  A completed
run is a :class:`LowerBoundWitness`, whose ``achieved_depth`` of
``Delta - 2`` certifies that the algorithm's outputs at the witness nodes
depend on information at distance ``> Delta - 2`` — i.e. run-time
``Omega(Delta)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional

from ..graphs.multigraph import ECGraph

Node = Hashable
Color = Hashable
NodeOutputs = Mapping[Node, Mapping[Color, Fraction]]

__all__ = ["AlgorithmFailure", "StepWitness", "LowerBoundWitness", "reverify_step"]


class AlgorithmFailure(RuntimeError):
    """The algorithm under test is not a correct maximal-FM EC-algorithm.

    Carries a machine-checkable certificate: the input graph and a
    description of the violated property (inconsistent endpoints,
    infeasibility, an unsaturated node on a loopy graph together with the
    Figure-4 refuting lift, or a lift-invariance breach).
    """

    def __init__(self, message: str, graph: Optional[ECGraph] = None, detail: Optional[object] = None):
        super().__init__(message)
        self.graph = graph
        self.detail = detail


@dataclass
class StepWitness:
    """One step ``(G_i, H_i)`` of the construction with verified properties.

    Attributes
    ----------
    index:
        The step index ``i``.
    graph_g, graph_h:
        The pair ``(G_i, H_i)``.
    node_g, node_h:
        Witness nodes ``g_i`` / ``h_i``.
    color:
        The loop colour ``c_i`` on which the outputs disagree.
    weight_g, weight_h:
        The two (distinct) weights announced for the colour-``c_i`` loop.
    balls_isomorphic:
        Verified claim: ``tau_i(G_i, g_i)`` is isomorphic to
        ``tau_i(H_i, h_i)`` (property (P1)).
    loop_budget:
        Verified lower bound on the loop count of every node — at least
        ``Delta - 1 - i`` (property (P2)).
    trees:
        Verified claim that both graphs are trees-with-loops (property (P3)).
    side:
        Which case of the inductive analysis produced this step:
        ``"base"``, ``"G"`` (pair ``(GG, GH)``) or ``"H"`` (pair ``(HH, GH)``).
    """

    index: int
    graph_g: ECGraph
    graph_h: ECGraph
    node_g: Node
    node_h: Node
    color: Color
    weight_g: Fraction
    weight_h: Fraction
    balls_isomorphic: bool
    loop_budget: int
    trees: bool
    side: str

    @property
    def valid(self) -> bool:
        """Whether all verified claims hold and the weights really differ."""
        return (
            self.balls_isomorphic
            and self.trees
            and self.weight_g != self.weight_h
        )


def reverify_step(step: "StepWitness", delta: int) -> List[str]:
    """Independently re-check a step witness (e.g. one loaded from JSON).

    Recomputes every machine-checkable claim from the graphs alone:
    (P1) ball isomorphism, (P3) tree shape, the loop budget (P2), degree
    bounds, and that the witness colour is a loop at both witness nodes.
    Returns a list of discrepancies (empty = the witness is sound).  The
    output *weights* are the one thing that cannot be recomputed without
    the original algorithm; they are taken from the step record.
    """
    from ..graphs.isomorphism import balls_isomorphic
    from ..graphs.loopy import min_direct_loops
    from ..graphs.neighborhoods import ball

    problems: List[str] = []
    b1 = ball(step.graph_g, step.node_g, step.index)
    b2 = ball(step.graph_h, step.node_h, step.index)
    if not balls_isomorphic(b1, b2):
        problems.append(f"(P1) radius-{step.index} balls are not isomorphic")
    if step.weight_g == step.weight_h:
        problems.append("(P1) recorded weights do not differ")
    for name, g, v in (("G", step.graph_g, step.node_g), ("H", step.graph_h, step.node_h)):
        e = g.edge_at(v, step.color)
        if e is None or not e.is_loop:
            problems.append(f"colour {step.color!r} is not a loop at the {name} witness")
        if not g.is_tree_ignoring_loops():
            problems.append(f"(P3) {name} is not a tree-with-loops")
        if min_direct_loops(g) < delta - 1 - step.index:
            problems.append(f"(P2) {name}'s loop budget is below Delta-1-i")
        if g.max_degree() > delta:
            problems.append(f"{name} exceeds maximum degree {delta}")
    return problems


@dataclass
class LowerBoundWitness:
    """A completed adversary run against one algorithm.

    ``achieved_depth`` is the largest ``i`` with a valid step witness; the
    construction reaches ``Delta - 2``, certifying run-time ``> Delta - 2``
    on graphs of maximum degree ``Delta`` — the paper's Theorem 1 in
    executable form.
    """

    algorithm: str
    delta: int
    steps: List[StepWitness] = field(default_factory=list)

    @property
    def achieved_depth(self) -> int:
        """Largest valid witness index (-1 if no step was completed)."""
        valid = [s.index for s in self.steps if s.valid]
        return max(valid, default=-1)

    @property
    def all_valid(self) -> bool:
        """Whether every recorded step passed all its machine checks."""
        return all(s.valid for s in self.steps)

    def conclusion(self) -> str:
        """One-line human-readable statement of what was certified."""
        d = self.achieved_depth
        return (
            f"algorithm {self.algorithm!r} on graphs of max degree {self.delta} "
            f"produced differing outputs on isomorphic radius-{d} views: "
            f"run-time > {d} rounds (Omega(Delta))"
        )
