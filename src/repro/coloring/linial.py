"""Linial-style colour reduction via polynomial cover-free families.

Reduces a proper ``m``-colouring of a graph of maximum degree ``Delta`` to a
proper ``q^2``-colouring in **one** communication round, where ``q`` is a
prime chosen so that degree-``d`` polynomials over ``GF(q)`` encode all
``m`` colours and ``q > d * Delta``.  Iterating reaches an ``O(Delta^2)``
palette in ``O(log* m)`` rounds — Linial's classical upper bound, and the
``log* n`` ingredient of every ``O(Delta) + O(log* n)`` algorithm the
paper's open question is about.

The cover-free structure: distinct degree-``d`` polynomials agree on at most
``d`` points, so a node whose polynomial is ``p`` can pick an evaluation
point ``x`` where ``p(x)`` differs from all ``<= Delta`` neighbouring
polynomials — at most ``d * Delta < q`` points are spoiled.  The new colour
is the pair ``(x, p(x))``, and adjacent nodes always differ: if two
neighbours picked the same ``x``, their values differ by choice of ``x``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

Node = Hashable

__all__ = [
    "next_prime",
    "reduction_parameters",
    "linial_step",
    "linial_reduce",
    "greedy_reduce_to",
    "validate_coloring",
]


def next_prime(n: int) -> int:
    """Smallest prime ``>= n`` (trial division; fine for palette-sized inputs)."""
    candidate = max(n, 2)
    while True:
        if all(candidate % p for p in range(2, int(candidate**0.5) + 1)):
            return candidate
        candidate += 1


def reduction_parameters(m: int, delta: int) -> Tuple[int, int]:
    """Choose ``(q, d)`` for one reduction step from palette size ``m``.

    Picks the smallest prime ``q`` admitting a degree bound ``d`` with
    ``q**(d + 1) >= m`` (every colour encodes as a polynomial) and
    ``q > d * delta`` (a good evaluation point always exists).
    """
    q = next_prime(max(delta + 1, 2))
    while True:
        d = 0
        while q ** (d + 1) < m:
            d += 1
        if q > d * delta:
            return q, d
        q = next_prime(q + 1)


def _poly_of_color(color: int, q: int, d: int) -> List[int]:
    """Base-``q`` digits of ``color`` as coefficients of a degree-``d`` polynomial."""
    coeffs = []
    c = color
    for _ in range(d + 1):
        coeffs.append(c % q)
        c //= q
    return coeffs


def _eval_poly(coeffs: List[int], x: int, q: int) -> int:
    value = 0
    for a in reversed(coeffs):
        value = (value * x + a) % q
    return value


def linial_step(
    colors: Dict[Node, int],
    adjacency: Dict[Node, List[Node]],
    delta: int,
) -> Tuple[Dict[Node, int], int]:
    """One cover-free reduction round.

    ``colors`` must be a proper colouring with values in ``0 .. m-1``.
    Returns the new proper colouring with palette size ``q**2`` (colours are
    encoded as ``x * q + p(x)``) and the palette size ``q**2`` itself.
    Costs one communication round (each node needs its neighbours' current
    colours).
    """
    m = max(colors.values(), default=0) + 1
    q, d = reduction_parameters(m, delta)
    new_colors: Dict[Node, int] = {}
    for v, c in colors.items():
        p = _poly_of_color(c, q, d)
        neighbour_polys = [_poly_of_color(colors[w], q, d) for w in adjacency[v]]
        for x in range(q):
            mine = _eval_poly(p, x, q)
            if all(_eval_poly(np_, x, q) != mine for np_ in neighbour_polys):
                new_colors[v] = x * q + mine
                break
        else:  # pragma: no cover - impossible by q > d * delta
            raise AssertionError("no good evaluation point; parameters violated")
    return new_colors, q * q


def linial_reduce(
    colors: Dict[Node, int],
    adjacency: Dict[Node, List[Node]],
    delta: int,
) -> Tuple[Dict[Node, int], int]:
    """Iterate :func:`linial_step` until the palette stops shrinking.

    Returns the final colouring and the number of rounds used.  The final
    palette is ``O(delta**2)`` (the square of the smallest prime exceeding
    ``delta``), reached in ``O(log* m)`` rounds.
    """
    rounds = 0
    palette = max(colors.values(), default=0) + 1
    while True:
        new_colors, new_palette = linial_step(colors, adjacency, delta)
        rounds += 1
        if new_palette >= palette:
            # no further progress possible; keep the smaller palette
            return (colors, rounds - 1) if new_palette > palette else (new_colors, rounds)
        colors, palette = new_colors, new_palette


def greedy_reduce_to(
    colors: Dict[Node, int],
    adjacency: Dict[Node, List[Node]],
    target: int,
) -> Tuple[Dict[Node, int], int]:
    """Shrink a proper colouring to ``target`` colours, one colour per round.

    Round for colour ``c`` (from the top): all nodes coloured ``c`` — an
    independent set — simultaneously adopt the smallest colour unused in
    their neighbourhood (< ``target`` colours are always available when
    ``target >= delta + 1``).  Costs ``palette - target`` rounds.
    """
    palette = max(colors.values(), default=0) + 1
    rounds = 0
    for c in range(palette - 1, target - 1, -1):
        recolored = dict(colors)
        for v, cv in colors.items():
            if cv == c:
                taken = {colors[w] for w in adjacency[v]}
                recolored[v] = next(x for x in range(target) if x not in taken)
        colors = recolored
        rounds += 1
    return colors, rounds


def validate_coloring(colors: Dict[Node, int], adjacency: Dict[Node, List[Node]]) -> bool:
    """Whether ``colors`` is proper on the given adjacency structure."""
    return all(colors[v] != colors[w] for v in adjacency for w in adjacency[v])
