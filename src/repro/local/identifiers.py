"""Identifier machinery for the ID and OI models (paper, Sections 3.2, 5.4).

Order-invariance arguments repeatedly manipulate *ID-assignments that respect
a linear order*: maps ``phi`` from ordered nodes into an identifier pool such
that the numeric order of the images matches the given order.  Section 5.4
additionally needs *sparse* identifier sets ``J`` obtained by keeping every
``(m+1)``-th element of a larger set ``I``, so that between any two chosen
identifiers there remain ``m`` unused ones to absorb single-node relabelings
(Lemma 7's interpolation step).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

Node = Hashable

__all__ = [
    "assign_ids_respecting_order",
    "sparse_subset",
    "order_respecting_assignments",
    "interpolate_assignments",
    "relabel_single_node",
]


def assign_ids_respecting_order(ordered_nodes: Sequence[Node], pool: Sequence[int]) -> Dict[Node, int]:
    """Assign the ``i``-th smallest pool identifier to the ``i``-th node.

    ``ordered_nodes`` must list the nodes in increasing linear order; the
    pool must contain at least as many identifiers.  The result respects the
    order in the paper's sense: ``v`` before ``u`` implies
    ``phi(v) < phi(u)``.
    """
    ids = sorted(pool)
    if len(ids) < len(ordered_nodes):
        raise ValueError(
            f"pool has {len(ids)} identifiers for {len(ordered_nodes)} nodes"
        )
    return {v: ids[i] for i, v in enumerate(ordered_nodes)}


def sparse_subset(identifiers: Sequence[int], m: int) -> List[int]:
    """Keep every ``(m+1)``-th identifier (Section 5.4, step (ii)).

    Between any two kept identifiers ``j < j'`` there remain at least ``m``
    distinct dropped identifiers strictly between them — the slack Lemma 7
    uses to move a single node's identifier without disturbing the order of
    the others.
    """
    ids = sorted(identifiers)
    return ids[:: m + 1]


def order_respecting_assignments(
    ordered_nodes: Sequence[Node], pool: Sequence[int], limit: int
) -> Iterator[Dict[Node, int]]:
    """Yield up to ``limit`` distinct order-respecting assignments from ``pool``.

    Each assignment chooses ``len(ordered_nodes)`` identifiers from the pool
    (as a combination, since the order of images is forced) — exactly the
    objects quantified over in Lemmas 6 and 7.
    """
    ids = sorted(pool)
    k = len(ordered_nodes)
    produced = 0
    for combo in combinations(ids, k):
        if produced >= limit:
            return
        yield {v: combo[i] for i, v in enumerate(ordered_nodes)}
        produced += 1


def interpolate_assignments(
    phi1: Dict[Node, int],
    phi2: Dict[Node, int],
    ordered_nodes: Sequence[Node],
) -> List[Dict[Node, int]]:
    """The Lemma 7 interpolation: connect two order-respecting assignments
    by a chain in which consecutive assignments differ on exactly one node.

    The paper relates any ``phi1, phi2`` over the sparse set ``J`` through
    ``pi_1 = phi1, pi_2, ..., pi_k = phi2`` where every ``pi_i`` respects
    the order and ``pi_i, pi_{i+1}`` disagree on a single node.  The
    construction sweeps the nodes from the *top* of the order, moving each
    to its ``phi2`` value; because both assignments are monotone along
    ``ordered_nodes``, monotonicity is preserved at every intermediate step
    when values are settled from the largest node downward (or upward,
    whichever direction the change goes).

    Returns the full chain (including both endpoints); every element is
    verified to respect the order.  Raises ``ValueError`` if either input
    breaks monotonicity.
    """

    def check(phi: Dict[Node, int]) -> None:
        values = [phi[v] for v in ordered_nodes]
        if any(a >= b for a, b in zip(values, values[1:])):
            raise ValueError("assignment does not respect the order")

    check(phi1)
    check(phi2)
    chain: List[Dict[Node, int]] = [dict(phi1)]
    current = dict(phi1)
    changed = True
    while changed:
        changed = False
        # settle increases from the top and decreases from the bottom; any
        # node whose move keeps monotonicity is taken — iterate to fixpoint
        for v in ordered_nodes:
            if current[v] == phi2[v]:
                continue
            candidate = dict(current)
            candidate[v] = phi2[v]
            values = [candidate[u] for u in ordered_nodes]
            if all(a < b for a, b in zip(values, values[1:])):
                chain.append(candidate)
                current = candidate
                changed = True
    if current != phi2:  # pragma: no cover - impossible for monotone inputs
        raise AssertionError("interpolation failed to converge")
    return chain


def relabel_single_node(
    assignment: Dict[Node, int],
    node: Node,
    new_id: int,
    ordered_nodes: Sequence[Node],
) -> Dict[Node, int]:
    """Change one node's identifier, checking the order is preserved.

    This is the elementary move in the proof of Lemma 7 (two assignments
    disagreeing on a single node); raises ``ValueError`` if the new
    identifier would break monotonicity or collide.
    """
    out = dict(assignment)
    out[node] = new_id
    values = [out[v] for v in ordered_nodes]
    if any(a >= b for a, b in zip(values, values[1:])):
        raise ValueError("relabelling violates the order")
    return out
