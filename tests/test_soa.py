"""Tests for the columnar kernel snapshots (repro.graphs.soa).

The SoA layer is an *optimisation*, never a semantics change: every test
here compares the array paths against the object-walking reference
implementations (or an inline reproduction of them) and pins the sharing
discipline — snapshots memoize per frozen kernel, balls memoize by content
digest, and the canonicalisation plan cache recognises isomorphic shapes.
"""

from __future__ import annotations

import re

import pytest

from repro.engine import run_sweep, smoke_grid
from repro.graphs.digraph import POGraph
from repro.graphs.families import (
    cycle_graph,
    path_graph,
    random_loopy_tree,
    single_node_with_loops,
    star_graph,
)
from repro.graphs.isomorphism import canonical_rooted_form
from repro.graphs.labels import LABELS
from repro.graphs.multigraph import ECGraph
from repro.graphs.soa import (
    _VECTOR_MIN_EDGES,
    SoASnapshot,
    canonical_form_fast,
    extract_ball,
    plan_hit_count,
    reset_plan_cache,
    snapshot_of,
)


class TestSnapshot:
    def test_memoized_per_frozen_kernel(self):
        kernel = random_loopy_tree(4, 1, seed=0).kernel
        first = snapshot_of(kernel)
        assert isinstance(first, SoASnapshot)
        assert snapshot_of(kernel) is first

    def test_directed_kernel_has_no_snapshot(self):
        po = POGraph()
        po.add_edge("a", "b", 1)
        kernel = po.kernel
        assert snapshot_of(kernel) is None
        # the failed build is memoized too, not retried per lookup
        assert snapshot_of(kernel) is None

    def test_label_table_clear_invalidates_snapshots(self):
        kernel = random_loopy_tree(4, 1, seed=1).kernel
        stale = snapshot_of(kernel)
        LABELS.clear()
        fresh = snapshot_of(kernel)
        assert fresh is not stale
        assert fresh.generation == LABELS.generation

    def test_columns_mirror_the_object_view(self):
        g = random_loopy_tree(5, 2, seed=2)
        snap = snapshot_of(g.kernel)
        assert snap.n == g.num_nodes()
        assert snap.m == g.num_edges()
        for v in g.nodes():
            i = snap.index_of[v]
            sl = slice(snap.slot_off[i], snap.slot_off[i + 1])
            incident = g.incident_edges(v)
            assert snap.slot_colors[sl] == [e.color for e in incident]
            assert list(snap.slot_eids[sl]) == [e.eid for e in incident]
            assert [snap.labels[j] for j in snap.slot_other[sl]] == [
                e.other(v) for e in incident
            ]


class TestCanonicalFormFast:
    def test_matches_reference_on_loopy_trees(self):
        for seed in range(4):
            g = random_loopy_tree(5, 2, seed=seed)
            for v in g.nodes():
                assert canonical_form_fast(g, v) == canonical_rooted_form(g, v)

    def test_matches_reference_on_fixture_families(self):
        for g in (path_graph(4), star_graph(3), single_node_with_loops(3)):
            for v in g.nodes():
                assert canonical_form_fast(g, v) == canonical_rooted_form(g, v)

    def test_equal_across_relabelling(self):
        g = random_loopy_tree(4, 1, seed=5)
        h = g.relabel({v: ("copy", v) for v in g.nodes()})
        assert canonical_form_fast(g, 0) == canonical_form_fast(h, ("copy", 0))

    def test_cycle_raises_like_the_reference_requires(self):
        with pytest.raises(ValueError, match="cycle"):
            canonical_form_fast(cycle_graph(4), 0)

    def test_root_plan_hit_counted_on_isomorphic_repeat(self):
        reset_plan_cache()
        g = random_loopy_tree(4, 2, seed=6)
        form = canonical_form_fast(g, 0)
        h = g.relabel({v: ("twin", v) for v in g.nodes()})
        before = plan_hit_count()
        twin_form = canonical_form_fast(h, ("twin", 0))
        assert twin_form == form
        # node labels differ, colour structure agrees: the root shape cons
        # answers without rebuilding — the engine's ``plan_hits`` signal
        assert plan_hit_count() == before + 1
        # consed forms are identical objects, not merely equal
        assert twin_form is form

    def test_foreign_object_falls_back(self):
        assert canonical_form_fast(object(), 0) is None


def reference_ball(g: ECGraph, v, t: int):
    """The historical builder-based extraction (the semantics of record)."""
    dist = g.bfs_distances(v, max_dist=t)
    sub = ECGraph()
    for w in dist:
        sub.add_node(w)
    if t >= 1:
        for e in g.edges():
            du = dist.get(e.u)
            dv = dist.get(e.v)
            candidates = [d for d in (du, dv) if d is not None]
            if not candidates:
                continue
            if min(candidates) <= t - 1 and du is not None and dv is not None:
                sub.add_edge(e.u, e.v, e.color, eid=e.eid)
    return sub, dist


def assert_same_extraction(g: ECGraph, v, t: int) -> None:
    fast = extract_ball(g, v, t)
    assert fast is not None
    sub_kernel, distances = fast
    ref, ref_dist = reference_ball(g, v, t)
    assert distances == ref_dist
    view = ECGraph.from_kernel(sub_kernel)
    assert view.nodes() == ref.nodes()  # discovery order, not just set
    assert [(e.eid, e.u, e.v, e.color) for e in view.edges()] == [
        (e.eid, e.u, e.v, e.color) for e in ref.edges()
    ]
    assert sub_kernel.digest == ref.kernel.digest
    assert sub_kernel._next_eid == ref.kernel._next_eid


class TestExtractBall:
    def test_matches_builder_reference_small(self):
        g = random_loopy_tree(6, 2, seed=3)
        for v in g.nodes():
            for t in range(4):
                assert_same_extraction(g, v, t)

    def test_matches_builder_reference_vectorised(self):
        g = random_loopy_tree(40, 1, seed=4)
        assert g.num_edges() >= _VECTOR_MIN_EDGES  # NumPy mask path engaged
        for v in (0, 7, 39):
            for t in range(4):
                assert_same_extraction(g, v, t)

    def test_radius_zero_excludes_loops(self):
        sub_kernel, distances = extract_ball(single_node_with_loops(3), 0, 0)
        view = ECGraph.from_kernel(sub_kernel)
        assert view.nodes() == [0]
        assert view.num_edges() == 0
        assert distances == {0: 0}

    def test_derived_snapshot_is_column_identical_to_fresh_build(self):
        """extract_ball attaches a snapshot filtered out of the parent's
        columns; it must match a from-scratch ``_build`` of the sub-kernel
        column for column, or canonical forms over balls could drift."""
        from array import array

        from repro.graphs.soa import SoASnapshot, _BALLS, _build

        columns = (
            "n", "m", "labels", "index_of", "node_lids", "slot_off",
            "slot_color_lids", "slot_colors", "slot_eids", "slot_other",
            "slot_repr_order", "canonical_ok", "edge_eids", "edge_ui",
            "edge_vi", "edge_color_lids",
        )
        g = random_loopy_tree(12, 2, seed=5)
        for v in (0, 5, 11):
            for t in range(4):
                _BALLS._entries.clear()
                sub_kernel, _ = extract_ball(g, v, t)
                derived = sub_kernel._soa
                assert isinstance(derived, SoASnapshot)
                fresh = _build(sub_kernel)
                for name in columns:
                    got, want = getattr(derived, name), getattr(fresh, name)
                    if isinstance(got, array):
                        got, want = list(got), list(want)
                    assert got == want, name

    def test_memo_shares_kernel_but_copies_distances(self):
        g = random_loopy_tree(5, 1, seed=8)
        first_kernel, first_dist = extract_ball(g, 0, 2)
        again_kernel, again_dist = extract_ball(g, 0, 2)
        # the frozen kernel is content-addressed and immutable: shared
        assert again_kernel is first_kernel
        # the distance dict is the caller's to mutate: copied per lookup
        assert again_dist == first_dist
        assert again_dist is not first_dist
        again_dist[0] = 99
        assert extract_ball(g, 0, 2)[1][0] == 0


class TestSweepDiskCacheKeys:
    def test_parallel_and_serial_sweeps_write_identical_keys(self, tmp_path):
        """The SoA swap must not move a single canonical-form cache key:
        serial and process-parallel sweeps of the same grid address the
        exact same 64-hex digest set on disk."""
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_sweep(smoke_grid(), workers=0, cache_dir=serial_dir)
        run_sweep(smoke_grid(), workers=2, backend="process", cache_dir=parallel_dir)
        serial_keys = {p.stem for p in serial_dir.glob("*.json")}
        parallel_keys = {p.stem for p in parallel_dir.glob("*.json")}
        assert serial_keys, "sweep wrote no disk cache entries"
        assert serial_keys == parallel_keys
        assert all(re.fullmatch(r"[0-9a-f]{64}", key) for key in serial_keys)
