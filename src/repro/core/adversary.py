"""The unfold-and-mix adversary: Step 1 of the lower bound (paper, Section 4).

Given *any* algorithm ``A`` claiming to compute maximal fractional matchings
in the EC model, the adversary inductively constructs pairs of loopy
EC-graphs ``(G_i, H_i)``, ``i = 0 .. Delta-2``, with witness nodes whose
radius-``i`` views are isomorphic although ``A``'s outputs differ on a
common loop colour (property (P1)).  Reaching ``i = Delta - 2`` proves
``A``'s run-time exceeds ``Delta - 2``: no ``o(Delta)``-round EC-algorithm
exists.

The construction (Figures 5-7):

* **base case** — ``G_0`` is a single node with ``Delta`` coloured loops;
  removing a positive-weight loop yields ``H_0``, and saturation forces some
  surviving loop's weight to change;
* **inductive step** — *unfold* the disagreeing loop of ``G`` into the
  2-lift ``GG`` and *mix* ``G - e`` with ``H - f`` into ``GH``.  Because
  ``A`` is lift-invariant it keeps the old weights on ``GG`` (and ``HH``),
  so the fresh mixing edge's weight differs from the old weight of ``e`` or
  of ``f``; the *propagation principle* then walks that disagreement through
  the shared tree until it rests on a loop — the next witness.

Everything the paper claims is re-checked mechanically on every step:
ball isomorphism ((P1), via canonical forms), loop budgets ((P2)),
tree shape ((P3)), feasibility/maximality/saturation of every output
(Lemma 2, with a Figure-4 refutation certificate on failure), and —
optionally — lift invariance of ``A`` itself on the unfolded graphs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..graphs.families import single_node_with_loops
from ..graphs.isomorphism import balls_isomorphic
from ..graphs.lifts import mix, unfold_loop
from ..graphs.loopy import min_direct_loops
from ..graphs.multigraph import ECGraph
from ..graphs.neighborhoods import ball
from ..local.algorithm import ECWeightAlgorithm
from ..matching.fm import InconsistentOutputError, fm_from_node_outputs
from ..obs.tracer import current_tracer
from .propagation import disagreement_walk, node_load_of_output
from .saturation import figure4_certificate, unsaturated_nodes
from .witness import AlgorithmFailure, LowerBoundWitness, StepWitness

Node = Hashable
Color = Hashable
NodeOutputs = Dict[Node, Dict[Color, Fraction]]

__all__ = ["run_adversary", "checked_run", "hard_instance_pair"]

ONE = Fraction(1)


class _RunMemo:
    """Process-global memo of *verified* algorithm runs.

    Keyed by ``(algorithm fingerprint, graph digest, require_saturation)``
    — sound because a fingerprinted :class:`ECWeightAlgorithm` is a
    deterministic function of the labelled graph and the digest identifies
    exactly that (see :attr:`ECWeightAlgorithm.fingerprint`).  Only runs
    whose full Lemma-2 verification passed are stored, so a hit can skip
    both the simulation and the re-verification; failures always re-run
    and re-raise with a fresh certificate.

    All mutation happens through methods on this instance (never at module
    level), mirroring the SoA plan cache's containment pattern.
    """

    __slots__ = ("limit", "_runs", "_hits", "_misses")

    def __init__(self, limit: int = 4096) -> None:
        self.limit = limit
        self._runs: Dict[tuple, NodeOutputs] = {}
        self._hits = 0
        self._misses = 0

    def get(self, key: tuple) -> Optional[NodeOutputs]:
        cached = self._runs.get(key)
        if cached is None:
            self._misses += 1
            return None
        self._hits += 1
        return {v: dict(out) for v, out in cached.items()}

    def put(self, key: tuple, outputs: NodeOutputs) -> None:
        if len(self._runs) >= self.limit:
            self._runs.clear()
        self._runs[key] = {v: dict(out) for v, out in outputs.items()}

    def stats(self) -> Dict[str, int]:
        return {"hits": self._hits, "misses": self._misses, "size": len(self._runs)}

    def clear(self) -> None:
        self._runs.clear()


#: the singleton behind :func:`checked_run`'s content-addressed fast path
_VERIFIED_RUNS = _RunMemo()


def checked_run(
    algorithm: ECWeightAlgorithm,
    g: ECGraph,
    require_saturation: bool = True,
    tracer=None,
    delta: Optional[int] = None,
    level: Optional[int] = None,
) -> NodeOutputs:
    """Run ``algorithm`` on ``g`` and verify its output is a maximal FM.

    Raises :class:`AlgorithmFailure` with a certificate if the output is
    inconsistent, infeasible, non-maximal, or (when ``require_saturation``,
    for loopy inputs) leaves a node unsaturated — in the latter case the
    Figure 4 refuting lift is attached when one exists.

    When the algorithm declares a :attr:`fingerprint`, verified runs are
    memoized process-wide keyed by the graph's content digest: a repeated
    ``(algorithm, graph)`` pair returns the stored (already verified)
    outputs without re-simulating.  The emitted span then carries
    ``memo=True``.

    Emits one ``adversary.checked_run`` span (graph size, Lemma-2 verdict)
    on the given or ambient tracer.  When the run happens inside a
    construction, ``delta`` and ``level`` stamp the span with the
    originating ``(algorithm, delta, level)`` triple, so a verdict pulled
    out of a merged parallel sweep trace is attributable without its
    positional context (which step of which ladder in which worker).
    """
    tracer = tracer if tracer is not None else current_tracer()
    attribution = {}
    if delta is not None:
        attribution["delta"] = delta
    if level is not None:
        attribution["level"] = level
    fingerprint = getattr(algorithm, "fingerprint", None)
    memo_key = None
    if fingerprint is not None:
        memo_key = (fingerprint, g.digest, require_saturation)
        cached = _VERIFIED_RUNS.get(memo_key)
        if cached is not None:
            with tracer.span(
                "adversary.checked_run",
                algorithm=algorithm.name,
                nodes=g.num_nodes(),
                edges=g.num_edges(),
                graph=g.digest[:12],
                memo=True,
                **attribution,
            ) as span:
                span.set(verdict="ok")
                tracer.metrics.counter(
                    "adversary.checked_runs", algorithm=algorithm.name
                ).inc()
                tracer.metrics.counter("adversary.run_memo", outcome="hit").inc()
            return cached
    with tracer.span(
        "adversary.checked_run",
        algorithm=algorithm.name,
        nodes=g.num_nodes(),
        edges=g.num_edges(),
        graph=g.digest[:12],
        **attribution,
    ) as span:
        try:
            outputs = algorithm.run_on(g)
        except Exception as exc:  # surface simulator/adapter errors with context
            span.set(verdict="crashed")
            raise AlgorithmFailure(f"{algorithm.name} crashed on {g!r}: {exc}", graph=g) from exc
        try:
            fm = fm_from_node_outputs(g, outputs)
        except InconsistentOutputError as exc:
            span.set(verdict="inconsistent")
            raise AlgorithmFailure(
                f"{algorithm.name} produced inconsistent endpoint outputs: {exc}", graph=g
            ) from exc
        problems = fm.feasibility_violations()
        if problems:
            span.set(verdict="infeasible")
            raise AlgorithmFailure(
                f"{algorithm.name} produced an infeasible FM: {problems[0]}", graph=g
            )
        missing = fm.maximality_violations()
        if missing:
            span.set(verdict="non-maximal")
            raise AlgorithmFailure(
                f"{algorithm.name} produced a non-maximal FM (edge {missing[0]} uncovered)",
                graph=g,
                detail=missing,
            )
        if require_saturation:
            bad = unsaturated_nodes(g, outputs)
            if bad:
                span.set(verdict="unsaturated")
                certificate = figure4_certificate(g, bad[0], algorithm)
                raise AlgorithmFailure(
                    f"{algorithm.name} left node {bad[0]!r} unsaturated on a loopy "
                    f"graph (Lemma 2); Figure-4 refutation "
                    f"{'attached' if certificate else 'not constructible here'}",
                    graph=g,
                    detail=certificate,
                )
        span.set(verdict="ok")
        tracer.metrics.counter("adversary.checked_runs", algorithm=algorithm.name).inc()
        if memo_key is not None:
            _VERIFIED_RUNS.put(memo_key, outputs)
            tracer.metrics.counter("adversary.run_memo", outcome="miss").inc()
    return {v: dict(out) for v, out in outputs.items()}


def _lifted_outputs(base_outputs: NodeOutputs, lifted: ECGraph) -> NodeOutputs:
    """Outputs on a 2-lift implied by lift invariance: copy the base node's."""
    return {(side, v): dict(base_outputs[v]) for (side, v) in lifted.nodes()}


def _first_disagreeing_color(
    out1: Mapping[Color, Fraction], out2: Mapping[Color, Fraction]
) -> Optional[Color]:
    common = set(out1.keys()) & set(out2.keys())
    for c in sorted(common, key=repr):
        if Fraction(out1[c]) != Fraction(out2[c]):
            return c
    return None


def run_adversary(
    algorithm: ECWeightAlgorithm,
    delta: int,
    deep_verify: bool = False,
    tracer=None,
) -> LowerBoundWitness:
    """Execute the full Section 4 construction against ``algorithm``.

    Parameters
    ----------
    algorithm:
        Any EC-model maximal-FM algorithm (lift-invariant by contract).
    delta:
        The maximum degree; the construction reaches witness depth
        ``delta - 2`` and every graph built has maximum degree ``delta``.
    deep_verify:
        Re-run the algorithm on every unfolded 2-lift and check the outputs
        agree with the lift-invariance prediction (slower; catches
        non-anonymous algorithms red-handed).
    tracer:
        A :class:`repro.obs.Tracer`; defaults to the ambient tracer (no-op
        unless installed).  Emits one ``adversary.run`` span containing one
        ``adversary.step`` span per induction step (the base case is step
        0) with ``adversary.unfold`` / ``adversary.mix`` /
        ``adversary.walk`` / ``adversary.iso_check`` sub-spans, graph
        node/edge counts and certificate verdicts — the measurable form of
        the construction's Delta-linear cost profile.

    Returns
    -------
    LowerBoundWitness
        Machine-verified witnesses for every ``i = 0 .. delta - 2``.

    Raises
    ------
    AlgorithmFailure
        If the algorithm is not a correct maximal-FM EC-algorithm; the
        exception carries the certificate.
    """
    if delta < 2:
        raise ValueError("the construction needs delta >= 2")
    tracer = tracer if tracer is not None else current_tracer()
    witness = LowerBoundWitness(algorithm=algorithm.name, delta=delta)

    with tracer.span("adversary.run", algorithm=algorithm.name, delta=delta) as adv_span:
        # --------------------------------------------------------------
        # base case (Section 4.2, Figure 5)
        # --------------------------------------------------------------
        with tracer.span("adversary.step", index=0, side="base") as base_span:
            graph_g = single_node_with_loops(delta, node="r")
            out_g = checked_run(algorithm, graph_g, tracer=tracer, delta=delta, level=0)
            node_g = "r"
            positive = [
                e for e in graph_g.loops_at(node_g) if Fraction(out_g[node_g][e.color]) > 0
            ]
            if not positive:
                raise AlgorithmFailure(
                    f"{algorithm.name} saturated a node with all-zero loop weights",
                    graph=graph_g,
                )
            removed = positive[0]
            graph_h = graph_g.fork()
            graph_h.remove_edge(removed.eid)
            _count_fork_sharing(tracer, algorithm.name, graph_g, graph_h)
            out_h = checked_run(algorithm, graph_h, tracer=tracer, delta=delta, level=0)
            node_h = node_g
            color = _first_disagreeing_color(
                {c: w for c, w in out_g[node_g].items() if c != removed.color},
                out_h[node_h],
            )
            if color is None:
                raise AlgorithmFailure(
                    f"{algorithm.name} announced identical weights on G0 - e and H0, "
                    f"contradicting saturation",
                    graph=graph_h,
                )
            witness.steps.append(
                _make_step(
                    0, graph_g, graph_h, node_g, node_h, color,
                    Fraction(out_g[node_g][color]), Fraction(out_h[node_h][color]),
                    delta, side="base", tracer=tracer,
                )
            )
            base_span.set(nodes_g=graph_g.num_nodes(), nodes_h=graph_h.num_nodes())

        # --------------------------------------------------------------
        # inductive steps (Section 4.3, Figures 6-7)
        # --------------------------------------------------------------
        for i in range(delta - 2):
            with tracer.span("adversary.step", index=i + 1) as step_span:
                e = graph_g.edge_at(node_g, color)
                f = graph_h.edge_at(node_h, color)
                assert e is not None and e.is_loop, "witness colour must be a loop in G"
                assert f is not None and f.is_loop, "witness colour must be a loop in H"

                with tracer.span("adversary.unfold", side="G", nodes=graph_g.num_nodes()):
                    gg, alpha_gg, _ = unfold_loop(graph_g, e.eid)
                with tracer.span(
                    "adversary.mix",
                    nodes_g=graph_g.num_nodes(),
                    nodes_h=graph_h.num_nodes(),
                ):
                    gh, _ = mix(graph_g, e.eid, graph_h, f.eid)

                out_gg = _lifted_outputs(out_g, gg)
                if deep_verify:
                    fresh = checked_run(
                        algorithm, gg, tracer=tracer, delta=delta, level=i + 1
                    )
                    if _normalise(fresh) != _normalise(out_gg):
                        raise AlgorithmFailure(
                            f"{algorithm.name} is not lift-invariant: its outputs on the "
                            f"unfolded 2-lift differ from the base graph's",
                            graph=gg,
                        )
                out_gh = checked_run(algorithm, gh, tracer=tracer, delta=delta, level=i + 1)

                w_e = Fraction(out_g[node_g][color])
                w_f = Fraction(out_h[node_h][color])
                w_mix = Fraction(out_gh[(0, node_g)][color])
                assert w_e != w_f, "induction invariant: the loop weights differ"

                if w_mix != w_e:
                    # pair (GG, GH); walk the disagreement through the G side
                    side = "G"
                    walk_graph = graph_g
                    outputs1 = out_g
                    outputs2 = {v: out_gh[(0, v)] for v in graph_g.nodes()}
                    start = node_g
                    new_g_graph, new_g_outputs = gg, out_gg
                    embed = lambda v: (0, v)  # noqa: E731 - tiny positional helper
                else:
                    # w_mix == w_e != w_f: pair (HH, GH); walk through the H side
                    side = "H"
                    with tracer.span(
                        "adversary.unfold", side="H", nodes=graph_h.num_nodes()
                    ):
                        hh, _, _ = unfold_loop(graph_h, f.eid)
                    out_hh = _lifted_outputs(out_h, hh)
                    if deep_verify:
                        fresh = checked_run(
                            algorithm, hh, tracer=tracer, delta=delta, level=i + 1
                        )
                        if _normalise(fresh) != _normalise(out_hh):
                            raise AlgorithmFailure(
                                f"{algorithm.name} is not lift-invariant on the unfolded "
                                f"2-lift of H",
                                graph=hh,
                            )
                    walk_graph = graph_h
                    outputs1 = out_h
                    outputs2 = {v: out_gh[(1, v)] for v in graph_h.nodes()}
                    start = node_h
                    new_g_graph, new_g_outputs = hh, out_hh
                    embed = lambda v: (1, v)  # noqa: E731

                with tracer.span(
                    "adversary.walk", side=side, nodes=walk_graph.num_nodes()
                ) as walk_span:
                    g_star, loop_color, _trail = disagreement_walk(
                        walk_graph, outputs1, outputs2, start, color
                    )
                    walk_span.set(trail_length=len(_trail))

                graph_g, out_g = new_g_graph, new_g_outputs
                graph_h, out_h = gh, out_gh
                node_g = (0, g_star)
                node_h = embed(g_star)
                color = loop_color

                witness.steps.append(
                    _make_step(
                        i + 1, graph_g, graph_h, node_g, node_h, color,
                        Fraction(out_g[node_g][color]), Fraction(out_h[node_h][color]),
                        delta, side=side, tracer=tracer,
                    )
                )
                step_span.set(
                    side=side,
                    nodes_g=graph_g.num_nodes(),
                    edges_g=graph_g.num_edges(),
                    nodes_h=graph_h.num_nodes(),
                    edges_h=graph_h.num_edges(),
                )
                tracer.metrics.counter(
                    "adversary.steps", algorithm=algorithm.name, delta=delta
                ).inc()
        adv_span.set(achieved_depth=witness.achieved_depth)
    return witness


def hard_instance_pair(
    delta: int,
    algorithm: Optional[ECWeightAlgorithm] = None,
) -> Tuple[ECGraph, ECGraph, Node, Node, Color]:
    """The construction's final hard pair ``(G_{Delta-2}, H_{Delta-2})``.

    A convenience export of the Section 4 instances for downstream use
    (stress inputs, teaching, further experiments): two loopy EC-graphs of
    maximum degree ``delta`` whose radius-``(delta-2)`` views at the
    returned witness nodes are isomorphic, yet on which the given algorithm
    (greedy-by-colour when omitted) announces different weights for the
    returned loop colour.

    Returns ``(G, H, g, h, colour)``.
    """
    if algorithm is None:
        from ..matching.greedy_color import greedy_color_algorithm

        algorithm = greedy_color_algorithm()
    witness = run_adversary(algorithm, delta)
    top = witness.steps[-1]
    return top.graph_g, top.graph_h, top.node_g, top.node_h, top.color


def _count_fork_sharing(tracer, algorithm: str, parent: ECGraph, child: ECGraph) -> None:
    """Record how much structure a persistent fork reused instead of copying.

    ``H_0 = G_0 - e`` used to be a full deep copy of ``G_0``; a kernel fork
    shares every untouched per-node slot map and every surviving edge record
    by identity.  The two counters make that saved work visible in merged
    sweep traces (``adversary.fork_shared``, ``kind`` label) the same way
    the canonical cache reports its hit rate.
    """
    pk, ck = parent.kernel, child.kernel
    shared_slots = pk.shared_slot_maps(ck)
    shared_edges = sum(
        1 for e in ck.edges() if pk.has_edge_id(e.eid) and pk.edge(e.eid) is e
    )
    metrics = tracer.metrics
    metrics.counter("adversary.fork_shared", algorithm=algorithm, kind="slot_maps").inc(
        shared_slots
    )
    metrics.counter("adversary.fork_shared", algorithm=algorithm, kind="edges").inc(
        shared_edges
    )


def _normalise(outputs: NodeOutputs):
    return {
        repr(v): {repr(c): Fraction(w) for c, w in out.items()}
        for v, out in outputs.items()
    }


def _make_step(
    index: int,
    graph_g: ECGraph,
    graph_h: ECGraph,
    node_g: Node,
    node_h: Node,
    color: Color,
    weight_g: Fraction,
    weight_h: Fraction,
    delta: int,
    side: str,
    tracer=None,
) -> StepWitness:
    """Assemble a step witness, performing the (P1)-(P3) machine checks."""
    tracer = tracer if tracer is not None else current_tracer()
    with tracer.span(
        "adversary.iso_check", radius=index, nodes=graph_g.num_nodes()
    ) as iso_span:
        iso = balls_isomorphic(ball(graph_g, node_g, index), ball(graph_h, node_h, index))
        iso_span.set(isomorphic=iso)
    budget = min(min_direct_loops(graph_g), min_direct_loops(graph_h))
    trees = graph_g.is_tree_ignoring_loops() and graph_h.is_tree_ignoring_loops()
    step = StepWitness(
        index=index,
        graph_g=graph_g,
        graph_h=graph_h,
        node_g=node_g,
        node_h=node_h,
        color=color,
        weight_g=weight_g,
        weight_h=weight_h,
        balls_isomorphic=iso,
        loop_budget=budget,
        trees=trees,
        side=side,
    )
    if not step.valid:
        raise AssertionError(
            f"construction invariant broken at step {index}: "
            f"iso={iso}, trees={trees}, weights=({weight_g}, {weight_h})"
        )
    if budget < delta - 1 - index:
        raise AssertionError(
            f"loop budget {budget} below Delta-1-i = {delta - 1 - index} at step {index}"
        )
    return step
