"""Appendix A in action: the homogeneous linear order on the PO-tree.

The infinite 2d-regular edge-coloured PO-tree T is the Cayley graph of the
free group on d generators.  Lemma 4 needs a linear order on V(T) whose
ordered neighbourhoods all look alike; the paper's combinatorial proof
assigns every path x ~> y an odd integer [[x ~> y]] and declares x < y iff
the value is positive.  This demo:

1. evaluates brackets of short words (a Figure 10-style calculation),
2. sorts the radius-2 ball of T for d = 2 by the order,
3. demonstrates homogeneity: translating a pair of nodes by any group
   element never changes their relative order.

Run:  python examples/canonical_order_demo.py
"""

from __future__ import annotations

import random
from itertools import product

from repro.core.canonical_order import (
    bracket,
    compare_words,
    concat,
    inverse_word,
    reduce_word,
    tree_sort_key,
)


def ball_of_radius(d: int, radius: int):
    """All reduced words of length <= radius over d colours."""
    steps = [(c, s) for c in range(1, d + 1) for s in (+1, -1)]
    words = {()}
    frontier = {()}
    for _ in range(radius):
        nxt = set()
        for w in frontier:
            for step in steps:
                r = reduce_word(w + (step,))
                if len(r) == len(w) + 1:
                    nxt.add(r)
        words |= nxt
        frontier = nxt
    return sorted(words, key=tree_sort_key)


def pretty(word) -> str:
    if not word:
        return "e"
    return ".".join(f"g{c}" if s > 0 else f"g{c}^-1" for (c, s) in word)


def bracket_table() -> None:
    print("== brackets of short words (odd, antisymmetric) ==")
    for word in [((1, +1),), ((1, -1),), ((2, +1),), ((1, +1), (2, +1)), ((2, -1), (1, -1))]:
        w = reduce_word(word)
        print(f"  [[{pretty(w)}]] = {bracket(w):+d}    [[{pretty(inverse_word(w))}]] = {bracket(inverse_word(w)):+d}")
    print()


def ordered_ball() -> None:
    print("== the radius-2 ball of T (d = 2), sorted by the homogeneous order ==")
    ball = ball_of_radius(2, 2)
    for i, w in enumerate(ball):
        print(f"  {i:>2}: {pretty(w)}")
    print()


def homogeneity() -> None:
    print("== homogeneity: left translation preserves the order ==")
    rng = random.Random(0)
    ball = ball_of_radius(2, 2)
    checks = 0
    for _ in range(2000):
        x, y = rng.sample(ball, 2)
        g = rng.choice(ball)
        before = compare_words(x, y)
        after = compare_words(concat(g, x), concat(g, y))
        assert before == after, (x, y, g)
        checks += 1
    print(f"  {checks} random (x, y, g) triples: compare(x,y) == compare(gx,gy) held every time")
    print("  => all ordered neighbourhoods of T are pairwise isomorphic (Lemma 4)")


def main() -> None:
    bracket_table()
    ordered_ball()
    homogeneity()


if __name__ == "__main__":
    main()
