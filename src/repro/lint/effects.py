"""Interprocedural effect inference over the lint call graph.

For every function (and module body) in the project, computes the
transitive *effect set* drawn from

    {clock, entropy, float-arith, worker-spawn, kernel-mutation,
     global-mutation}

by a fixpoint over the call graph, with one crucial twist: effects are
**masked at declared exemption boundaries**.  A function's *visible*
effects are

    visible(f) = mask_{module(f)}( direct(f)  ∪  ⋃_{g called by f} visible(g) )

where ``mask`` removes each effect the defining module is sanctioned for
(``clock_modules``/``# repro: clock`` masks ``clock``, ``randomized_modules``
masks ``entropy``, ``worker_modules`` masks ``worker-spawn``,
``state_modules`` masks ``global-mutation``, ``kernel_modules`` masks
``kernel-mutation``, and being outside/exempt from the exact scopes masks
``float-arith``).  Masked effects are recorded as *contained* — they stop
propagating at the boundary, which is exactly what turns the config
allowlists into verified containment boundaries: a clock read is fine
*inside* ``repro.obs.tracer``, and fine to *call into* it, but a clock
value that leaks out via any other module shows up in every caller's
visible set until a rule flags it.

Each visible effect carries :class:`EffectSource` provenance:

* ``"overt"``  — a direct external reference the per-line rules can see on
  its own line (``time.time()`` under a plain ``import time``);
* ``"covert"`` — a direct external reference resolved *through* a project
  re-export (``from repro.obs.tracer import perf_counter``) — per-line
  rules provably cannot flag these;
* ``"direct"`` — a syntactic effect site (float literal, global store,
  kernel-internal mutation);
* ``"call"``   — inherited from a project callee (``detail`` is the callee
  qualname), the interprocedural case.

Direct sites already sanctioned by a ``# repro: noqa`` on their statement
are excluded from ``direct`` (a reviewed, line-level exemption) but kept in
``raw_direct``, which the suppression-hygiene rule uses to test marker
staleness.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import MODULE_BODY, CallGraph, FunctionInfo
from .engine import LintConfig, ModuleUnderLint
from .rules.common import attribute_chain, root_name

__all__ = [
    "EFFECTS",
    "KERNEL_INTERNALS",
    "EffectAnalysis",
    "EffectSource",
    "FunctionEffects",
    "classify_external",
]

EFFECTS = (
    "clock",
    "entropy",
    "float-arith",
    "worker-spawn",
    "kernel-mutation",
    "global-mutation",
)

#: the frozen attributes backing a GraphKernel (see graphs/kernel.py);
#: ``_soa`` is the memoized columnar-snapshot slot (graphs/soa.py).
KERNEL_INTERNALS = frozenset(
    {"_slots", "_edges", "_acc", "_next_eid", "_digest", "_soa"}
)

#: in-place mutator methods (mirrors the frozen-mutation rule's list).
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "add", "discard", "sort", "reverse",
    }
)

#: effect -> the per-line rule whose ``# repro: noqa`` sanctions its sites.
_SANCTIONING_RULE = {
    "clock": "determinism",
    "entropy": "determinism",
    "worker-spawn": "determinism",
    "float-arith": "exact-arith",
    "kernel-mutation": "kernel-escape",
    "global-mutation": "effect-escape",
}


@dataclass(frozen=True)
class EffectSource:
    """Provenance of one effect in one function's visible set."""

    effect: str
    kind: str  # "overt" | "covert" | "direct" | "call"
    detail: str
    line: int


@dataclass
class FunctionEffects:
    """Per-function result of the analysis."""

    qualname: str
    module: str
    lineno: int
    direct: Set[str] = field(default_factory=set)
    raw_direct: Set[str] = field(default_factory=set)
    visible: Set[str] = field(default_factory=set)
    contained: Set[str] = field(default_factory=set)
    sources: Dict[str, List[EffectSource]] = field(default_factory=dict)

    def add_source(self, source: EffectSource) -> None:
        self.sources.setdefault(source.effect, []).append(source)


def classify_external(dotted: str) -> Optional[str]:
    """The ambient effect a use of external name ``dotted`` implies."""
    root = dotted.split(".", 1)[0]
    rest = dotted.split(".", 1)[1] if "." in dotted else ""
    if root == "time":
        return "clock"
    if root == "secrets":
        return "entropy"
    if dotted == "os.urandom":
        return "entropy"
    if dotted == "numpy.random" or dotted.startswith("numpy.random."):
        return "entropy"
    if root == "random" and rest and rest != "Random" and not rest.startswith("Random."):
        # random.Random itself is the sanctioned seeded construction; its
        # unseeded use is caught at the call site, not the reference.
        return "entropy"
    if root in ("multiprocessing", "threading"):
        return "worker-spawn"
    if dotted == "concurrent.futures" or dotted.startswith("concurrent.futures."):
        return "worker-spawn"
    return None


def _kernel_param_names(info: FunctionInfo) -> Set[str]:
    """Names in ``info`` that statically denote a GraphKernel."""
    names = {"kernel"} & set(info.params)
    for param, dotted in info.annotations.items():
        if dotted and dotted.split(".")[-1] == "GraphKernel":
            names.add(param)
    # conservative: a local literally named ``kernel`` is a kernel
    if "kernel" in info.local_names:
        names.add("kernel")
    return names


class EffectAnalysis:
    """Fixpoint effect inference over a :class:`CallGraph`."""

    def __init__(self, graph: CallGraph, config: LintConfig) -> None:
        self.graph = graph
        self.config = config
        self.functions: Dict[str, FunctionEffects] = {}
        #: module -> [(line, sanctioning rule)] of noqa-sanctioned direct
        #: effect sites — consumed suppressions, which the hygiene rule
        #: must count as used even though no raw finding anchors there
        self.sanctioned_sites: Dict[str, List[Tuple[int, str]]] = {}
        self._compute()

    # -- boundaries ------------------------------------------------------

    def mask_for(self, module: str) -> Set[str]:
        """The effects module ``module`` is sanctioned to contain."""
        mod = self.graph.modules.get(module)
        masked: Set[str] = set()
        if mod is None:
            return masked
        if mod.declared_clock:
            masked.add("clock")
        if mod.declared_randomized:
            masked.add("entropy")
        if mod.declared_workers:
            masked.add("worker-spawn")
        if mod.declared_state:
            masked.add("global-mutation")
        if module in self.config.kernel_modules:
            masked.add("kernel-mutation")
        if not mod.in_exact_scope:
            masked.add("float-arith")
        return masked

    # -- direct effect scan ----------------------------------------------

    def _direct_sources(
        self, info: FunctionInfo, mod: ModuleUnderLint
    ) -> List[Tuple[EffectSource, bool]]:
        """All direct effect sites of ``info`` with their sanctioned flag."""
        out: List[Tuple[EffectSource, bool]] = []

        def emit(effect: str, kind: str, detail: str, line: int) -> None:
            sanctioned = mod.line_suppressed(line, _SANCTIONING_RULE[effect])
            out.append((EffectSource(effect, kind, detail, line), sanctioned))

        # external references: ambient clock/entropy/worker names
        for ref in self.graph.references.get(info.qualname, []):
            effect = classify_external(ref.dotted)
            if effect is not None:
                kind = "covert" if ref.through_project else "overt"
                emit(effect, kind, ref.dotted, ref.line)

        # unseeded random.Random() constructions
        for site in self.graph.calls.get(info.qualname, []):
            res = site.resolution
            if (
                res.kind == "external"
                and res.target
                and (res.target == "random.Random" or res.target.endswith(".Random"))
                and res.target.split(".", 1)[0] == "random"
                and not site.node.args
                and not site.node.keywords
            ):
                kind = "covert" if res.through_project else "overt"
                emit("entropy", kind, f"{res.target}() unseeded", site.node.lineno)

        out.extend(self._syntactic_sources(info, mod))
        return out

    def _syntactic_sources(
        self, info: FunctionInfo, mod: ModuleUnderLint
    ) -> Iterator[Tuple[EffectSource, bool]]:
        kernel_names = _kernel_param_names(info)
        syms_assigned = self.graph._symbols[info.module].assigned | set(
            self.graph._symbols[info.module].classes
        )
        global_decls: Set[str] = set()
        for node in info.nodes:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Global):
                    global_decls.update(sub.names)

        def emit(effect: str, detail: str, line: int) -> Tuple[EffectSource, bool]:
            sanctioned = mod.line_suppressed(line, _SANCTIONING_RULE[effect])
            return (EffectSource(effect, "direct", detail, line), sanctioned)

        def is_kernel_rooted(node: ast.AST) -> bool:
            return root_name(node) in kernel_names

        def touches_internals(node: ast.AST) -> bool:
            """An attribute access ``X._slots``-style with non-self root."""
            target = node
            while isinstance(target, ast.Subscript):
                target = target.value
            return (
                isinstance(target, ast.Attribute)
                and target.attr in KERNEL_INTERNALS
                and root_name(target) not in ("self", "cls")
            )

        def mutated_global(node: ast.AST) -> Optional[str]:
            """The module-level name a store/mutation target reaches into."""
            root = root_name(node)
            if root is None or root in info.local_names:
                return None
            if root in syms_assigned:
                return root
            return None

        for top in info.nodes:
            for node in ast.walk(top):
                # float-arith
                if isinstance(node, ast.Constant) and isinstance(node.value, (float, complex)):
                    yield emit("float-arith", f"{node.value!r} literal", node.lineno)
                elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                    yield emit("float-arith", "true division", node.lineno)
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"
                ):
                    yield emit("float-arith", "float() conversion", node.lineno)

                # stores and deletions
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Delete)):
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, ast.Delete):
                        targets = node.targets
                    else:
                        targets = [node.target]
                    for target in targets:
                        if isinstance(target, (ast.Tuple, ast.List)):
                            flat = list(target.elts)
                        else:
                            flat = [target]
                        for item in flat:
                            if isinstance(item, (ast.Attribute, ast.Subscript)):
                                if is_kernel_rooted(item) or touches_internals(item):
                                    yield emit(
                                        "kernel-mutation",
                                        f"store into {ast.unparse(item)}"
                                        if attribute_chain(item) is None
                                        else f"store into {attribute_chain(item)}",
                                        item.lineno,
                                    )
                                name = mutated_global(item)
                                if name is not None:
                                    yield emit(
                                        "global-mutation",
                                        f"mutates module-level '{name}'",
                                        item.lineno,
                                    )
                            elif isinstance(item, ast.Name) and item.id in global_decls:
                                yield emit(
                                    "global-mutation",
                                    f"rebinds global '{item.id}'",
                                    item.lineno,
                                )

                # mutator method calls
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in _MUTATORS:
                        base = node.func.value
                        if is_kernel_rooted(base) or touches_internals(base):
                            yield emit(
                                "kernel-mutation",
                                f".{node.func.attr}() on kernel internals",
                                node.lineno,
                            )
                        name = mutated_global(base)
                        if name is not None:
                            yield emit(
                                "global-mutation",
                                f".{node.func.attr}() on module-level '{name}'",
                                node.lineno,
                            )

                # setattr / object.__setattr__ smuggling
                if isinstance(node, ast.Call):
                    dotted = attribute_chain(node.func)
                    is_setattr = dotted == "setattr" or dotted == "object.__setattr__"
                    if is_setattr and node.args:
                        first = node.args[0]
                        attr_arg = node.args[1] if len(node.args) > 1 else None
                        named_kernel = (
                            isinstance(first, ast.Name) and first.id in kernel_names
                        )
                        forges_internal = (
                            isinstance(attr_arg, ast.Constant)
                            and isinstance(attr_arg.value, str)
                            and attr_arg.value in KERNEL_INTERNALS
                        )
                        if named_kernel or forges_internal:
                            yield emit(
                                "kernel-mutation",
                                f"{dotted}() on kernel internals",
                                node.lineno,
                            )

    # -- fixpoint --------------------------------------------------------

    def _compute(self) -> None:
        for qualname, info in self.graph.functions.items():
            mod = self.graph.modules.get(info.module)
            fe = FunctionEffects(qualname=qualname, module=info.module, lineno=info.lineno)
            if mod is not None:
                for source, sanctioned in self._direct_sources(info, mod):
                    fe.raw_direct.add(source.effect)
                    if sanctioned:
                        self.sanctioned_sites.setdefault(info.module, []).append(
                            (source.line, _SANCTIONING_RULE[source.effect])
                        )
                    else:
                        fe.direct.add(source.effect)
                        fe.add_source(source)
            self.functions[qualname] = fe

        masks = {module: self.mask_for(module) for module in self.graph.modules}
        for fe in self.functions.values():
            mask = masks.get(fe.module, set())
            fe.visible = fe.direct - mask
            fe.contained = fe.direct & mask

        changed = True
        while changed:
            changed = False
            for qualname, fe in self.functions.items():
                mask = masks.get(fe.module, set())
                for callee in self.graph.project_callees.get(qualname, []):
                    callee_fx = self.functions.get(callee)
                    if callee_fx is None:
                        continue
                    for effect in sorted(callee_fx.visible):
                        if effect in fe.visible or effect in fe.contained:
                            continue
                        sites = self.graph.call_sites(qualname, callee)
                        line = min(
                            (s.node.lineno for s in sites),
                            default=self.graph.functions[qualname].lineno,
                        )
                        source = EffectSource(effect, "call", callee, line)
                        if effect in mask:
                            fe.contained.add(effect)
                        else:
                            fe.visible.add(effect)
                            fe.add_source(source)
                        changed = True
        for fe in self.functions.values():
            for sources in fe.sources.values():
                sources.sort(key=lambda s: (s.line, s.kind, s.detail))

    # -- queries ---------------------------------------------------------

    def path(self, qualname: str, effect: str) -> List[str]:
        """A witness chain ``[f, g, ..., external-or-site]`` for an effect."""
        chain = [qualname]
        seen = {qualname}
        current = qualname
        while True:
            fe = self.functions.get(current)
            if fe is None:
                break
            sources = fe.sources.get(effect, [])
            terminal = [s for s in sources if s.kind != "call"]
            if terminal:
                chain.append(terminal[0].detail)
                break
            forwards = [s for s in sources if s.kind == "call" and s.detail not in seen]
            if not forwards:
                break
            current = forwards[0].detail
            seen.add(current)
            chain.append(current)
        return chain

    def module_raw_direct(self, module: str) -> Set[str]:
        """Union of raw (pre-noqa) direct effects of a module's functions."""
        out: Set[str] = set()
        for fe in self.functions.values():
            if fe.module == module:
                out |= fe.raw_direct
        return out

    def lookup(self, qualname: str) -> Optional[FunctionEffects]:
        """The effects entry for a function qualname (or module body)."""
        if qualname in self.functions:
            return self.functions[qualname]
        return self.functions.get(f"{qualname}.{MODULE_BODY}")

    def model_functions(self) -> List[FunctionEffects]:
        """Effect entries for every function in the model packages."""
        out = [
            fe
            for fe in self.functions.values()
            if any(
                fe.module == pkg or fe.module.startswith(pkg + ".")
                for pkg in self.config.model_packages
            )
        ]
        return sorted(out, key=lambda fe: (fe.module, fe.lineno, fe.qualname))
