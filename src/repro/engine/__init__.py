"""Parallel sharded experiment engine.

``repro.engine`` turns the serial per-experiment scripts into a batched,
process-parallel sweep:

* :mod:`repro.engine.grid` — declarative job grids (algorithm × Delta ×
  chain × seed) expanded into deterministic :class:`~repro.engine.grid.Cell`
  jobs;
* :mod:`repro.engine.cache` — a content-addressed canonical-form cache
  (in-memory LRU + optional on-disk store under ``$REPRO_CACHE_DIR``)
  installed into :mod:`repro.graphs.isomorphism` for the duration of a run;
* :mod:`repro.engine.store` — resumable JSONL result shards plus the merged
  ``summary.json``;
* :mod:`repro.engine.pool` — the backend-agnostic sweep driver: shards
  cells, merges per-shard traces into one document, and survives dead
  workers, hung cells and transient failures via bounded retries, per-cell
  watchdogs and shard reassignment (see ``docs/fault_injection.md``);
* :mod:`repro.engine.executors` — the pluggable
  :class:`~repro.engine.executors.SweepExecutor` backends the driver
  dispatches shards to: ``inline`` (in-process asyncio, zero spawn),
  ``process`` (the spawn-context pool) and ``socket`` (multi-host shard
  servers over JSON framing with per-worker memory budgeting);
* :mod:`repro.engine.faults` — a deterministic fault-injection layer (seeded
  :class:`~repro.engine.faults.FaultPlan`) that replays worker kills, shard
  truncation, cache corruption, stalls and transient I/O errors so every
  recovery path is mechanically exercised.

Entry points: :func:`run_sweep` (or ``python -m repro sweep`` /
:func:`repro.api.sweep`).  See ``docs/engine.md``.
"""

from .cache import CacheStats, CanonicalFormCache, graph_digest
from .executors import (
    BACKENDS,
    ExecutionOptions,
    ExecutorCapabilities,
    ExecutorContext,
    InlineExecutor,
    ProcessExecutor,
    ShardServer,
    SocketExecutor,
    SweepExecutor,
    as_executor,
)
from .faults import Fault, FaultInjector, FaultPlan, InjectedWorkerError, use_faults
from .grid import ALGORITHMS, CHAINS, Cell, GridSpec, e1_grid, expand, run_cell, smoke_grid
from .pool import CellExecutionError, CellTimeout, SweepResult, run_sweep, verify_store
from .store import ResultStore

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "CHAINS",
    "CacheStats",
    "CanonicalFormCache",
    "Cell",
    "CellExecutionError",
    "CellTimeout",
    "ExecutionOptions",
    "ExecutorCapabilities",
    "ExecutorContext",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "GridSpec",
    "InjectedWorkerError",
    "InlineExecutor",
    "ProcessExecutor",
    "ResultStore",
    "ShardServer",
    "SocketExecutor",
    "SweepExecutor",
    "SweepResult",
    "as_executor",
    "e1_grid",
    "expand",
    "graph_digest",
    "run_cell",
    "run_sweep",
    "smoke_grid",
    "use_faults",
    "verify_store",
]
