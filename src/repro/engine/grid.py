"""Declarative job grids for the sweep engine.

A :class:`GridSpec` names the experiment axes — algorithm × Delta ×
simulation chain × seed — without running anything; :func:`expand` turns it
into the deterministic, sorted list of :class:`Cell` jobs the engine shards
across workers.  Each cell owns a stable string ``key`` (its identity in
result shards, resume bookkeeping and trace attribution) and knows how to
build its algorithm (:func:`build_cell_algorithm`) and execute itself
(:func:`run_cell`).

Cells are deliberately tiny value objects (round-trippable through
``as_dict``/``from_dict``) so they cross process boundaries cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from ..core.adversary import run_adversary
from ..core.witness import AlgorithmFailure
from ..matching.greedy_color import greedy_color_algorithm
from ..matching.naive import DegreeSplitFM, ZeroFM
from ..matching.proposal import proposal_algorithm
from ..obs.tracer import current_tracer

__all__ = [
    "ALGORITHMS",
    "CHAINS",
    "Cell",
    "GridSpec",
    "build_cell_algorithm",
    "e1_grid",
    "expand",
    "make_algorithm",
    "run_cell",
    "smoke_grid",
]

#: name -> factory for every sweepable EC algorithm (also the CLI registry)
ALGORITHMS = {
    "greedy": greedy_color_algorithm,
    "proposal": proposal_algorithm,
    "zero": ZeroFM,
    "degree-split": DegreeSplitFM,
}

#: the Section 5 simulation chains a cell may run its algorithm through;
#: chains deeper than "ec" wrap the proposal dynamics (the one shipped
#: machine with PO and ID presentations)
CHAINS = ("ec", "po", "oi", "id")


def make_algorithm(name: str):
    """Instantiate a registered algorithm by name."""
    if name not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}")
    return ALGORITHMS[name]()


@dataclass(frozen=True, order=True)
class Cell:
    """One grid point: run ``algorithm`` through ``chain`` at degree ``delta``."""

    algorithm: str
    delta: int
    chain: str = "ec"
    seed: int = 0

    @property
    def key(self) -> str:
        """Stable identity used by shards, resume and trace attribution."""
        return f"{self.algorithm}/d{self.delta}/{self.chain}/s{self.seed}"

    def as_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "algorithm": self.algorithm,
            "delta": self.delta,
            "chain": self.chain,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Cell":
        return cls(
            algorithm=str(data["algorithm"]),
            delta=int(data["delta"]),
            chain=str(data.get("chain", "ec")),
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class GridSpec:
    """A declarative sweep grid: the cross product of its axes."""

    algorithms: Tuple[str, ...] = ("greedy", "proposal")
    deltas: Tuple[int, ...] = (3, 4, 5, 6, 7, 8)
    chains: Tuple[str, ...] = ("ec",)
    seeds: Tuple[int, ...] = (0,)

    @classmethod
    def from_mapping(cls, data: Mapping) -> "GridSpec":
        """Build a spec from a plain dict (the CLI/JSON form).

        Accepts singular scalars as well as sequences for each axis.
        """

        def axis(name: str, default: Sequence) -> Tuple:
            value = data.get(name, default)
            if isinstance(value, (str, int)):
                value = (value,)
            return tuple(value)

        return cls(
            algorithms=axis("algorithms", cls.algorithms),
            deltas=tuple(int(d) for d in axis("deltas", cls.deltas)),
            chains=axis("chains", cls.chains),
            seeds=tuple(int(s) for s in axis("seeds", cls.seeds)),
        )

    def as_dict(self) -> dict:
        return {
            "algorithms": list(self.algorithms),
            "deltas": list(self.deltas),
            "chains": list(self.chains),
            "seeds": list(self.seeds),
        }


def e1_grid() -> GridSpec:
    """The E1 reproduction grid: both upper-bound algorithms, Delta 3..8."""
    return GridSpec(algorithms=("greedy", "proposal"), deltas=(3, 4, 5, 6, 7, 8))


def smoke_grid() -> GridSpec:
    """A two-algorithm mini-grid for CI smoke runs (seconds, not minutes)."""
    return GridSpec(algorithms=("greedy", "proposal"), deltas=(3, 4))


def expand(grid: Union[GridSpec, Mapping]) -> List[Cell]:
    """The grid's cells, validated, in deterministic sorted order."""
    if not isinstance(grid, GridSpec):
        grid = GridSpec.from_mapping(grid)
    cells: List[Cell] = []
    for algorithm in grid.algorithms:
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        for chain in grid.chains:
            if chain not in CHAINS:
                raise ValueError(f"unknown chain {chain!r}; choose from {CHAINS}")
            if chain != "ec" and algorithm != "proposal":
                raise ValueError(
                    f"chain {chain!r} wraps the proposal dynamics; "
                    f"algorithm {algorithm!r} only runs on the 'ec' chain"
                )
            for delta in grid.deltas:
                if delta < 2:
                    raise ValueError("the construction needs delta >= 2")
                for seed in grid.seeds:
                    cells.append(Cell(algorithm, delta, chain, seed))
    return sorted(cells)


def build_cell_algorithm(cell: Cell):
    """The EC-weight algorithm a cell runs the adversary against."""
    if cell.chain == "ec":
        return make_algorithm(cell.algorithm)
    from ..core.theorem import chain_from_name

    return chain_from_name(cell.chain, t=cell.delta)


def run_cell(cell: Cell, tracer=None) -> dict:
    """Execute one cell: the Section 4 adversary at the cell's grid point.

    Returns a deterministic result row — no wall-clock quantities — so a
    parallel sweep's rows are byte-identical to the serial baseline's.
    An :class:`AlgorithmFailure` becomes a row with ``status="refuted"``
    and the certificate message instead of propagating out of the worker.
    """
    tracer = tracer if tracer is not None else current_tracer()
    algorithm = build_cell_algorithm(cell)
    with tracer.span(
        "engine.cell",
        key=cell.key,
        algorithm=cell.algorithm,
        delta=cell.delta,
        chain=cell.chain,
        seed=cell.seed,
    ) as span:
        row = dict(cell.as_dict(), key=cell.key)
        try:
            witness = run_adversary(algorithm, cell.delta, tracer=tracer)
        except AlgorithmFailure as failure:
            span.set(status="refuted")
            row.update(status="refuted", failure=str(failure))
            return row
        top = witness.steps[-1]
        span.set(status="ok", witness_depth=witness.achieved_depth)
        row.update(
            status="ok",
            witness_depth=witness.achieved_depth,
            expected_depth=cell.delta - 2,
            final_graph_nodes=top.graph_g.num_nodes() + top.graph_h.num_nodes(),
            all_valid=witness.all_valid,
        )
        return row
