"""The paper's contribution, executable: the unfold-and-mix lower-bound
adversary (Section 4), the EC <= PO <= OI <= ID simulation chain (Section 5),
the homogeneous tree order (Appendix A) and derandomisation (Appendix B)."""

from .adversary import checked_run, hard_instance_pair, run_adversary
from .canonical_order import (
    bracket,
    compare_words,
    concat,
    inverse_word,
    reduce_word,
    slot_key,
    tree_sort_key,
)
from .derandomize import all_graphs_on, failure_amplification, find_good_assignment
from .exhaustive import (
    SearchOutcome,
    half_integral_grid,
    one_round_universe,
    search_view_function,
    zero_round_impossibility,
)
from .propagation import (
    PropagationError,
    disagreeing_colors,
    disagreement_walk,
    next_disagreement,
    node_load_of_output,
)
from .ramsey import find_monochromatic_subset, order_invariant_subset, ramsey_pairs
from .separations import (
    GreedyColorMatching,
    ec_coloring_impossibility_certificate,
    maximal_matching_in_ec,
    two_color_one_regular_po,
)
from .saturation import (
    check_lift_invariance,
    figure4_certificate,
    saturation_indicator,
    simple_unfolding,
    unsaturated_nodes,
)
from .sim_ec_po import ECFromPO, ec_algorithm_from_po
from .sim_oi_id import (
    LoopyNeighbourhood,
    OIFromID,
    ball_size_bound,
    evaluate_id_on_neighbourhood,
    extract_order_invariant_ids,
    lemma6_check,
    lemma7_check,
    loopy_oi_neighbourhood,
    saturation_of_root,
)
from .sim_po_oi import (
    OIAlgorithm,
    POFromOI,
    SymmetricOIAdapter,
    cover_words,
    po_algorithm_from_oi,
)
from .theorem import Refutation, chain_id_to_ec, chain_oi_to_ec, chain_po_to_ec, refute
from .witness import AlgorithmFailure, LowerBoundWitness, StepWitness, reverify_step

__all__ = [
    "checked_run",
    "hard_instance_pair",
    "run_adversary",
    "bracket",
    "compare_words",
    "concat",
    "inverse_word",
    "reduce_word",
    "slot_key",
    "tree_sort_key",
    "all_graphs_on",
    "failure_amplification",
    "find_good_assignment",
    "SearchOutcome",
    "half_integral_grid",
    "one_round_universe",
    "search_view_function",
    "zero_round_impossibility",
    "PropagationError",
    "disagreeing_colors",
    "disagreement_walk",
    "next_disagreement",
    "node_load_of_output",
    "find_monochromatic_subset",
    "order_invariant_subset",
    "ramsey_pairs",
    "GreedyColorMatching",
    "ec_coloring_impossibility_certificate",
    "maximal_matching_in_ec",
    "two_color_one_regular_po",
    "check_lift_invariance",
    "figure4_certificate",
    "saturation_indicator",
    "simple_unfolding",
    "unsaturated_nodes",
    "ECFromPO",
    "ec_algorithm_from_po",
    "LoopyNeighbourhood",
    "OIFromID",
    "ball_size_bound",
    "evaluate_id_on_neighbourhood",
    "extract_order_invariant_ids",
    "lemma6_check",
    "lemma7_check",
    "loopy_oi_neighbourhood",
    "saturation_of_root",
    "OIAlgorithm",
    "POFromOI",
    "SymmetricOIAdapter",
    "cover_words",
    "po_algorithm_from_oi",
    "Refutation",
    "chain_id_to_ec",
    "chain_oi_to_ec",
    "chain_po_to_ec",
    "refute",
    "AlgorithmFailure",
    "LowerBoundWitness",
    "StepWitness",
    "reverify_step",
]
