"""Tests for the observability layer (repro.obs): tracer, metrics, exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    TRACE_SCHEMA_VERSION,
    Tracer,
    count_spans,
    current_tracer,
    document_profile,
    merge_metrics_snapshots,
    merge_trace_documents,
    profile_rows,
    render_profile,
    render_tree,
    span_to_dict,
    trace_document,
    use_tracer,
    write_bench_artifact,
    write_json,
    write_jsonl,
)
from repro.obs.metrics import bucket_key, percentile_from_buckets


class FakeClock:
    """Deterministic monotonic clock: every read advances by ``step``."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [s.name for s in tracer.roots[0].children] == ["inner.a", "inner.b"]

    def test_durations_come_from_the_injected_clock(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("solo"):
            pass
        (span,) = tracer.roots
        assert span.duration == pytest.approx(1.0)

    def test_self_time_excludes_children(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.self_time == pytest.approx(outer.duration - inner.duration)
        assert inner.self_time == pytest.approx(inner.duration)

    def test_set_and_add_record_attrs_and_counters(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", phase="test") as span:
            span.set(rounds=3)
            span.add("messages", 5)
            span.add("messages", 2)
            span.add("covers")
        (span,) = tracer.roots
        assert span.attrs == {"phase": "test", "rounds": 3}
        assert span.counters == {"messages": 7, "covers": 1}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.roots
        assert span.attrs["error"] == "RuntimeError"
        assert span.end is not None  # closed despite the exception

    def test_iter_spans_is_depth_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "c"]

    def test_find_returns_matching_spans(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x"):
            with tracer.span("y"):
                pass
            with tracer.span("y"):
                pass
        assert len(tracer.find("y")) == 2
        assert tracer.find("missing") == []


class TestNullTracer:
    def test_is_disabled_and_reusable(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set(x=1)
            span.add("c")
        # nothing recorded, nothing raised
        assert isinstance(NULL_TRACER, NullTracer)

    def test_null_span_swallows_nothing(self):
        """The no-op span must not suppress exceptions."""
        with pytest.raises(ValueError):
            with NULL_TRACER.span("s"):
                raise ValueError("escapes")

    def test_ambient_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer(clock=FakeClock())
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with current_tracer().span("via-ambient"):
                pass
        assert current_tracer() is NULL_TRACER
        assert count_spans(tracer, "via-ambient") == 1

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError
        assert current_tracer() is NULL_TRACER


class TestMetrics:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("runs", model="EC")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("runs").inc(-1)

    def test_labels_key_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("runs", model="EC")
        b = reg.counter("runs", model="PO")
        again = reg.counter("runs", model="EC")
        assert a is again and a is not b

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(7)
        h = reg.histogram("latency")
        for v in (1, 2, 3):
            h.observe(v)
        snap = reg.snapshot()
        (gauge_row,) = snap["gauges"]
        assert gauge_row["value"] == 7
        (hist_row,) = snap["histograms"]
        assert hist_row["count"] == 3
        assert hist_row["min"] == 1 and hist_row["max"] == 3
        assert hist_row["mean"] == pytest.approx(2.0)

    def test_snapshot_includes_labels(self):
        reg = MetricsRegistry()
        reg.counter("steps", algorithm="greedy", delta=5).inc()
        (row,) = reg.snapshot()["counters"]
        assert row["labels"] == {"algorithm": "greedy", "delta": "5"}

    def test_null_registry_via_null_tracer(self):
        # metric calls through the disabled tracer are harmless no-ops
        NULL_TRACER.metrics.counter("x", any_label=1).inc(10)
        NULL_TRACER.metrics.gauge("y").set(2)
        NULL_TRACER.metrics.histogram("z").observe(3)


def make_traced(clock=None):
    tracer = Tracer(clock=clock or FakeClock())
    with tracer.span("root", kind="test"):
        with tracer.span("child") as s:
            s.add("messages", 2)
    tracer.metrics.counter("runs", model="EC").inc()
    return tracer


class TestExport:
    def test_span_to_dict_nests_children(self):
        tracer = make_traced()
        doc = span_to_dict(tracer.roots[0])
        assert doc["name"] == "root"
        assert doc["attrs"] == {"kind": "test"}
        (child,) = doc["children"]
        assert child["name"] == "child"
        assert child["counters"] == {"messages": 2}

    def test_trace_document_schema(self):
        doc = trace_document(make_traced(), command="unit-test")
        assert doc["version"] == TRACE_SCHEMA_VERSION
        assert doc["command"] == "unit-test"
        assert len(doc["spans"]) == 1
        assert doc["metrics"]["counters"][0]["name"] == "runs"

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_json(make_traced(), path, command="t")
        loaded = json.loads(path.read_text())
        assert loaded["version"] == TRACE_SCHEMA_VERSION
        assert loaded["spans"][0]["children"][0]["name"] == "child"

    def test_write_jsonl_links_parents(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(make_traced(), path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 2
        root, child = rows
        assert root["parent"] is None
        assert child["parent"] == root["id"]

    def test_render_tree_respects_max_depth(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        deep = render_tree(tracer, max_depth=5)
        assert "c" in deep
        shallow = render_tree(tracer, max_depth=1)
        assert "c" not in shallow
        assert "nested" in shallow  # cutoff is announced, not silent

    def test_profile_rows_aggregate_and_sort_by_self_time(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("hot"):
            with tracer.span("cold"):
                pass
        with tracer.span("hot"):
            pass
        rows = profile_rows(tracer)
        assert rows[0]["name"] == "hot"
        assert rows[0]["calls"] == 2
        table = render_profile(rows, top=1)
        assert "hot" in table and "cold" not in table

    def test_count_spans(self):
        tracer = make_traced()
        assert count_spans(tracer, "child") == 1
        assert count_spans(tracer, "nope") == 0

    def test_write_bench_artifact_schema(self, tmp_path):
        path = write_bench_artifact(
            tmp_path / "BENCH_E9.json",
            "E9",
            [{"experiment": "E9 demo", "rows": [{"delta": 3, "depth": 1}]}],
            lint={"clean": True, "total": 0, "by_rule": {}},
            profile=[{"name": "x", "count": 1, "total": 0.1, "self": 0.1, "mean": 0.1}],
        )
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert doc["experiment_id"] == "E9"
        assert doc["series"][0]["rows"] == [{"delta": 3, "depth": 1}]
        assert doc["lint"]["clean"] is True
        assert doc["profile"][0]["name"] == "x"


class TestInstrumentationIntegration:
    """The runtime and adversary actually emit the documented spans."""

    def test_run_emits_round_spans_with_message_counts(self):
        from repro.graphs.families import cycle_graph
        from repro.local.runtime import ECNetwork, run
        from tests.test_runtime import CountsRounds

        tracer = Tracer()
        result = run(ECNetwork(cycle_graph(4)), CountsRounds(2), tracer=tracer)
        (run_span,) = tracer.find("local.run")
        assert run_span.attrs["rounds"] == result.rounds
        rounds = tracer.find("local.round")
        assert len(rounds) == result.rounds
        assert rounds[0].attrs["messages"] == 8  # 4 nodes x 2 ports
        assert rounds[0].attrs["state_size"] > 0

    def test_adversary_emits_one_step_span_per_level(self):
        from repro.core.adversary import run_adversary
        from repro.matching.greedy_color import greedy_color_algorithm

        delta = 5
        tracer = Tracer()
        witness = run_adversary(greedy_color_algorithm(), delta, tracer=tracer)
        steps = tracer.find("adversary.step")
        # base case + Delta-2 induction steps
        assert len(steps) == delta - 1
        assert witness.achieved_depth == delta - 2
        (outer,) = tracer.find("adversary.run")
        assert outer.attrs["achieved_depth"] == delta - 2
        assert tracer.find("adversary.unfold") and tracer.find("adversary.mix")

    def test_simulation_chain_emits_layer_spans(self):
        from repro.core.theorem import chain_po_to_ec, refute
        from repro.local.algorithm import SimulatedPOWeights
        from repro.matching.proposal import ProposalFM

        tracer = Tracer()
        ec = chain_po_to_ec(SimulatedPOWeights(ProposalFM("PO")))
        # simulation-layer spans attach via the ambient tracer
        with use_tracer(tracer):
            report = refute(ec, claimed_rounds=1, delta=4, tracer=tracer)
        assert report.kind in ("incorrect-output", "locality-violation")
        (refute_span,) = tracer.find("theorem.refute")
        assert refute_span.attrs["kind"] in ("incorrect-output", "locality-violation")
        assert tracer.find("sim.ec_from_po")


class TestHistogramPercentiles:
    def test_bucket_key_is_log2_with_an_underflow_bucket(self):
        assert bucket_key(0) == "-inf"
        assert bucket_key(-3) == "-inf"
        assert bucket_key(1) == "0"
        assert bucket_key(2) == "1"
        assert bucket_key(3) == "2"  # bucket e covers (2**(e-1), 2**e]
        assert bucket_key(4) == "2"
        assert bucket_key(0.5) == "-1"

    def test_single_value_reports_itself_exactly(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        h.observe(7)
        assert h.p50 == 7 and h.p95 == 7  # clamped into [min, max]

    def test_percentiles_walk_the_bucket_edges(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in range(1, 101):
            h.observe(v)
        # rank 50 lands in bucket "6" = (32, 64]; its upper edge is reported
        assert h.p50 == 64.0
        # rank 95 lands in bucket "7" = (64, 128], clamped to the true max
        assert h.p95 == 100.0

    def test_non_positive_values_share_the_underflow_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("delta")
        h.observe(0)
        h.observe(0)
        assert h.buckets == {"-inf": 2}
        assert h.p50 == 0.0 and h.p95 == 0.0

    def test_empty_histogram_has_no_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("unused")
        assert h.p50 is None and h.p95 is None
        assert percentile_from_buckets({}, 0, 0.5) is None

    def test_snapshot_rows_carry_percentiles_and_sorted_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in (0, 1, 1024):
            h.observe(v)
        (row,) = reg.snapshot()["histograms"]
        assert row["p50"] == 1.0 and row["p95"] == 1024.0
        assert list(row["buckets"]) == ["-inf", "0", "10"]


def snapshot_of(build) -> dict:
    reg = MetricsRegistry()
    build(reg)
    return reg.snapshot()


class TestSnapshotMerge:
    def test_merging_no_snapshots_yields_an_empty_snapshot(self):
        assert merge_metrics_snapshots([]) == {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }

    def test_label_collisions_across_workers_stay_separate_rows(self):
        a = snapshot_of(lambda r: r.counter("runs", model="EC").inc(2))

        def build_b(r):
            r.counter("runs", model="EC").inc(3)
            r.counter("runs", model="PO").inc(1)

        b = snapshot_of(build_b)
        merged = merge_metrics_snapshots([a, b])
        rows = {tuple(sorted(row["labels"].items())): row["value"]
                for row in merged["counters"]}
        # same name + same labels sum; same name + different labels never mix
        assert rows[(("model", "EC"),)] == 5
        assert rows[(("model", "PO"),)] == 1

    def test_gauges_keep_the_last_written_value(self):
        a = snapshot_of(lambda r: r.gauge("depth").set(1))
        b = snapshot_of(lambda r: r.gauge("depth").set(9))
        merged = merge_metrics_snapshots([a, b])
        assert merged["gauges"][0]["value"] == 9

    def test_histograms_widen_and_recompute_percentiles(self):
        def build_low(r):
            for v in (1, 2):
                r.histogram("latency").observe(v)

        def build_high(r):
            for v in (64, 100):
                r.histogram("latency").observe(v)

        merged = merge_metrics_snapshots([snapshot_of(build_low), snapshot_of(build_high)])
        (row,) = merged["histograms"]
        assert row["count"] == 4
        assert row["min"] == 1 and row["max"] == 100
        assert row["mean"] == pytest.approx(167 / 4)
        # merged p50/p95 come from the merged buckets, not either input's
        assert row["p50"] == 2.0
        assert row["p95"] == 100.0

    def test_merge_does_not_mutate_the_input_snapshots(self):
        a = snapshot_of(lambda r: r.histogram("latency").observe(1))
        b = snapshot_of(lambda r: r.histogram("latency").observe(100))
        before = json.dumps(a, sort_keys=True)
        merge_metrics_snapshots([a, b])
        assert json.dumps(a, sort_keys=True) == before

    def test_histogram_merge_is_associative(self):
        def worker(values):
            def build(r):
                r.counter("rows").inc(len(values))
                for v in values:
                    r.histogram("latency", shard="s").observe(v)

            return snapshot_of(build)

        a, b, c = worker([1, 3]), worker([8, 0]), worker([900])
        left = merge_metrics_snapshots([a, merge_metrics_snapshots([b, c])])
        right = merge_metrics_snapshots([merge_metrics_snapshots([a, b]), c])
        assert json.dumps(left, sort_keys=True) == json.dumps(right, sort_keys=True)

    def test_merge_trace_documents_annotates_root_origins(self):
        docs = [trace_document(make_traced(), command="w0"),
                trace_document(make_traced(), command="w1")]
        merged = merge_trace_documents(docs, command="sweep")
        assert merged["merged_from"] == 2
        assert [s["attrs"]["merged_from"] for s in merged["spans"]] == [0, 1]
        assert merged["metrics"]["counters"][0]["value"] == 2  # 1 run per worker

    def test_merge_trace_documents_of_nothing(self):
        merged = merge_trace_documents([])
        assert merged["merged_from"] == 0 and merged["spans"] == []

    def test_document_profile_matches_the_live_profile(self):
        tracer = make_traced()
        live = profile_rows(tracer)
        from_doc = document_profile(trace_document(tracer))
        key = lambda rows: [  # noqa: E731 - local comparison shim
            {k: row[k] for k in ("name", "calls", "total", "self")} for row in rows
        ]
        assert key(from_doc) == key(live)
