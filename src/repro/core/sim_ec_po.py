"""The simulation EC <= PO (paper, Section 5.1 and Figure 8).

A ``t``-time PO-algorithm for maximal FM on graphs of maximum degree ``D``
yields a ``t``-time EC-algorithm for maximum degree ``D/2``:

1. interpret each undirected colour-``c`` edge ``{u, v}`` of the EC-graph as
   the two directed arcs ``(u, v)`` and ``(v, u)`` of colour ``c`` (an EC
   loop becomes one directed loop) — degrees exactly double;
2. run the PO-algorithm on the resulting PO-graph;
3. map the output back: the EC edge's weight is ``y(u, v) + y(v, u)``; an
   EC loop receives twice its directed loop's weight (the loop's two slots).

Feasibility transfers because a node's EC load equals its PO load slot for
slot; maximality transfers because saturation does.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Optional

from ..graphs.multigraph import ECGraph
from ..graphs.ports import po_double_from_ec
from ..local.algorithm import ECWeightAlgorithm, POWeightAlgorithm

Node = Hashable
Color = Hashable

__all__ = ["ECFromPO", "ec_algorithm_from_po"]


class ECFromPO(ECWeightAlgorithm):
    """EC-model wrapper around a PO-model algorithm (the Section 5.1 move)."""

    def __init__(self, po_algorithm: POWeightAlgorithm):
        self.po_algorithm = po_algorithm
        self.name = f"ec<=po[{po_algorithm.name}]"
        self._last_rounds: Optional[int] = None

    def run_on(self, g: ECGraph) -> Dict[Node, Dict[Color, Fraction]]:
        from ..obs.tracer import current_tracer

        tracer = current_tracer()
        with tracer.span(
            "sim.ec_from_po",
            algorithm=self.name,
            nodes=g.num_nodes(),
            edges=g.num_edges(),
            graph=g.digest[:12],
        ) as span:
            doubled = po_double_from_ec(g)
            po_out = self.po_algorithm.run_on(doubled)
            self._last_rounds = self.po_algorithm.rounds_used(doubled)
            span.set(rounds=self._last_rounds)
            tracer.metrics.counter("sim.layer_runs", layer="ec_from_po", algorithm=self.name).inc()
        ec_out: Dict[Node, Dict[Color, Fraction]] = {}
        for v in g.nodes():
            slots = po_out[v]
            per_color: Dict[Color, Fraction] = {}
            for e in g.incident_edges(v):
                c = e.color
                if e.is_loop:
                    w_out = Fraction(slots[("out", c)])
                    w_in = Fraction(slots[("in", c)])
                    if w_out != w_in:
                        raise ValueError(
                            f"PO algorithm announced {w_out} and {w_in} for the two "
                            f"slots of a single directed loop at {v!r}"
                        )
                    per_color[c] = w_out + w_in
                else:
                    per_color[c] = Fraction(slots[("out", c)]) + Fraction(slots[("in", c)])
            ec_out[v] = per_color
        return ec_out

    def rounds_used(self, g: ECGraph) -> Optional[int]:
        """Round count of the underlying PO run (the simulation adds none)."""
        return self._last_rounds


def ec_algorithm_from_po(po_algorithm: POWeightAlgorithm) -> ECFromPO:
    """Functional spelling of :class:`ECFromPO`."""
    return ECFromPO(po_algorithm)
