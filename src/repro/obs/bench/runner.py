"""Run declared scaling experiments with warmup/repeat medians.

Each experiment kind declared in :mod:`repro.obs.bench.suite` maps to a
runner function here.  Runners drive the *real* engine — serial sweeps for
Δ-scaling, a spawn pool for worker-scaling, a throwaway on-disk store for
cache-scaling — under a :class:`BenchContext` that times callables with the
warmup/repeat/median discipline, and return plain metric dicts plus a
self-time profile extracted from the sweep's merged trace document
(:func:`repro.obs.export.document_profile`).

Isolation: ``$REPRO_CACHE_DIR`` is stripped for the duration of a suite run
so an ambient shared cache cannot warm the timed sweeps, and every sweep
here runs with a fresh in-memory LRU (plus, for cache-scaling only, an
experiment-private temporary disk tier).

This module is a sanctioned wall-clock reader (``LintConfig.clock_modules``):
the timing clock is injected and defaults to :func:`time.perf_counter`, so
tests can run the whole suite under a fake clock.
"""

from __future__ import annotations

import hashlib
import json
import os
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..export import document_profile
from .suite import Suite, suite_named
from .trajectory import current_commit, make_row

__all__ = ["BenchContext", "RUNNERS", "run_experiment", "run_suite"]

_PROFILE_TOP = 10  # span-name rows kept per trajectory row


@dataclass
class BenchContext:
    """Timing harness handed to experiment runners.

    :meth:`time` runs ``fn`` ``warmup`` times untimed, then ``repeats``
    times timed, and returns ``(median_seconds, last_result)``;
    :meth:`time_once` is the single-shot primitive for experiments (like
    cold/warm cache pairs) that must control repetition themselves.

    ``engine_opts`` are extra ``run_sweep`` keyword arguments forwarded to
    every sweep a runner launches (``backend=``, ``cell_timeout=``, ...);
    runners that sweep an axis themselves drop the clashing key.  Empty by
    default, so unconfigured benches behave exactly as before.
    """

    repeats: int = 3
    warmup: int = 1
    clock: Callable[[], float] = time.perf_counter
    engine_opts: Dict[str, object] = field(default_factory=dict)

    def sweep_opts(self, *drop: str) -> Dict[str, object]:
        """The forwarded engine options, minus runner-owned axes."""
        return {k: v for k, v in self.engine_opts.items() if k not in drop}

    def time_once(self, fn: Callable[[], object]) -> Tuple[float, object]:
        t0 = self.clock()
        result = fn()
        return self.clock() - t0, result

    def time(self, fn: Callable[[], object]) -> Tuple[float, object]:
        for _ in range(self.warmup):
            fn()
        samples: List[float] = []
        result = None
        for _ in range(max(1, self.repeats)):
            elapsed, result = self.time_once(fn)
            samples.append(elapsed)
        return statistics.median(samples), result


def _rows_sha256(rows: List[dict]) -> str:
    """Checksum of a sweep's result rows — the byte-identity fingerprint."""
    payload = json.dumps(rows, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _refuted(rows: List[dict]) -> int:
    return sum(1 for row in rows if row.get("status") == "refuted")


def _round6(value: float) -> float:
    return round(float(value), 6)


def _run_delta_scaling(params: Dict, ctx: BenchContext) -> Tuple[Dict, List[dict]]:
    """Serial E1 sweep per Δ: wall time scaling plus determinism fingerprints."""
    from ...engine import GridSpec, run_sweep

    algorithms = tuple(params.get("algorithms", ("greedy", "proposal")))
    deltas = tuple(params["deltas"])
    metrics: Dict[str, object] = {}
    all_rows: List[dict] = []
    docs: List[dict] = []
    total_wall = 0.0
    hits = lookups = 0
    for delta in deltas:
        grid = GridSpec(algorithms=algorithms, deltas=(delta,))
        median, result = ctx.time(partial(run_sweep, grid, **ctx.sweep_opts()))
        metrics[f"wall_s_d{delta}"] = _round6(median)
        total_wall += median
        all_rows.extend(result.rows)
        docs.append(result.trace)
        hits += result.cache.hits
        lookups += result.cache.lookups
    metrics["wall_s"] = _round6(total_wall)
    metrics["cells"] = len(all_rows)
    metrics["refuted"] = _refuted(all_rows)
    metrics["rows_sha256"] = _rows_sha256(
        sorted(all_rows, key=lambda row: row.get("key", ""))
    )
    metrics["cache_hit_rate"] = _round6(hits / lookups if lookups else 0.0)
    metrics["rows_per_s"] = _round6(len(all_rows) / total_wall) if total_wall > 0 else None
    return metrics, document_profile(*docs)[:_PROFILE_TOP]


def _run_worker_scaling(params: Dict, ctx: BenchContext) -> Tuple[Dict, List[dict]]:
    """The same grid over increasing worker counts: byte-identity + speedup."""
    from ...engine import GridSpec, run_sweep

    grid = GridSpec(
        algorithms=tuple(params.get("algorithms", ("greedy", "proposal"))),
        deltas=tuple(params["deltas"]),
    )
    workers = tuple(params["workers"])
    metrics: Dict[str, object] = {}
    fingerprints: List[str] = []
    walls: Dict[int, float] = {}
    docs: List[dict] = []
    for count in workers:
        median, result = ctx.time(
            partial(run_sweep, grid, workers=count, **ctx.sweep_opts("workers"))
        )
        walls[count] = median
        label = "serial" if count <= 1 else f"w{count}"
        metrics[f"wall_s_{label}"] = _round6(median)
        fingerprints.append(_rows_sha256(result.rows))
        docs.append(result.trace)
        metrics["cells"] = len(result.rows)
    metrics["rows_match"] = int(len(set(fingerprints)) == 1)
    metrics["rows_sha256"] = fingerprints[0]
    serial = min(workers)
    widest = max(workers)
    if walls.get(widest):
        metrics["speedup"] = _round6(walls[serial] / walls[widest])
    return metrics, document_profile(*docs)[:_PROFILE_TOP]


def _run_cache_scaling(params: Dict, ctx: BenchContext) -> Tuple[Dict, List[dict]]:
    """Cold vs warm sweeps against a fresh disk tier: hit-rate scaling."""
    from ...engine import GridSpec, run_sweep

    grid = GridSpec(
        algorithms=tuple(params.get("algorithms", ("greedy", "proposal"))),
        deltas=tuple(params["deltas"]),
    )
    colds: List[float] = []
    warms: List[float] = []
    cold_result = warm_result = None
    # cold/warm pairs need a fresh disk tier per iteration: a plain
    # ctx.time() loop would leave every run after the first warm
    for iteration in range(ctx.warmup + max(1, ctx.repeats)):
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tier:
            opts = ctx.sweep_opts("cache_dir")
            cold_s, cold_result = ctx.time_once(
                partial(run_sweep, grid, cache_dir=tier, **opts)
            )
            warm_s, warm_result = ctx.time_once(
                partial(run_sweep, grid, cache_dir=tier, **opts)
            )
            if iteration >= ctx.warmup:
                colds.append(cold_s)
                warms.append(warm_s)
    wall_cold = statistics.median(colds)
    wall_warm = statistics.median(warms)
    metrics: Dict[str, object] = {
        "wall_s_cold": _round6(wall_cold),
        "wall_s_warm": _round6(wall_warm),
        "cold_hit_rate": _round6(cold_result.cache.hit_rate),
        "warm_hit_rate": _round6(warm_result.cache.hit_rate),
        "lookups": cold_result.cache.lookups,
        "cells": len(cold_result.rows),
        "rows_sha256": _rows_sha256(cold_result.rows),
    }
    if wall_warm > 0:
        metrics["warm_speedup"] = _round6(wall_cold / wall_warm)
    return metrics, document_profile(cold_result.trace, warm_result.trace)[:_PROFILE_TOP]


def _run_canonical_microbench(params: Dict, ctx: BenchContext) -> Tuple[Dict, List[dict]]:
    """Canonicalise every root of a fixed loopy-tree batch: the isolated
    hot path of every ball-isomorphism check, without the sweep around it.

    Each timed pass starts from a cold shape-plan cache (the sweep-scale
    benches measure the warm steady state; this one measures the build).
    A final untimed warm pass pins the plan cache's recognition rate.
    """
    from ...graphs.families import random_loopy_tree
    from ...graphs.isomorphism import canonical_form_of
    from ...graphs.soa import plan_hit_count, reset_plan_cache

    nodes = int(params.get("nodes", 24))
    loops = int(params.get("loops", 2))
    seeds = tuple(params.get("seeds", range(8)))
    graphs = [random_loopy_tree(nodes, loops, seed=seed) for seed in seeds]

    def canonicalise_batch() -> List[tuple]:
        reset_plan_cache()
        return [canonical_form_of(g, v) for g in graphs for v in g.nodes()]

    median, forms = ctx.time(canonicalise_batch)
    # warm repeat on the plan cache the last timed pass left behind: every
    # root shape must now resolve without rebuilding its form
    before = plan_hit_count()
    warm_forms = [canonical_form_of(g, v) for g in graphs for v in g.nodes()]
    warm_hits = plan_hit_count() - before
    assert warm_forms == forms
    digest = hashlib.sha256(repr(forms).encode("utf-8")).hexdigest()
    metrics: Dict[str, object] = {
        "wall_s": _round6(median),
        "forms": len(forms),
        "forms_sha256": digest,
        "warm_plan_hit_rate": _round6(warm_hits / len(forms)) if forms else None,
        "forms_per_s": _round6(len(forms) / median) if median > 0 else None,
    }
    return metrics, []


#: experiment kind -> runner; suites reference kinds, never functions
RUNNERS: Dict[str, Callable[[Dict, BenchContext], Tuple[Dict, List[dict]]]] = {
    "delta-scaling": _run_delta_scaling,
    "worker-scaling": _run_worker_scaling,
    "cache-scaling": _run_cache_scaling,
    "canonical-microbench": _run_canonical_microbench,
}


def run_experiment(experiment, ctx: BenchContext) -> Tuple[Dict, List[dict]]:
    """Run one experiment declaration; returns ``(metrics, profile)``."""
    try:
        runner = RUNNERS[experiment.kind]
    except KeyError:
        raise ValueError(
            f"experiment {experiment.name!r} declares unknown kind "
            f"{experiment.kind!r}; registered: {', '.join(sorted(RUNNERS))}"
        ) from None
    return runner(dict(experiment.params), ctx)


def run_suite(
    suite: Union[str, Suite],
    *,
    repeats: int = 3,
    warmup: int = 1,
    clock: Optional[Callable[[], float]] = None,
    commit: Optional[str] = None,
    engine_opts: Optional[Dict[str, object]] = None,
) -> List[dict]:
    """Run every experiment of ``suite``; returns the trajectory rows.

    ``engine_opts`` forwards execution-control keywords (``backend=``,
    ``cell_timeout=``, ...) to every sweep the runners launch; see
    :class:`BenchContext`.  Rows are *not* persisted here — the CLI owns
    the append so ``--check`` and ``--dry-run`` can run without touching
    the committed history.
    """
    from ...engine.cache import ENV_CACHE_DIR

    if isinstance(suite, str):
        suite = suite_named(suite)
    ctx = BenchContext(
        repeats=repeats,
        warmup=warmup,
        clock=clock if clock is not None else time.perf_counter,
        engine_opts=dict(engine_opts) if engine_opts else {},
    )
    commit = commit if commit is not None else current_commit()
    # an ambient shared cache would warm the timed sweeps unpredictably
    ambient_cache = os.environ.pop(ENV_CACHE_DIR, None)
    rows: List[dict] = []
    try:
        for experiment in suite.experiments:
            metrics, profile = run_experiment(experiment, ctx)
            rows.append(
                make_row(
                    suite=suite.name,
                    experiment=experiment.name,
                    commit=commit,
                    metrics=metrics,
                    profile=[
                        {
                            "name": row["name"],
                            "calls": row["calls"],
                            "self": _round6(row["self"]),
                            "total": _round6(row["total"]),
                        }
                        for row in profile
                    ],
                )
            )
    finally:
        if ambient_cache is not None:
            os.environ[ENV_CACHE_DIR] = ambient_cache
    return rows
