"""Centralised (sequential) baselines for matchings.

Used as references in tests and benches: the distributed algorithms must
produce solutions with the same *properties* (feasibility, maximality) as
these trivially correct sequential counterparts, and the classical
"maximal FM is a 1/2-approximation" bound is validated against them.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..graphs.multigraph import ECGraph
from .fm import FractionalMatching, ONE, ZERO

Node = Hashable
EdgeId = int

__all__ = ["greedy_maximal_fm", "greedy_maximal_matching", "matching_as_fm"]


def greedy_maximal_fm(g: ECGraph, order: Optional[Iterable[EdgeId]] = None) -> FractionalMatching:
    """Sequential greedy maximal FM: process edges, assign ``min`` of residuals.

    Every processed edge leaves one endpoint saturated (or already had one),
    so the result is maximal; it is feasible because assignments never exceed
    residual capacity.  ``order`` customises the processing order (edge ids);
    default is increasing edge id.
    """
    residual: Dict[Node, Fraction] = {v: ONE for v in g.nodes()}
    weights: Dict[EdgeId, Fraction] = {}
    ids = list(order) if order is not None else sorted(e.eid for e in g.edges())
    for eid in ids:
        e = g.edge(eid)
        if e.is_loop:
            w = residual[e.u]
            weights[eid] = w
            residual[e.u] -= w
        else:
            w = min(residual[e.u], residual[e.v])
            weights[eid] = w
            residual[e.u] -= w
            residual[e.v] -= w
    return FractionalMatching(graph=g, weights=weights)


def greedy_maximal_matching(g: ECGraph, order: Optional[Iterable[EdgeId]] = None) -> Set[EdgeId]:
    """Sequential greedy maximal (integral) matching on the non-loop edges."""
    matched: Set[Node] = set()
    chosen: Set[EdgeId] = set()
    ids = list(order) if order is not None else sorted(e.eid for e in g.edges())
    for eid in ids:
        e = g.edge(eid)
        if e.is_loop:
            continue
        if e.u not in matched and e.v not in matched:
            chosen.add(eid)
            matched.add(e.u)
            matched.add(e.v)
    return chosen


def matching_as_fm(g: ECGraph, matching: Set[EdgeId]) -> FractionalMatching:
    """View an integral matching as a 0/1 fractional matching."""
    return FractionalMatching(graph=g, weights={eid: ONE for eid in matching})
