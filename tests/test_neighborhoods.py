"""Tests for tau_t extraction (repro.graphs.neighborhoods)."""

from __future__ import annotations

import pytest

from repro.graphs.families import path_graph, single_node_with_loops, star_graph
from repro.graphs.multigraph import ECGraph
from repro.graphs.neighborhoods import ball


class TestRadiusZero:
    def test_tau0_is_bare_node(self):
        """Paper Section 4.2: loops are at distance 1, so tau_0 has no edges."""
        g = single_node_with_loops(4)
        b = ball(g, 0, 0)
        assert b.graph.num_nodes() == 1
        assert b.graph.num_edges() == 0

    def test_tau0_on_path(self):
        g = path_graph(3)
        b = ball(g, 1, 0)
        assert b.graph.nodes() == [1]
        assert b.graph.num_edges() == 0


class TestEdgeDistanceRule:
    def test_tau1_includes_incident_edges_and_loops(self):
        g = single_node_with_loops(3)
        b = ball(g, 0, 1)
        assert b.graph.num_edges() == 3

    def test_tau1_on_star_includes_all_spokes(self):
        g = star_graph(4)
        b = ball(g, 0, 1)
        assert b.graph.num_nodes() == 5
        assert b.graph.num_edges() == 4

    def test_leaf_tau1_excludes_far_edges(self):
        g = star_graph(4)
        b = ball(g, 1, 1)  # a leaf: sees centre and its own spoke only
        assert set(b.graph.nodes()) == {0, 1}
        assert b.graph.num_edges() == 1

    def test_boundary_nodes_carry_no_extra_edges(self):
        """An edge between two distance-t nodes has distance t+1: excluded."""
        g = path_graph(5)  # 0-1-2-3-4
        b = ball(g, 0, 2)
        assert set(b.graph.nodes()) == {0, 1, 2}
        # edge {2,3} has distance 3 from node 0 -> not included
        assert b.graph.num_edges() == 2

    def test_loop_at_boundary_node_excluded(self):
        g = ECGraph()
        g.add_edge(0, 1, 1)
        g.add_edge(1, 1, 2)  # loop at the distance-1 node
        b = ball(g, 0, 1)
        # the loop has distance 2 from node 0
        assert b.graph.num_edges() == 1
        b2 = ball(g, 0, 2)
        assert b2.graph.num_edges() == 2


class TestMetadata:
    def test_distances_recorded(self):
        g = path_graph(4)
        b = ball(g, 0, 2)
        assert b.distances == {0: 0, 1: 1, 2: 2}
        assert b.root == 0 and b.radius == 2

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            ball(path_graph(2), 0, -1)

    def test_ball_preserves_edge_ids(self):
        g = path_graph(4)
        b = ball(g, 1, 1)
        for e in b.graph.edges():
            orig = g.edge(e.eid)
            assert orig.color == e.color
