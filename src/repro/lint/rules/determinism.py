"""``determinism`` — no ambient randomness outside declared modules.

The lower-bound machinery quantifies over *deterministic* algorithms; the
randomized story (paper, Appendix B) is reproduced by making randomness an
explicit input — a tape injected through the network globals, or an
``rng: random.Random`` parameter seeded by the caller.  Hidden entropy
(the global ``random`` state, ``numpy.random``, wall-clock time,
``os.urandom``, ``secrets``) would make runs unreproducible and would let
an "anonymous" algorithm break symmetry invisibly.

Allowed everywhere: constructing a *seeded* ``random.Random(seed)`` and
passing it around, and annotations mentioning ``random.Random``.  Flagged
outside modules declared randomized (config list or a ``# repro:
randomized`` marker line): any other attribute of the ``random`` module
(the ambient global generator), unseeded ``random.Random()``,
``random.SystemRandom``, any use of ``numpy.random`` / ``time`` /
``secrets``, and ``os.urandom``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from ..engine import Finding, ModuleUnderLint

RULE_ID = "determinism"

#: attributes of ``random`` that are fine to reference: the injectable
#: generator class itself.
_RANDOM_OK_ATTRS = {"Random"}
_FORBIDDEN_FROM_IMPORTS = {
    "random": lambda name: name not in _RANDOM_OK_ATTRS,
    "numpy.random": lambda name: True,
    "numpy": lambda name: name == "random",
    "time": lambda name: True,
    "secrets": lambda name: True,
    "os": lambda name: name == "urandom",
}

#: modules whose import means worker processes/threads — scheduling order is
#: nondeterministic, so only sanctioned pool modules may touch them.
_WORKER_MODULES = ("multiprocessing", "concurrent.futures", "threading")


def _is_worker_module(name: str) -> bool:
    return any(name == m or name.startswith(m + ".") for m in _WORKER_MODULES)


def _alias_map(tree: ast.AST) -> Dict[str, str]:
    """Local name -> canonical module for every ``import x [as y]``."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
    return aliases


def check(mod: ModuleUnderLint) -> Iterator[Finding]:
    """Flag ambient-randomness use in modules not declared randomized.

    Modules sanctioned as clock readers (``LintConfig.clock_modules`` or a
    ``# repro: clock`` marker — currently only the observability tracer)
    are exempt from the ``time`` checks alone; modules sanctioned as worker
    pools (``LintConfig.worker_modules`` or ``# repro: workers`` — the
    experiment engine's sharder) are exempt from the worker-pool import
    checks alone.  Every other determinism check still applies to both.
    """
    if mod.declared_randomized:
        return
    clock_sanctioned = mod.declared_clock
    workers_sanctioned = mod.declared_workers
    aliases = _alias_map(mod.tree)

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import) and not workers_sanctioned:
            for alias in node.names:
                if _is_worker_module(alias.name):
                    yield mod.finding(
                        node,
                        RULE_ID,
                        f"'import {alias.name}' spawns workers with "
                        f"nondeterministic scheduling; only sanctioned pool "
                        f"modules may (declare '# repro: workers')",
                    )
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if _is_worker_module(module) and not workers_sanctioned:
                yield mod.finding(
                    node,
                    RULE_ID,
                    f"'from {module} import ...' spawns workers with "
                    f"nondeterministic scheduling; only sanctioned pool "
                    f"modules may (declare '# repro: workers')",
                )
                continue
            verdict = _FORBIDDEN_FROM_IMPORTS.get(module)
            if verdict is None:
                continue
            if module == "time" and clock_sanctioned:
                continue
            for alias in node.names:
                if verdict(alias.name):
                    yield mod.finding(
                        node,
                        RULE_ID,
                        f"'from {module} import {alias.name}' injects ambient "
                        f"entropy; pass a seeded random.Random (or declare the "
                        f"module '# repro: randomized')",
                    )
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            canonical = aliases.get(node.value.id)
            if canonical is None:
                continue
            if canonical == "random" and node.attr not in _RANDOM_OK_ATTRS:
                yield mod.finding(
                    node,
                    RULE_ID,
                    f"ambient randomness 'random.{node.attr}' (global generator); "
                    f"use an injected seeded random.Random",
                )
            elif canonical in ("numpy", "numpy.random") and (
                canonical == "numpy.random" or node.attr == "random"
            ):
                yield mod.finding(
                    node, RULE_ID, "numpy.random is ambient entropy; use a seeded generator"
                )
            elif canonical == "time" and not clock_sanctioned:
                yield mod.finding(
                    node,
                    RULE_ID,
                    f"'time.{node.attr}' makes runs time-dependent; results must "
                    f"be a function of the input alone",
                )
            elif canonical == "secrets":
                yield mod.finding(node, RULE_ID, "'secrets' draws OS entropy; not reproducible")
            elif canonical == "os" and node.attr == "urandom":
                yield mod.finding(node, RULE_ID, "os.urandom draws OS entropy; not reproducible")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and aliases.get(func.value.id) == "random"
                and func.attr == "Random"
                and not node.args
                and not node.keywords
            ):
                yield mod.finding(
                    node,
                    RULE_ID,
                    "unseeded random.Random() is OS-seeded; pass an explicit seed",
                )
