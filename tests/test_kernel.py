"""Tests for the immutable, digest-addressed graph kernel.

Covers the contract every other layer now leans on: incremental digests
agree with from-scratch rebuilds, JSON round trips preserve digests,
frozen kernels refuse mutation, builder forks share structure instead of
copying it, and the engine's cache keys (kernel rooted digests) keep
parallel sweeps byte-identical to serial ones.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.cache import graph_digest
from repro.engine.grid import GridSpec
from repro.engine.pool import run_sweep
from repro.graphs.digraph import POGraph
from repro.graphs.families import random_bounded_degree_graph, random_loopy_tree
from repro.graphs.kernel import (
    FrozenKernelError,
    GraphBuilder,
    GraphKernel,
    ImproperColoringError,
)
from repro.graphs.multigraph import ECGraph
from repro.graphs.neighborhoods import ball
from repro.graphs.ports import po_double_from_ec
from repro.graphs.serialize import GRAPH_FORMAT_V1, from_json, to_json

seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=2, max_value=8)


def rebuild_digest(g: ECGraph) -> str:
    """Digest of a from-scratch rebuild — the incremental path's oracle."""
    fresh = ECGraph()
    for v in g.nodes():
        fresh.add_node(v)
    for e in g.edges():
        fresh.add_edge(e.u, e.v, e.color, eid=e.eid)
    return fresh.digest


class TestDigest:
    @given(seeds, sizes)
    @settings(max_examples=30, deadline=None)
    def test_incremental_digest_matches_rebuild(self, seed, n):
        g = random_loopy_tree(n, 2, seed=seed)
        assert g.digest == rebuild_digest(g)

    @given(seeds, sizes)
    @settings(max_examples=30, deadline=None)
    def test_digest_is_insertion_order_independent(self, seed, n):
        g = random_loopy_tree(n, 1, seed=seed)
        reordered = ECGraph()
        for v in reversed(g.nodes()):
            reordered.add_node(v)
        for e in reversed(g.edges()):
            reordered.add_edge(e.u, e.v, e.color)
        assert reordered.digest == g.digest

    @given(seeds, sizes)
    @settings(max_examples=30, deadline=None)
    def test_remove_then_readd_restores_digest(self, seed, n):
        g = random_loopy_tree(n, 1, seed=seed)
        before = g.digest
        e = g.edges()[seed % g.num_edges()]
        removed = g.remove_edge(e.eid)
        assert g.digest != before
        g.add_edge(removed.u, removed.v, removed.color)
        assert g.digest == before

    def test_digest_excludes_edge_ids(self):
        g1, g2 = ECGraph(), ECGraph()
        g1.add_edge("a", "b", 1, eid=0)
        g2.add_edge("a", "b", 1, eid=77)
        assert g1.digest == g2.digest

    def test_rooted_digest_distinguishes_roots(self):
        g = ECGraph()
        g.add_edge("a", "b", 1)
        assert g.rooted_digest("a") != g.rooted_digest("b")

    @given(seeds, sizes)
    @settings(max_examples=20, deadline=None)
    def test_engine_graph_digest_delegates_to_kernel(self, seed, n):
        g = random_loopy_tree(n, 1, seed=seed)
        root = g.nodes()[seed % g.num_nodes()]
        assert graph_digest(g, root) == g.kernel.rooted_digest(root)

    def test_directedness_enters_the_digest(self):
        ec, po = ECGraph(), POGraph()
        ec.add_edge("a", "b", 1)
        po.add_edge("a", "b", 1)
        assert ec.digest != po.digest


class TestFrozenKernel:
    def test_attribute_assignment_raises(self):
        g = ECGraph()
        g.add_edge("a", "b", 1)
        kernel = g.kernel
        with pytest.raises(FrozenKernelError):
            kernel._slots = {}
        with pytest.raises(FrozenKernelError):
            kernel.anything = 1
        with pytest.raises(FrozenKernelError):
            del kernel._edges

    def test_builder_mutation_never_reaches_the_kernel(self):
        g = random_loopy_tree(5, 2, seed=3)
        kernel = g.kernel
        digest = kernel.digest
        n, m = kernel.num_nodes(), kernel.num_edges()
        g.remove_edge(g.edges()[0].eid)
        g.add_edge("fresh1", "fresh2", 999)
        assert kernel.digest == digest
        assert (kernel.num_nodes(), kernel.num_edges()) == (n, m)
        kernel.validate()

    def test_freeze_rebase_keeps_builder_usable(self):
        b = GraphBuilder(directed=False)
        b.add_edge("a", "b", 1)
        k1 = b.freeze()
        b.add_edge("b", "c", 2)
        k2 = b.freeze()
        assert k1.num_edges() == 1
        assert k2.num_edges() == 2
        assert k1.digest != k2.digest

    def test_improper_insert_rejected_by_builder(self):
        b = GraphBuilder(directed=False)
        b.add_edge("a", "b", 1)
        with pytest.raises(ImproperColoringError):
            b.add_edge("a", "c", 1)


class TestStructuralSharing:
    def test_fork_shares_all_untouched_slot_maps(self):
        g = random_bounded_degree_graph(20, 4, seed=11)
        h = g.fork()
        e = next(e for e in h.edges() if not e.is_loop)
        h.remove_edge(e.eid)
        shared = g.kernel.shared_slot_maps(h.kernel)
        assert shared == g.num_nodes() - 2  # only the two endpoints were cloned

    def test_fork_shares_surviving_edge_records(self):
        g = random_loopy_tree(6, 2, seed=5)
        h = g.fork()
        dropped = h.edges()[0].eid
        h.remove_edge(dropped)
        gk, hk = g.kernel, h.kernel
        for e in hk.edges():
            assert gk.edge(e.eid) is e  # identity, not equality

    def test_fork_allocates_proportional_to_touches(self):
        g = random_bounded_degree_graph(30, 4, seed=7)
        kernel = g.kernel
        b = kernel.builder()
        e = next(e for e in b.edges() if not e.is_loop)
        b.remove_edge(e.eid)
        assert b.allocated_nodes == 0
        assert b.allocated_edges == 0
        b.add_edge(e.u, e.v, e.color)
        assert b.allocated_edges == 1

    def test_double_reuses_source_untouched(self):
        g = random_loopy_tree(5, 1, seed=9)
        before = g.digest
        b = GraphBuilder(directed=False)
        b.double(g, tags=(0, 1))
        assert g.digest == before
        doubled = b.freeze()
        assert doubled.num_nodes() == 2 * g.num_nodes()
        assert doubled.num_edges() == 2 * g.num_edges()
        doubled.validate()


class TestJsonRoundTrips:
    @given(seeds, sizes)
    @settings(max_examples=25, deadline=None)
    def test_ec_roundtrip_preserves_digest(self, seed, n):
        g = random_loopy_tree(n, 2, seed=seed)
        back = from_json(to_json(g))
        assert isinstance(back, ECGraph)
        assert back.digest == g.digest
        assert [e.eid for e in back.edges()] == [e.eid for e in g.edges()]

    @given(seeds, sizes)
    @settings(max_examples=25, deadline=None)
    def test_po_roundtrip_preserves_digest(self, seed, n):
        po = po_double_from_ec(random_loopy_tree(n, 1, seed=seed))
        back = from_json(to_json(po))
        assert isinstance(back, POGraph)
        assert back.digest == po.digest

    @given(seeds, sizes)
    @settings(max_examples=25, deadline=None)
    def test_kernel_roundtrip_preserves_digest(self, seed, n):
        kernel = random_loopy_tree(n, 1, seed=seed).kernel
        back = from_json(to_json(kernel))
        assert isinstance(back, GraphKernel)
        assert back.digest == kernel.digest

    @given(seeds, sizes, st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_ball_roundtrip(self, seed, n, radius):
        g = random_loopy_tree(n, 1, seed=seed)
        b = ball(g, g.nodes()[seed % g.num_nodes()], radius)
        back = from_json(to_json(b))
        assert back.root == b.root
        assert back.radius == b.radius
        assert back.distances == b.distances
        assert back.digest == b.digest

    def test_legacy_v1_documents_still_read(self):
        g = ECGraph()
        g.add_edge(("x", 0), ("x", 1), 2)
        payload = json.loads(to_json(g))
        payload["format"] = GRAPH_FORMAT_V1
        del payload["kind"]
        del payload["directed"]
        back = from_json(json.dumps(payload))
        assert isinstance(back, ECGraph)
        assert back.digest == g.digest


class TestSweepKeying:
    def test_parallel_sweep_byte_identical_under_kernel_keys(self, tmp_path):
        grid = GridSpec(algorithms=("greedy",), deltas=(3, 4))
        serial = run_sweep(grid, workers=0, cache_dir=tmp_path / "serial")
        parallel = run_sweep(grid, workers=2, cache_dir=tmp_path / "parallel")
        assert json.dumps(serial.rows, sort_keys=True) == json.dumps(
            parallel.rows, sort_keys=True
        )
        assert serial.cache.hits > 0
        assert parallel.cache.hits > 0

    def test_disk_entries_are_keyed_by_rooted_kernel_digest(self, tmp_path):
        grid = GridSpec(algorithms=("greedy",), deltas=(3,))
        run_sweep(grid, workers=0, cache_dir=tmp_path)
        keys = {p.stem for p in tmp_path.glob("*.json")}
        assert keys  # something was persisted
        # every key is a rooted kernel digest: 64 lowercase hex chars
        assert all(len(k) == 64 and set(k) <= set("0123456789abcdef") for k in keys)
