"""Text renderers for bench runs, the trajectory dashboard, and the gate.

Everything here is a pure string function over rows and reports; the CLI
decides what to print and the JSON flag bypasses these entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .check import CheckReport, profile_attribution
from .trajectory import latest_baselines

__all__ = ["render_rows", "render_trajectory", "render_check"]

#: dashboard column order: the metrics people actually scan for, first
_PREFERRED_METRICS = (
    "wall_s",
    "wall_s_serial",
    "wall_s_cold",
    "wall_s_warm",
    "rows_per_s",
    "speedup",
    "warm_speedup",
    "cache_hit_rate",
    "cold_hit_rate",
    "warm_hit_rate",
    "cells",
    "refuted",
    "rows_match",
)


def _short(commit: str) -> str:
    return commit[:9] if commit else "?"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "-"
    text = str(value)
    return text[:12] if len(text) > 12 else text


def _columns(metric_names) -> List[str]:
    names = set(metric_names)
    ordered = [name for name in _PREFERRED_METRICS if name in names]
    ordered += sorted(name for name in names if name not in _PREFERRED_METRICS)
    return ordered[:8]


def render_rows(rows: List[dict]) -> str:
    """Table of one just-finished suite run, one section per experiment."""
    lines: List[str] = []
    for row in rows:
        lines.append(f"{row['experiment']}  (commit {_short(row.get('commit', ''))})")
        metrics = row.get("metrics", {})
        for name in _columns(metrics):
            lines.append(f"  {name:<18} {_fmt(metrics.get(name))}")
    return "\n".join(lines)


def render_trajectory(
    trajectory_rows: List[dict], suite: Optional[str] = None, last: int = 8
) -> str:
    """The dashboard: per-experiment trend over the last ``last`` commits.

    Each experiment gets a table (newest row last) with a ``Δwall`` column —
    the percent change of the experiment's primary wall metric vs the
    previous row — so a slow drift is as visible as a step regression.
    """
    if not trajectory_rows:
        return "trajectory is empty (run `repro bench` to record a first row)"
    by_experiment: Dict[str, List[dict]] = {}
    for row in trajectory_rows:
        if suite is not None and row.get("suite") != suite:
            continue
        by_experiment.setdefault(row["experiment"], []).append(row)
    if not by_experiment:
        return f"trajectory has no rows for suite {suite!r}"
    lines: List[str] = []
    for experiment in sorted(by_experiment):
        rows = by_experiment[experiment][-last:]
        columns = _columns(
            name for row in rows for name in row.get("metrics", {})
        )
        wall_metric = next(
            (name for name in columns if name.startswith("wall_s")), None
        )
        lines.append(f"== {experiment} ({len(by_experiment[experiment])} row(s)) ==")
        header = f"  {'commit':<10} " + " ".join(f"{name:>14}" for name in columns)
        if wall_metric:
            header += f" {'Δwall':>8}"
        lines.append(header)
        previous_wall = None
        for row in rows:
            metrics = row.get("metrics", {})
            line = f"  {_short(row.get('commit', '')):<10} " + " ".join(
                f"{_fmt(metrics.get(name)):>14}" for name in columns
            )
            if wall_metric:
                wall = metrics.get(wall_metric)
                if (
                    previous_wall
                    and isinstance(wall, (int, float))
                    and previous_wall > 0
                ):
                    line += f" {100.0 * (wall - previous_wall) / previous_wall:>+7.1f}%"
                else:
                    line += f" {'-':>8}"
                if isinstance(wall, (int, float)):
                    previous_wall = wall
            lines.append(line)
        lines.append("")
    return "\n".join(lines).rstrip()


def render_check(
    report: CheckReport,
    new_rows: Optional[List[dict]] = None,
    trajectory_rows: Optional[List[dict]] = None,
) -> str:
    """The gate's verdict, with self-time attribution per violated experiment."""
    lines: List[str] = []
    gated = [c for c in report.compared if not c.get("informational")]
    lines.append(
        f"bench --check [{report.suite}]: {len(report.violations)} violation(s) "
        f"across {len(gated)} gated comparison(s)"
    )
    for comparison in report.compared:
        status = {True: "ok", False: "FAIL", None: "skip"}[comparison["ok"]]
        note = " (informational)" if comparison.get("informational") else ""
        lines.append(
            f"  [{status:>4}] {comparison['experiment']}.{comparison['metric']}: "
            f"{_fmt(comparison['baseline'])} -> {_fmt(comparison['current'])}{note}"
        )
    for experiment in report.missing:
        lines.append(f"  [ new] {experiment}: no baseline row yet, passing vacuously")
    if report.violations and new_rows is not None:
        baselines = latest_baselines(trajectory_rows or [], suite=report.suite)
        current_by_name = {row["experiment"]: row for row in new_rows}
        for experiment in sorted({v.experiment for v in report.violations}):
            current = current_by_name.get(experiment)
            if current is None:
                continue
            attribution = profile_attribution(baselines.get(experiment), current)
            if not attribution:
                continue
            lines.append(f"  where {experiment} spent the extra time (self-time Δ):")
            for row in attribution:
                lines.append(
                    f"    {row['name']:<28} {row['self_delta']:>+10.4f}s "
                    f"({row['baseline_self']:.4f}s -> {row['self']:.4f}s, "
                    f"{row['baseline_calls']} -> {row['calls']} calls)"
                )
    return "\n".join(lines)
