"""``kernel-escape`` — nothing outside the kernel touches frozen internals.

A :class:`repro.graphs.kernel.GraphKernel` is the immutable,
digest-addressed substrate that every graph view, canonical-form cache
entry and network routing table shares by reference; its content digest is
the cache key for canonical forms and sweep shards.  Post-freeze mutation
of its backing slots (``_slots``, ``_edges``, ``_acc``, ``_next_eid``,
``_digest``) desynchronises digest from structure and poisons every cache
keyed by it — while still *looking* like an ordinary attribute write.

The v1 heuristic tracked the variable name ``kernel``; renaming the
variable (or laundering the kernel through a helper) defeated it.  This
rule instead consumes the ``kernel-mutation`` effect from the
interprocedural analysis, which recognises:

* stores/deletions into, and mutator calls on, objects rooted at a
  parameter or local that statically denotes a kernel (named ``kernel`` or
  annotated ``GraphKernel``) — through any number of helper layers, since
  the effect propagates up the call graph;
* stores/mutator calls reaching into the kernel's internal slot names on
  *any* non-``self`` root (``g.kernel._edges.pop(...)`` flags regardless
  of variable naming);
* ``setattr``/``object.__setattr__`` forging an internal slot by name.

Only :attr:`LintConfig.kernel_modules` (the kernel/builder implementation
itself, which owns pre-freeze construction) masks the effect.  Builders
mutate *their own* ``self`` state, which is never flagged — the rule is
about reaching into someone else's frozen kernel.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from ..engine import Finding

RULE_ID = "kernel-escape"


def check(project) -> Iterator[Finding]:
    """Flag post-freeze GraphKernel internal mutation outside the kernel."""
    analysis = project.effects
    seen: Set[Tuple[str, int, str]] = set()
    for qualname in sorted(analysis.functions):
        fx = analysis.functions[qualname]
        if fx.module in project.config.kernel_modules:
            continue
        if "kernel-mutation" not in fx.visible:
            continue
        mod = project.module_named(fx.module)
        if mod is None:
            continue
        for src in fx.sources.get("kernel-mutation", []):
            if src.kind == "call":
                message = (
                    f"'{fx.qualname}' passes a kernel into '{src.detail}', "
                    f"which mutates frozen GraphKernel internals; kernels are "
                    f"immutable after freeze() (builders own pre-freeze state)"
                )
            else:
                message = (
                    f"post-freeze mutation of GraphKernel internals in "
                    f"'{fx.qualname}' ({src.detail}); mutating a frozen "
                    f"kernel desynchronises its digest and poisons every "
                    f"cache keyed by it — build a new kernel via GraphBuilder"
                )
            key = (mod.path, src.line, message)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                path=mod.path, line=src.line, col=1, rule=RULE_ID, message=message
            )
