"""The append-only per-commit performance trajectory.

``BENCH_TRAJECTORY.jsonl`` holds one schema-versioned JSON row per line —
one row per (suite, experiment, commit) bench run, appended and never
rewritten, so the committed file is a monotone history the regression gate
and the dashboard both read.  Rows are written with sorted keys; the reader
is tolerant (unparsable lines and foreign schemas are skipped, never
fatal), mirroring the result store's damage policy.

Row shape::

    {"schema": 1, "suite": "smoke", "experiment": "sweep.delta_scaling",
     "commit": "<git sha or 'unknown'>", "metrics": {...},
     "profile": [{"name": ..., "calls": ..., "self": ..., "total": ...}],
     "env": {"python": "3.11.7"}}

This module reads no clocks; the commit id comes from ``git rev-parse``
(overridable with ``$REPRO_BENCH_COMMIT`` for hermetic environments).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "TRAJECTORY_SCHEMA_VERSION",
    "DEFAULT_TRAJECTORY_PATH",
    "current_commit",
    "default_env",
    "make_row",
    "append_rows",
    "read_rows",
    "latest_baselines",
]

TRAJECTORY_SCHEMA_VERSION = 1

#: repo-root trajectory file the CLI defaults to
DEFAULT_TRAJECTORY_PATH = "BENCH_TRAJECTORY.jsonl"

_COMMIT_ENV = "REPRO_BENCH_COMMIT"


def current_commit() -> str:
    """The commit id recorded on trajectory rows.

    ``$REPRO_BENCH_COMMIT`` wins when set; otherwise ``git rev-parse HEAD``;
    ``"unknown"`` when neither is available (e.g. a source tarball).
    """
    override = os.environ.get(_COMMIT_ENV)
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def default_env() -> Dict[str, str]:
    """The environment fingerprint stored on a row (informational only)."""
    return {
        "python": platform.python_version(),
        "platform": platform.system().lower(),
    }


def make_row(
    *,
    suite: str,
    experiment: str,
    commit: str,
    metrics: Dict,
    profile: Optional[List[dict]] = None,
    env: Optional[Dict[str, str]] = None,
) -> dict:
    """One schema-versioned trajectory row, JSON-ready."""
    return {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "suite": suite,
        "experiment": experiment,
        "commit": commit,
        "metrics": dict(metrics),
        "profile": list(profile) if profile else [],
        "env": dict(env) if env is not None else default_env(),
    }


def append_rows(path, rows: List[dict]) -> Path:
    """Append rows to the trajectory file (created on first write)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True, default=str) + "\n")
    return path


def read_rows(path) -> List[dict]:
    """Every readable trajectory row, in file (= chronological) order.

    Unparsable lines, non-dict payloads, and rows without an
    ``experiment`` are skipped silently — a damaged line must never take
    the whole history down.  Rows from *newer* schemas than this reader are
    kept (fields this reader knows keep their meaning; unknown fields ride
    along).
    """
    path = Path(path)
    if not path.exists():
        return []
    rows: List[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict) and row.get("experiment"):
            rows.append(row)
    return rows


def latest_baselines(
    rows: List[dict], suite: Optional[str] = None
) -> Dict[str, dict]:
    """Experiment name -> most recent row (file order, last wins).

    ``suite`` filters to rows recorded for that suite, so a smoke baseline
    is never compared against a full-suite run of the same experiment.
    """
    baselines: Dict[str, dict] = {}
    for row in rows:
        if suite is not None and row.get("suite") != suite:
            continue
        baselines[row["experiment"]] = row
    return baselines
