"""Tests for the EC multigraph substrate (repro.graphs.multigraph)."""

from __future__ import annotations

import pytest

from repro.graphs.multigraph import ECGraph, ImproperColoringError


def build_sample() -> ECGraph:
    g = ECGraph()
    g.add_edge("a", "b", 1)
    g.add_edge("b", "c", 2)
    g.add_edge("a", "a", 2)  # loop at a
    return g


class TestConstruction:
    def test_add_node_idempotent(self):
        g = ECGraph()
        g.add_node("v")
        g.add_node("v")
        assert g.nodes() == ["v"]

    def test_add_edge_assigns_ids(self):
        g = ECGraph()
        e1 = g.add_edge("a", "b", 1)
        e2 = g.add_edge("b", "c", 2)
        assert e1 != e2
        assert g.edge(e1).color == 1
        assert g.edge(e2).endpoints() == ("b", "c")

    def test_explicit_edge_id_respected(self):
        g = ECGraph()
        eid = g.add_edge("a", "b", 1, eid=42)
        assert eid == 42
        nxt = g.add_edge("b", "c", 2)
        assert nxt > 42

    def test_duplicate_edge_id_rejected(self):
        g = ECGraph()
        g.add_edge("a", "b", 1, eid=7)
        with pytest.raises(ValueError):
            g.add_edge("c", "d", 1, eid=7)

    def test_proper_coloring_enforced_at_endpoint(self):
        g = ECGraph()
        g.add_edge("a", "b", 1)
        with pytest.raises(ImproperColoringError):
            g.add_edge("a", "c", 1)

    def test_proper_coloring_enforced_for_loop(self):
        g = ECGraph()
        g.add_edge("a", "a", 1)
        with pytest.raises(ImproperColoringError):
            g.add_edge("a", "b", 1)

    def test_loop_occupies_single_slot(self):
        g = ECGraph()
        g.add_edge("a", "a", 3)
        assert g.degree("a") == 1
        assert g.incident_colors("a") == [3]


class TestDegreesAndLoops:
    def test_loop_counts_once(self):
        """EC convention (paper Section 3.5): a loop adds +1 to the degree."""
        g = build_sample()
        assert g.degree("a") == 2  # edge to b + one loop
        assert g.degree("b") == 2
        assert g.degree("c") == 1

    def test_max_degree(self):
        assert build_sample().max_degree() == 2
        assert ECGraph().max_degree() == 0

    def test_loops_at(self):
        g = build_sample()
        loops = g.loops_at("a")
        assert len(loops) == 1 and loops[0].color == 2
        assert g.loops_at("b") == []
        assert g.loop_count("a") == 1

    def test_neighbors_include_self_for_loop(self):
        g = build_sample()
        assert "a" in g.neighbors("a")
        assert set(g.neighbors("b")) == {"a", "c"}


class TestQueries:
    def test_edge_at(self):
        g = build_sample()
        assert g.edge_at("a", 1).other("a") == "b"
        assert g.edge_at("a", 2).is_loop
        assert g.edge_at("c", 1) is None

    def test_incident_edges_sorted_by_color(self):
        g = build_sample()
        colors = [e.color for e in g.incident_edges("a")]
        assert colors == sorted(colors)

    def test_colors(self):
        assert build_sample().colors() == [1, 2]

    def test_is_simple(self):
        g = build_sample()
        assert not g.is_simple()  # has a loop
        h = ECGraph()
        h.add_edge(0, 1, 1)
        h.add_edge(1, 2, 2)
        assert h.is_simple()

    def test_parallel_edges_not_simple(self):
        h = ECGraph()
        h.add_edge(0, 1, 1)
        h.add_edge(0, 1, 2)  # parallel, different colour: allowed but not simple
        assert not h.is_simple()

    def test_edge_other_raises_for_non_endpoint(self):
        g = build_sample()
        e = g.edge_at("a", 1)
        with pytest.raises(KeyError):
            e.other("c")

    def test_contains_iter_len(self):
        g = build_sample()
        assert "a" in g and "z" not in g
        assert sorted(g) == ["a", "b", "c"]
        assert len(g) == 3


class TestRemoval:
    def test_remove_edge_frees_slots(self):
        g = build_sample()
        e = g.edge_at("a", 1)
        g.remove_edge(e.eid)
        assert g.edge_at("a", 1) is None
        assert g.edge_at("b", 1) is None
        g.add_edge("a", "c", 1)  # slot reusable

    def test_remove_loop(self):
        g = build_sample()
        loop = g.loops_at("a")[0]
        g.remove_edge(loop.eid)
        assert g.degree("a") == 1
        g.validate()

    def test_remove_node_removes_incident(self):
        g = build_sample()
        g.remove_node("b")
        assert not g.has_node("b")
        assert g.degree("a") == 1  # only the loop remains
        g.validate()


class TestTraversal:
    def test_bfs_distances(self):
        g = build_sample()
        d = g.bfs_distances("a")
        assert d == {"a": 0, "b": 1, "c": 2}

    def test_bfs_max_dist(self):
        g = build_sample()
        d = g.bfs_distances("a", max_dist=1)
        assert d == {"a": 0, "b": 1}

    def test_loops_do_not_shorten_distances(self):
        g = ECGraph()
        g.add_edge(0, 0, 1)
        g.add_edge(0, 1, 2)
        assert g.bfs_distances(0)[1] == 1

    def test_connected_components(self):
        g = build_sample()
        g.add_edge("x", "y", 1)
        comps = g.connected_components()
        assert len(comps) == 2
        assert not g.is_connected()

    def test_tree_ignoring_loops(self):
        g = build_sample()
        assert g.is_tree_ignoring_loops()
        g.add_edge("a", "c", 3)  # creates a cycle
        assert not g.is_tree_ignoring_loops()


class TestCopyCombine:
    def test_copy_preserves_ids_and_structure(self):
        g = build_sample()
        h = g.copy()
        assert sorted(h.nodes()) == sorted(g.nodes())
        assert {(e.eid, e.color) for e in h.edges()} == {(e.eid, e.color) for e in g.edges()}
        h.remove_node("a")
        assert g.has_node("a")  # deep copy

    def test_relabel(self):
        g = build_sample()
        h = g.relabel({"a": "A"})
        assert h.has_node("A") and not h.has_node("a")
        assert h.edge_at("A", 2).is_loop

    def test_relabel_rejects_collision(self):
        g = build_sample()
        with pytest.raises(ValueError):
            g.relabel({"a": "b"})

    def test_disjoint_union(self):
        g = build_sample()
        u = g.disjoint_union(g)
        assert u.num_nodes() == 2 * g.num_nodes()
        assert u.num_edges() == 2 * g.num_edges()
        assert u.has_node((0, "a")) and u.has_node((1, "a"))

    def test_induced_subgraph(self):
        g = build_sample()
        s = g.induced_subgraph(["a", "b"])
        assert s.num_nodes() == 2
        assert s.num_edges() == 2  # a-b edge + loop at a
        with pytest.raises(KeyError):
            g.induced_subgraph(["nope"])

    def test_validate_passes_on_consistent_graph(self):
        build_sample().validate()
