"""Tests for identifier machinery (repro.local.identifiers)."""

from __future__ import annotations

import pytest

from repro.local.identifiers import (
    assign_ids_respecting_order,
    order_respecting_assignments,
    relabel_single_node,
    sparse_subset,
)


class TestAssign:
    def test_order_respected(self):
        phi = assign_ids_respecting_order(["b", "a", "c"], [30, 10, 20])
        assert phi == {"b": 10, "a": 20, "c": 30}

    def test_pool_too_small(self):
        with pytest.raises(ValueError):
            assign_ids_respecting_order(["a", "b"], [1])


class TestSparse:
    def test_every_mplus1th(self):
        ids = list(range(100))
        j = sparse_subset(ids, m=9)
        assert j == list(range(0, 100, 10))

    def test_gap_guarantee(self):
        """Between consecutive kept identifiers there are >= m dropped ones
        (the Lemma 7 interpolation slack)."""
        ids = [3, 7, 9, 14, 20, 22, 31, 40, 41, 55]
        m = 2
        kept = sparse_subset(ids, m)
        for a, b in zip(kept, kept[1:]):
            between = [i for i in ids if a < i < b]
            assert len(between) >= m

    def test_m_zero_keeps_all(self):
        assert sparse_subset([5, 1, 3], 0) == [1, 3, 5]


class TestEnumerate:
    def test_assignments_are_order_respecting(self):
        nodes = ["x", "y"]
        for phi in order_respecting_assignments(nodes, range(10), limit=20):
            assert phi["x"] < phi["y"]

    def test_limit_respected(self):
        out = list(order_respecting_assignments(["a"], range(100), limit=7))
        assert len(out) == 7

    def test_distinct_assignments(self):
        out = list(order_respecting_assignments(["a", "b"], range(6), limit=100))
        assert len(out) == 15  # C(6, 2)
        assert len({tuple(sorted(p.items())) for p in out}) == 15


class TestRelabelSingle:
    def test_valid_move(self):
        nodes = ["a", "b", "c"]
        phi = {"a": 10, "b": 20, "c": 30}
        phi2 = relabel_single_node(phi, "b", 25, nodes)
        assert phi2["b"] == 25 and phi2["a"] == 10

    def test_order_break_rejected(self):
        nodes = ["a", "b", "c"]
        phi = {"a": 10, "b": 20, "c": 30}
        with pytest.raises(ValueError):
            relabel_single_node(phi, "b", 35, nodes)

    def test_collision_rejected(self):
        nodes = ["a", "b"]
        phi = {"a": 10, "b": 20}
        with pytest.raises(ValueError):
            relabel_single_node(phi, "b", 10, nodes)


class TestInterpolation:
    """Lemma 7's chain: assignments connected by single-node moves."""

    def _check_chain(self, chain, nodes):
        from repro.local.identifiers import interpolate_assignments

        for phi in chain:
            values = [phi[v] for v in nodes]
            assert all(a < b for a, b in zip(values, values[1:]))
        for a, b in zip(chain, chain[1:]):
            assert sum(1 for v in nodes if a[v] != b[v]) == 1

    def test_simple_chain(self):
        from repro.local.identifiers import interpolate_assignments

        nodes = ["a", "b", "c"]
        phi1 = {"a": 1, "b": 5, "c": 9}
        phi2 = {"a": 2, "b": 6, "c": 30}
        chain = interpolate_assignments(phi1, phi2, nodes)
        assert chain[0] == phi1 and chain[-1] == phi2
        self._check_chain(chain, nodes)

    def test_crossing_values(self):
        from repro.local.identifiers import interpolate_assignments

        nodes = ["a", "b", "c", "d"]
        phi1 = {"a": 10, "b": 20, "c": 30, "d": 40}
        phi2 = {"a": 1, "b": 2, "c": 3, "d": 4}
        chain = interpolate_assignments(phi1, phi2, nodes)
        assert chain[-1] == phi2
        self._check_chain(chain, nodes)

    def test_identical_assignments(self):
        from repro.local.identifiers import interpolate_assignments

        nodes = ["x", "y"]
        phi = {"x": 1, "y": 2}
        chain = interpolate_assignments(phi, dict(phi), nodes)
        assert chain == [phi]

    def test_non_monotone_rejected(self):
        import pytest
        from repro.local.identifiers import interpolate_assignments

        nodes = ["a", "b"]
        with pytest.raises(ValueError):
            interpolate_assignments({"a": 5, "b": 1}, {"a": 1, "b": 2}, nodes)

    def test_random_pairs(self):
        import random
        from repro.local.identifiers import interpolate_assignments

        rng = random.Random(3)
        nodes = list("abcdef")
        for _ in range(20):
            v1 = sorted(rng.sample(range(100), len(nodes)))
            v2 = sorted(rng.sample(range(100), len(nodes)))
            phi1 = dict(zip(nodes, v1))
            phi2 = dict(zip(nodes, v2))
            chain = interpolate_assignments(phi1, phi2, nodes)
            assert chain[-1] == phi2
            self._check_chain(chain, nodes)
