"""The stdlib HTTP/JSON front-end over :class:`~repro.service.jobs.SweepService`.

A deliberately small, dependency-free API in the spirit of the socket
backend's newline-JSON shard protocol: every request and response body is
one JSON document, every route lives under ``/v1/``.

====================================  =========================================
Route                                 Meaning
====================================  =========================================
``GET /v1/healthz``                   liveness + service stats
``GET /v1/stats``                     queue/job/tenant/cache accounting
``POST /v1/jobs``                     submit ``{"grid": {...}}``; tenant from
                                      the body's ``tenant`` or the
                                      ``X-Repro-Tenant`` header; ``202`` with
                                      the job document, ``429`` +
                                      ``Retry-After`` under backpressure
``GET /v1/jobs``                      list jobs (``?tenant=`` filters)
``GET /v1/jobs/<id>``                 one job document
``GET /v1/jobs/<id>/progress``        schema-v1 progress events
                                      (``?offset=N`` tails incrementally)
``GET /v1/jobs/<id>/rows``            finished rows (``409`` until ``done``)
``DELETE /v1/jobs/<id>``              cancel a queued or running job
====================================  =========================================

The server is a :class:`http.server.ThreadingHTTPServer` — one thread per
connection, all of them funnelling into the service's single lock — which
is why this module is a sanctioned worker module
(``LintConfig.worker_modules``).  See ``docs/service.md``.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .jobs import Backpressure, SweepService

__all__ = ["ServiceServer"]


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the shared :class:`SweepService`."""

    service: SweepService  # injected by ServiceServer via a subclass attribute
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging stays out of stdout; the JSON bodies are the record

    def _send(self, code: int, payload, headers: Optional[dict] = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, headers: Optional[dict] = None, **extra) -> None:
        self._send(code, {"error": message, **extra}, headers=headers)

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _route(self) -> Tuple[str, dict]:
        parsed = urlparse(self.path)
        query = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/") or "/", query

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        path, query = self._route()
        if path in ("/v1/healthz", "/v1/stats"):
            payload = self.service.stats()
            if path.endswith("healthz"):
                payload = {"ok": True, **payload}
            self._send(200, payload)
        elif path == "/v1/jobs":
            jobs = self.service.jobs(tenant=query.get("tenant"))
            self._send(200, {"jobs": [job.as_dict() for job in jobs]})
        elif path.startswith("/v1/jobs/"):
            self._get_job(path, query)
        else:
            self._error(404, f"no route {path}")

    def _get_job(self, path: str, query: dict) -> None:
        parts = path.split("/")[3:]  # after /v1/jobs/
        job = self.service.get(parts[0])
        if job is None:
            self._error(404, f"no job {parts[0]!r}")
        elif len(parts) == 1:
            self._send(200, job.as_dict())
        elif parts[1] == "progress":
            try:
                offset = int(query.get("offset", 0))
            except ValueError:
                self._error(400, "offset must be an integer")
                return
            self._send(200, self.service.progress(job.id, offset=offset))
        elif parts[1] == "rows":
            rows = self.service.rows(job.id)
            if rows is None:
                self._error(409, f"job {job.id} is {job.state}, not done", state=job.state)
            else:
                self._send(200, {"id": job.id, "cells": len(rows), "rows": rows})
        else:
            self._error(404, f"no route {path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        path, _ = self._route()
        if path != "/v1/jobs":
            self._error(404, f"no route {path}")
            return
        body = self._read_body()
        if body is None:
            self._error(400, "request body must be a JSON object")
            return
        tenant = body.get("tenant") or self.headers.get("X-Repro-Tenant")
        try:
            job = self.service.submit(
                body.get("grid") or {}, tenant=tenant, faults=body.get("faults")
            )
        except Backpressure as exc:
            self._error(
                429,
                exc.reason,
                headers={"Retry-After": str(max(1, math.ceil(exc.retry_after)))},
                retry_after=exc.retry_after,
            )
        except (ValueError, TypeError, KeyError) as exc:
            self._error(400, f"invalid submission: {exc}")
        else:
            self._send(202, job.as_dict())

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib dispatch name
        path, _ = self._route()
        parts = path.split("/")
        if len(parts) == 4 and path.startswith("/v1/jobs/"):
            job = self.service.get(parts[3])
            if job is None:
                self._error(404, f"no job {parts[3]!r}")
            elif self.service.cancel(job.id):
                self._send(202, job.as_dict())
            else:
                self._error(409, f"job {job.id} already {job.state}", state=job.state)
        else:
            self._error(404, f"no route {path}")


class ServiceServer:
    """Bind the job service to a listening socket.

    ``port=0`` picks a free port (tests); :meth:`start` serves from a
    background thread and returns, :meth:`serve_forever` blocks (the CLI
    path).  Either way :meth:`stop` shuts down the HTTP loop and then the
    service's workers.
    """

    def __init__(self, service: SweepService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        """Serve requests from a background thread (idempotent)."""
        self.service.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True, name="sweep-service-http"
            )
            self._thread.start()

    def serve_forever(self) -> None:
        """Blocking serve loop for ``repro serve-api``."""
        self.service.start()
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.stop()
