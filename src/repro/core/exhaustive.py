"""Brute-force model checking of the lower bound (independent confirmation).

The unfold-and-mix adversary refutes *given* algorithms.  This module
attacks the quantifier directly, for small parameters: a ``t``-time
EC-algorithm is nothing but a function from radius-``t`` views to
per-colour weights (paper, Eq. (1)), so over a finite *weight grid* the
space of all such algorithms is finite and can be searched exhaustively.

:func:`search_view_function` performs a backtracking search for **any**
view function that is simultaneously a valid maximal FM on every graph of
a given universe.  The constraints decompose per view and per view pair:

* feasibility is local to a view (a node's load is a function of its own
  view — sum of its announced weights);
* endpoint consistency couples the two endpoint views of each edge;
* maximality of an edge couples the same pair (one side's load must be 1).

If the search exhausts the space, **no** grid-valued ``t``-round algorithm
is correct on that universe, hence none is correct on all graphs of
maximum degree ``Delta`` — an impossibility proved by enumeration rather
than construction.  With :func:`one_round_universe` (all small
loop-subset graphs) the search shows no 1-round algorithm exists for any
``Delta >= 2``; for ``Delta = 3`` this exactly matches Theorem 1's
``> Delta - 2`` bound.  (A *found* function only means the chosen universe
does not refute radius ``t``; it is not an algorithm for all graphs.)
:func:`zero_round_impossibility` settles the ``t = 0`` case analytically
(a 0-round algorithm is a constant per colour; loopy one-node graphs
already clash), matching the paper's base-case intuition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from itertools import product
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from ..graphs.families import single_node_with_loops
from ..graphs.multigraph import ECGraph
from ..local.views import ec_view_tree

Node = Hashable
Color = Hashable
ViewKey = Tuple  # the view tree itself (hashable nested tuples)
WeightMap = Tuple[Tuple[Color, Fraction], ...]  # sorted (colour, weight) pairs

__all__ = [
    "SearchOutcome",
    "search_view_function",
    "half_integral_grid",
    "one_round_universe",
    "zero_round_impossibility",
]

ONE = Fraction(1)


@dataclass
class SearchOutcome:
    """Result of the exhaustive search.

    ``function`` maps each view (that occurs in the universe) to its
    ``{colour: weight}`` output when a valid algorithm exists; ``None``
    means the whole space was exhausted — an impossibility certificate for
    the given grid, radius and universe.  ``nodes_explored`` counts
    backtracking nodes (a measure of the search's work).
    """

    function: Optional[Dict[ViewKey, Dict[Color, Fraction]]]
    nodes_explored: int
    views: int
    candidates_total: int

    @property
    def impossible(self) -> bool:
        """Whether no grid-valued ``t``-round algorithm exists."""
        return self.function is None


def half_integral_grid(denominator: int = 2) -> List[Fraction]:
    """The weight grid ``{0, 1/d, 2/d, ..., 1}``.

    ``denominator = 2`` is the natural choice (a half-integral maximal FM
    always exists), ``6`` covers thirds and halves simultaneously.
    """
    return [Fraction(k, denominator) for k in range(denominator + 1)]


def _view_slots(view: ViewKey) -> Tuple[Color, ...]:
    """The incident colours visible at the root of a radius->=1 view."""
    return tuple(entry[0] for entry in view)


def search_view_function(
    universe: Sequence[ECGraph],
    t: int,
    grid: Sequence[Fraction],
    max_nodes: int = 2_000_000,
) -> SearchOutcome:
    """Search for a grid-valued ``t``-time EC algorithm valid on ``universe``.

    ``t`` must be at least 1 (a radius-0 view does not even reveal the
    incident colours; see :func:`zero_round_impossibility`).  Raises
    ``RuntimeError`` if the backtracking exceeds ``max_nodes`` — enlarge the
    budget or shrink the universe/grid rather than trusting a partial scan.
    """
    if t < 1:
        raise ValueError("use zero_round_impossibility for t = 0")
    grid = sorted({Fraction(w) for w in grid})
    if any(w < 0 or w > 1 for w in grid):
        raise ValueError("grid weights must lie in [0, 1]")

    # ---- collect views and the constraints among them -------------------
    views_of_graph: List[Dict[Node, ViewKey]] = []
    all_views: List[ViewKey] = []
    seen: Set[ViewKey] = set()
    for g in universe:
        per_node = {v: ec_view_tree(g, v, t) for v in g.nodes()}
        views_of_graph.append(per_node)
        for view in per_node.values():
            if view not in seen:
                seen.add(view)
                all_views.append(view)

    # edge constraints: (view_u, view_v, colour), deduplicated
    constraints: Set[Tuple[ViewKey, ViewKey, Color]] = set()
    for g, per_node in zip(universe, views_of_graph):
        for e in g.edges():
            vu, vv = per_node[e.u], per_node[e.v]
            key = (vu, vv, e.color) if repr(vu) <= repr(vv) else (vv, vu, e.color)
            constraints.add(key)

    # ---- candidate outputs per view (feasibility is local) --------------
    candidates: Dict[ViewKey, List[Dict[Color, Fraction]]] = {}
    for view in all_views:
        slots = _view_slots(view)
        options = []
        for combo in product(grid, repeat=len(slots)):
            if sum(combo, Fraction(0)) <= ONE:
                options.append(dict(zip(slots, combo)))
        candidates[view] = options
    candidates_total = sum(len(c) for c in candidates.values())

    # order views by how constrained they are (most constraints first)
    constraint_count: Dict[ViewKey, int] = {view: 0 for view in all_views}
    for (vu, vv, _) in constraints:
        constraint_count[vu] += 1
        constraint_count[vv] += 1
    order = sorted(all_views, key=lambda v: (-constraint_count[v], repr(v)))
    index = {view: i for i, view in enumerate(order)}

    # group constraints by the later-assigned endpoint for incremental checks
    checks_at: List[List[Tuple[ViewKey, ViewKey, Color]]] = [[] for _ in order]
    for (vu, vv, c) in constraints:
        later = max(index[vu], index[vv])
        checks_at[later].append((vu, vv, c))

    assignment: Dict[ViewKey, Dict[Color, Fraction]] = {}
    loads: Dict[ViewKey, Fraction] = {}
    explored = 0

    def consistent_at(position: int) -> bool:
        for (vu, vv, c) in checks_at[position]:
            wu, wv = assignment[vu], assignment[vv]
            if wu.get(c) != wv.get(c):
                return False
            # maximality of this edge: one endpoint saturated
            if loads[vu] != ONE and loads[vv] != ONE:
                return False
        return True

    def backtrack(position: int) -> bool:
        nonlocal explored
        if position == len(order):
            return True
        view = order[position]
        for option in candidates[view]:
            explored += 1
            if explored > max_nodes:
                raise RuntimeError(
                    f"search budget of {max_nodes} nodes exhausted; result unknown"
                )
            assignment[view] = option
            loads[view] = sum(option.values(), Fraction(0))
            if consistent_at(position) and backtrack(position + 1):
                return True
            del assignment[view]
            del loads[view]
        return False

    found = backtrack(0)
    return SearchOutcome(
        function=dict(assignment) if found else None,
        nodes_explored=explored,
        views=len(order),
        candidates_total=candidates_total,
    )


def one_round_universe(delta: int) -> List[ECGraph]:
    """A universe of degree-``<= delta`` graphs that defeats all 1-round algorithms.

    Contains every one-node graph whose loops form a non-empty subset of
    the colours ``1 .. delta``, and every two-node graph made of a
    colour-``c`` edge plus arbitrary loop subsets avoiding ``c`` at each
    endpoint.  On this universe, endpoint consistency forces a 1-round
    algorithm's weight for an edge to depend on the edge colour alone, and
    the one-node saturation constraints (``sum of w_c over T = 1`` for
    every loop set ``T``) are then mutually contradictory for
    ``delta >= 2`` — so :func:`search_view_function` at ``t = 1`` reports
    impossibility, confirming (and for ``delta = 3`` exactly matching) the
    Theorem 1 bound ``> delta - 2`` by enumeration.
    """
    if delta < 2:
        raise ValueError("need delta >= 2")
    colors = list(range(1, delta + 1))
    universe: List[ECGraph] = []
    # all non-empty loop subsets on a single node
    for mask in range(1, 1 << delta):
        subset = [c for i, c in enumerate(colors) if mask >> i & 1]
        g = ECGraph()
        g.add_node(0)
        for c in subset:
            g.add_edge(0, 0, c)
        universe.append(g)
    # all two-node edge-plus-loops graphs (degrees stay <= delta)
    for c in colors:
        others = [x for x in colors if x != c]
        for mask_u in range(1 << len(others)):
            for mask_v in range(mask_u, 1 << len(others)):  # unordered pairs
                g = ECGraph()
                g.add_edge("u", "v", c)
                for i, x in enumerate(others):
                    if mask_u >> i & 1:
                        g.add_edge("u", "u", x)
                    if mask_v >> i & 1:
                        g.add_edge("v", "v", x)
                universe.append(g)
    return universe


def zero_round_impossibility(delta: int = 2) -> Tuple[ECGraph, ECGraph, str]:
    """The ``t = 0`` impossibility, analytically (the paper's base-case idea).

    A 0-round EC algorithm sees ``tau_0`` — nothing, not even its incident
    colours — so its output is one constant weight ``w_c`` per colour.  On
    the one-node graph with a single colour-1 loop, maximality forces
    ``w_1 = 1``; on the one-node graph with loops of colours 1 and 2,
    feasibility then fails (``w_1 + w_2 >= 1 + 0`` with maximality forcing
    the sum above 1 whenever ``w_2 > 0``, and the sum to exactly 1
    otherwise — contradicting ``w_1 = 1`` unless ``w_2 = 0``, but then the
    first graph already pinned ``w_1``, making the two-loop node's load
    exactly 1 only if ``w_2 = 0`` ... in which case the colour-2 loop *is*
    covered; the genuine clash needs the single-loop graph of colour 2 as
    well, forcing ``w_2 = 1`` and overload).  Returns the two clashing
    graphs and a prose certificate.
    """
    g1 = single_node_with_loops(1, node="a", first_color=1)
    g2 = single_node_with_loops(1, node="b", first_color=2)
    certificate = (
        "a 0-round EC algorithm outputs a constant w_c per colour c; "
        "maximality on the single-loop graphs forces w_1 = 1 and w_2 = 1, "
        "but then the node with loops of colours 1 and 2 has load 2 > 1 — "
        "infeasible"
    )
    return g1, g2, certificate
