"""``effect-escape`` — ambient effects may not leak into model code.

The per-line ``determinism`` and ``exact-arith`` rules catch effects that
are *visible on their own line* (``import time``, a float literal).  What
they provably cannot catch is laundering: a model function calling a
helper, in another module, that reads the clock — or importing
``perf_counter`` *re-exported* by a project module, so the forbidden name
never appears in the model file at all.  This rule closes both holes using
the interprocedural effect analysis (:mod:`repro.lint.effects`): every
function defined under :attr:`LintConfig.model_packages` must have an
empty *visible* effect set for

* ``clock`` / ``entropy`` / ``worker-spawn`` — flagged when the effect
  arrives via a project call chain or a covert (re-exported) reference;
  overt direct uses stay the per-line rules' findings, so nothing is
  double-reported;
* ``float-arith`` — flagged only when introduced by a call (direct float
  syntax in exact scope is ``exact-arith``'s finding);
* ``global-mutation`` — flagged always: model code mutating module-level
  state is an effect the per-line rules never covered.

An effect stops propagating when its path crosses a declared containment
boundary (``clock_modules``, ``randomized_modules``, ``worker_modules``,
``state_modules``, the exact-scope exemptions) — that is what makes the
allowlists *verified*: calling into ``repro.obs.tracer`` is fine, leaking a
clock value around it is not.  The finding anchors at the introducing call
or reference, so a reviewed ``# repro: noqa[effect-escape]`` on that
statement is the escape hatch.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Finding

RULE_ID = "effect-escape"

#: effects this rule reports (kernel-mutation has its own rule).
_FLAGGED = ("clock", "entropy", "worker-spawn", "float-arith", "global-mutation")

_CONTRACT = {
    "clock": "model output must not depend on wall clocks",
    "entropy": "model code must stay deterministic",
    "worker-spawn": "model code must stay single-process",
    "float-arith": "exact-scope results must stay in Fraction arithmetic",
    "global-mutation": "model code must not mutate process-global state",
}


def _qualifies(effect: str, kind: str) -> bool:
    if effect in ("clock", "entropy", "worker-spawn"):
        return kind in ("call", "covert")
    if effect == "float-arith":
        return kind == "call"
    return True  # global-mutation: no per-line rule covers it


def check(project) -> Iterator[Finding]:
    """Flag unsanctioned visible effects of model-package functions."""
    analysis = project.effects
    for fx in analysis.model_functions():
        mod = project.module_named(fx.module)
        if mod is None:
            continue
        for effect in _FLAGGED:
            if effect not in fx.visible:
                continue
            sources = [
                s for s in fx.sources.get(effect, []) if _qualifies(effect, s.kind)
            ]
            if not sources:
                continue  # only overt direct sites: the per-line rules own those
            src = sources[0]
            if src.kind == "call":
                chain = [fx.qualname] + analysis.path(src.detail, effect)
            else:
                chain = [fx.qualname, src.detail]
            how = "re-exported reference" if src.kind == "covert" else (
                "call chain" if src.kind == "call" else "direct site"
            )
            yield Finding(
                path=mod.path,
                line=src.line,
                col=1,
                rule=RULE_ID,
                message=(
                    f"'{fx.qualname}' reaches ambient effect '{effect}' via "
                    f"{how} {' -> '.join(chain)}; {_CONTRACT[effect]} "
                    f"(contain it behind a declared boundary module or add a "
                    f"reviewed noqa)"
                ),
            )
