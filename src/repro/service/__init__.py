"""Sweep-as-a-service: a queued, multi-tenant job API over :mod:`repro.api`.

* :mod:`repro.service.jobs` — the transport-free core: a bounded job
  queue, worker threads driving :func:`repro.api.sweep`, per-tenant rate
  limiting and cancellation;
* :mod:`repro.service.server` — the stdlib HTTP/JSON front-end
  (``repro serve-api``).

See ``docs/service.md`` for the endpoint reference, job lifecycle,
tenancy/eviction semantics and backpressure contract.
"""

from .jobs import (
    JOB_STATES,
    Backpressure,
    Job,
    JobCancelled,
    ServiceConfig,
    SweepService,
    TokenBucket,
)
from .server import ServiceServer

__all__ = [
    "Backpressure",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "ServiceConfig",
    "ServiceServer",
    "SweepService",
    "TokenBucket",
]
