"""Tests for the scaling-experiment bench suite (repro.obs.bench)."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    DEFAULT_TRAJECTORY_PATH,
    TRAJECTORY_SCHEMA_VERSION,
    CheckReport,
    Experiment,
    Suite,
    Threshold,
    append_rows,
    check_rows,
    current_commit,
    latest_baselines,
    make_row,
    profile_attribution,
    read_rows,
    render_check,
    render_rows,
    render_trajectory,
    run_suite,
    suite_named,
)
from repro.obs.bench.suite import SUITES


class TestThreshold:
    def test_exact_trips_on_any_change(self):
        t = Threshold("rows_sha256", "exact")
        assert t.judge("abc", "abc") is None
        assert "exact metric" in t.judge("abc", "abd")

    def test_higher_is_worse_allows_ratio_headroom(self):
        t = Threshold("wall_s", "higher-is-worse", ratio=2.0)
        assert t.judge(1.0, 2.9) is None  # within +200%
        assert t.judge(1.0, 3.1) is not None
        assert t.judge(1.0, 0.2) is None  # improvement always passes

    def test_lower_is_worse_allows_delta_headroom(self):
        t = Threshold("hit_rate", "lower-is-worse", delta=0.02)
        assert t.judge(0.65, 0.64) is None
        assert t.judge(0.65, 0.60) is not None
        assert t.judge(0.65, 0.99) is None

    def test_allowed_worsening_is_max_of_ratio_and_delta(self):
        t = Threshold("wall_s", "higher-is-worse", ratio=1.0, delta=0.5)
        # tiny baseline: the absolute delta floor keeps noise from tripping
        assert t.judge(0.001, 0.4) is None
        assert t.judge(0.001, 0.6) is not None

    def test_informational_threshold_never_fails(self):
        t = Threshold("speedup", "lower-is-worse")
        assert t.informational
        assert t.judge(2.0, 0.1) is None

    def test_non_numeric_values_compare_by_equality(self):
        t = Threshold("wall_s", "higher-is-worse", ratio=2.0)
        assert t.judge(None, None) is None
        assert "not comparable" in t.judge("fast", "slow")

    def test_unknown_direction_is_rejected(self):
        with pytest.raises(ValueError):
            Threshold("x", "sideways-is-worse")


class TestTrajectory:
    def test_make_row_is_schema_versioned(self):
        row = make_row(
            suite="smoke", experiment="e", commit="abc", metrics={"wall_s": 1.0}
        )
        assert row["schema"] == TRAJECTORY_SCHEMA_VERSION
        assert row["metrics"] == {"wall_s": 1.0}
        assert row["profile"] == []
        assert "python" in row["env"]

    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        rows = [
            make_row(suite="smoke", experiment="a", commit="c1", metrics={"m": 1}),
            make_row(suite="smoke", experiment="b", commit="c1", metrics={"m": 2}),
        ]
        append_rows(path, rows)
        append_rows(path, rows)  # append-only: a second run adds, never rewrites
        loaded = read_rows(path)
        assert len(loaded) == 4
        assert loaded[0]["experiment"] == "a" and loaded[0]["metrics"] == {"m": 1}

    def test_reader_is_tolerant_of_damage(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        good = json.dumps(
            make_row(suite="s", experiment="a", commit="c", metrics={}), sort_keys=True
        )
        path.write_text('not json\n[1, 2]\n{"no": "experiment"}\n' + good + "\n")
        rows = read_rows(path)
        assert len(rows) == 1 and rows[0]["experiment"] == "a"

    def test_missing_file_reads_as_empty(self, tmp_path):
        assert read_rows(tmp_path / "nope.jsonl") == []

    def test_latest_baselines_last_row_wins_and_filters_by_suite(self):
        rows = [
            make_row(suite="smoke", experiment="a", commit="old", metrics={"m": 1}),
            make_row(suite="full", experiment="a", commit="full", metrics={"m": 9}),
            make_row(suite="smoke", experiment="a", commit="new", metrics={"m": 2}),
        ]
        baselines = latest_baselines(rows, suite="smoke")
        assert baselines["a"]["commit"] == "new"
        assert latest_baselines(rows)["a"]["commit"] == "new"  # unfiltered: file order

    def test_current_commit_honours_the_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_COMMIT", "deadbeef")
        assert current_commit() == "deadbeef"


def gated_suite() -> Suite:
    return Suite(
        name="unit",
        experiments=(
            Experiment(
                name="exp",
                kind="delta-scaling",
                title="t",
                thresholds=(
                    Threshold("wall_s", "higher-is-worse", ratio=2.0),
                    Threshold("rows_sha256", "exact"),
                    Threshold("speedup", "lower-is-worse"),  # informational
                ),
            ),
        ),
    )


def row_for(metrics, commit="c", experiment="exp", suite="unit", profile=None):
    return make_row(
        suite=suite, experiment=experiment, commit=commit,
        metrics=metrics, profile=profile,
    )


class TestCheck:
    def test_matching_rows_pass(self):
        baseline = row_for({"wall_s": 1.0, "rows_sha256": "abc"})
        current = row_for({"wall_s": 1.1, "rows_sha256": "abc"}, commit="new")
        report = check_rows([current], [baseline], gated_suite())
        assert report.ok and not report.missing
        assert all(c["ok"] for c in report.compared if c["ok"] is not None)

    def test_synthetic_regression_trips_the_gate(self):
        baseline = row_for({"wall_s": 1.0, "rows_sha256": "abc"})
        current = row_for({"wall_s": 5.0, "rows_sha256": "xyz"}, commit="new")
        report = check_rows([current], [baseline], gated_suite())
        assert not report.ok
        assert {v.metric for v in report.violations} == {"wall_s", "rows_sha256"}
        assert all(v.experiment == "exp" for v in report.violations)

    def test_missing_baseline_passes_vacuously(self):
        current = row_for({"wall_s": 1.0})
        report = check_rows([current], [], gated_suite())
        assert report.ok and report.missing == ["exp"]

    def test_missing_metric_is_recorded_but_never_fatal(self):
        baseline = row_for({"wall_s": 1.0})  # no rows_sha256 recorded yet
        current = row_for({"wall_s": 1.0, "rows_sha256": "abc"}, commit="new")
        report = check_rows([current], [baseline], gated_suite())
        assert report.ok
        sha = next(c for c in report.compared if c["metric"] == "rows_sha256")
        assert sha["ok"] is None

    def test_baseline_from_another_suite_is_ignored(self):
        foreign = row_for({"wall_s": 1.0, "rows_sha256": "abc"}, suite="other")
        current = row_for({"wall_s": 99.0, "rows_sha256": "zzz"})
        report = check_rows([current], [foreign], gated_suite())
        assert report.ok and report.missing == ["exp"]

    def test_report_as_dict_is_json_ready(self):
        baseline = row_for({"wall_s": 1.0, "rows_sha256": "abc"})
        current = row_for({"wall_s": 9.0, "rows_sha256": "abc"}, commit="new")
        report = check_rows([current], [baseline], gated_suite())
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["ok"] is False and doc["suite"] == "unit"
        assert doc["violations"][0]["metric"] == "wall_s"

    def test_profile_attribution_ranks_grown_spans_first(self):
        baseline = row_for(
            {},
            profile=[
                {"name": "engine.cell", "calls": 4, "self": 1.0, "total": 1.0},
                {"name": "engine.merge", "calls": 1, "self": 0.5, "total": 0.5},
            ],
        )
        current = row_for(
            {},
            commit="new",
            profile=[
                {"name": "engine.cell", "calls": 4, "self": 1.1, "total": 1.1},
                {"name": "engine.merge", "calls": 1, "self": 3.5, "total": 3.5},
            ],
        )
        rows = profile_attribution(baseline, current)
        assert rows[0]["name"] == "engine.merge"
        assert rows[0]["self_delta"] == pytest.approx(3.0)

    def test_profile_attribution_without_baseline_row(self):
        current = row_for(
            {}, profile=[{"name": "x", "calls": 1, "self": 2.0, "total": 2.0}]
        )
        (row,) = profile_attribution(None, current)
        assert row["self_delta"] == pytest.approx(2.0)


class TestSoAProfilePair:
    """The committed before/after REPRO_BENCH_TRACE pair for the SoA kernel
    core (BENCH_PROFILE_*_SOA.json): the ``adversary.iso_check`` span — the
    one wrapping ball canonicalisation — must show both an absolute
    self-time drop and a smaller share of the session's total self time."""

    @pytest.fixture()
    def profile_pair(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        before = json.loads((root / "BENCH_PROFILE_BEFORE_SOA.json").read_text())
        after = json.loads((root / "BENCH_PROFILE_AFTER_SOA.json").read_text())
        return before, after

    def test_canonicalisation_self_time_dropped(self, profile_pair):
        before, after = profile_pair
        rows = profile_attribution(before, after, top=len(after["profile"]))
        iso = next(row for row in rows if row["name"] == "adversary.iso_check")
        assert iso["calls"] == iso["baseline_calls"]  # same work, faster
        assert iso["self_delta"] < 0
        assert iso["self"] < 0.8 * iso["baseline_self"]

    def test_canonicalisation_share_of_self_time_dropped(self, profile_pair):
        before, after = profile_pair
        rows = profile_attribution(before, after, top=len(after["profile"]))
        total_after = sum(row["self"] for row in rows)
        total_before = sum(r["self"] for r in before["profile"])
        iso = next(row for row in rows if row["name"] == "adversary.iso_check")
        assert iso["self"] / total_after < iso["baseline_self"] / total_before


def tiny_suite() -> Suite:
    """One fast delta-scaling experiment — real sweeps, sub-second."""
    return Suite(
        name="tiny",
        experiments=(
            Experiment(
                name="tiny.delta",
                kind="delta-scaling",
                title="tiny Δ sweep",
                params={"algorithms": ("greedy",), "deltas": (3,)},
                thresholds=(
                    Threshold("rows_sha256", "exact"),
                    Threshold("cells", "exact"),
                    Threshold("wall_s", "higher-is-worse", ratio=2.0),
                ),
            ),
        ),
    )


class TestSuites:
    def test_declared_suites_resolve_by_name(self):
        smoke = suite_named("smoke")
        assert {e.kind for e in smoke.experiments} == {
            "delta-scaling", "worker-scaling", "cache-scaling",
            "canonical-microbench",
        }
        assert suite_named("full").name == "full"

    def test_unknown_suite_raises_with_the_options(self):
        with pytest.raises(ValueError, match="smoke"):
            suite_named("nope")

    def test_every_declared_threshold_metric_has_a_direction(self):
        for suite in SUITES.values():
            for experiment in suite.experiments:
                for threshold in experiment.thresholds:
                    assert threshold.direction in (
                        "higher-is-worse", "lower-is-worse", "exact",
                    )

    def test_default_trajectory_path_is_the_committed_file(self):
        assert DEFAULT_TRAJECTORY_PATH == "BENCH_TRAJECTORY.jsonl"


class TestRunSuite:
    def test_tiny_suite_produces_schema_versioned_rows(self):
        rows = run_suite(tiny_suite(), repeats=1, warmup=0, commit="test-commit")
        (row,) = rows
        assert row["schema"] == TRAJECTORY_SCHEMA_VERSION
        assert row["suite"] == "tiny" and row["experiment"] == "tiny.delta"
        assert row["commit"] == "test-commit"
        metrics = row["metrics"]
        assert metrics["cells"] == 1
        assert 0 <= metrics["refuted"] <= metrics["cells"]
        assert len(metrics["rows_sha256"]) == 64
        assert metrics["wall_s"] >= 0
        assert row["profile"] and {"name", "calls", "self", "total"} <= set(
            row["profile"][0]
        )

    def test_deterministic_fingerprints_across_runs(self):
        first = run_suite(tiny_suite(), repeats=1, warmup=0, commit="a")
        second = run_suite(tiny_suite(), repeats=1, warmup=0, commit="b")
        assert (
            first[0]["metrics"]["rows_sha256"] == second[0]["metrics"]["rows_sha256"]
        )

    def test_ambient_cache_dir_is_stripped_and_restored(self, tmp_path, monkeypatch):
        marker = str(tmp_path / "ambient-cache")
        monkeypatch.setenv("REPRO_CACHE_DIR", marker)
        import os

        seen = {}

        def spying_clock():
            seen["cache_env"] = os.environ.get("REPRO_CACHE_DIR")
            return 0.0

        run_suite(tiny_suite(), repeats=1, warmup=0, clock=spying_clock, commit="c")
        assert seen["cache_env"] is None  # stripped while experiments run
        assert os.environ["REPRO_CACHE_DIR"] == marker  # restored afterwards

    def test_injected_clock_drives_the_timings(self):
        clock = iter(range(1000))
        rows = run_suite(
            tiny_suite(),
            repeats=1,
            warmup=0,
            clock=lambda: float(next(clock)),
            commit="c",
        )
        assert rows[0]["metrics"]["wall_s"] == pytest.approx(1.0)

    def test_unknown_experiment_kind_is_rejected(self):
        broken = Suite(
            name="broken",
            experiments=(Experiment(name="x", kind="time-travel", title="t"),),
        )
        with pytest.raises(ValueError, match="time-travel"):
            run_suite(broken, repeats=1, warmup=0, commit="c")


class TestRenderers:
    def test_render_rows_lists_every_experiment(self):
        rows = [
            row_for({"wall_s": 0.5, "cells": 4}),
            row_for({"wall_s": 0.1}, experiment="other"),
        ]
        text = render_rows(rows)
        assert "exp" in text and "other" in text and "wall_s" in text

    def test_render_trajectory_shows_trends_per_experiment(self):
        rows = [
            row_for({"wall_s": 1.0}, commit="aaaaaaaaaaaa"),
            row_for({"wall_s": 2.0}, commit="bbbbbbbbbbbb"),
        ]
        text = render_trajectory(rows)
        assert "exp" in text and "aaaaaaaaa" in text
        assert "+100" in text  # wall_s delta vs the previous row

    def test_render_check_marks_failures_and_attribution(self):
        baseline = row_for(
            {"wall_s": 1.0, "rows_sha256": "abc"},
            profile=[{"name": "engine.cell", "calls": 1, "self": 1.0, "total": 1.0}],
        )
        current = row_for(
            {"wall_s": 9.0, "rows_sha256": "abc"},
            commit="new",
            profile=[{"name": "engine.cell", "calls": 1, "self": 9.0, "total": 9.0}],
        )
        report = check_rows([current], [baseline], gated_suite())
        text = render_check(report, [current], [baseline])
        assert "FAIL" in text and "wall_s" in text
        assert "engine.cell" in text  # self-time attribution names the span

    def test_render_check_on_an_empty_report(self):
        text = render_check(CheckReport(suite="unit"))
        assert "unit" in text


class TestBenchCLI:
    @pytest.fixture()
    def tiny_registered(self, monkeypatch):
        monkeypatch.setitem(SUITES, "tiny", tiny_suite())

    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def bench_args(self, tmp_path, *extra):
        return (
            "bench",
            "--suite", "tiny",
            "--trajectory", str(tmp_path / "trajectory.jsonl"),
            "--repeats", "1",
            "--warmup", "0",
            "--commit", "cli-test",
            *extra,
        )

    def test_run_appends_one_row(self, tiny_registered, tmp_path, capsys):
        assert self.run_cli(*self.bench_args(tmp_path)) == 0
        rows = read_rows(tmp_path / "trajectory.jsonl")
        assert len(rows) == 1 and rows[0]["commit"] == "cli-test"
        assert "appended 1 row(s)" in capsys.readouterr().out

    def test_dry_run_does_not_append(self, tiny_registered, tmp_path, capsys):
        assert self.run_cli(*self.bench_args(tmp_path, "--dry-run")) == 0
        assert not (tmp_path / "trajectory.jsonl").exists()
        assert "dry run" in capsys.readouterr().out

    def test_check_without_baseline_exits_2(self, tiny_registered, tmp_path, capsys):
        assert self.run_cli(*self.bench_args(tmp_path, "--check")) == 2
        assert "record a baseline first" in capsys.readouterr().err

    def test_check_against_a_fresh_baseline_passes(
        self, tiny_registered, tmp_path, capsys
    ):
        assert self.run_cli(*self.bench_args(tmp_path)) == 0
        assert self.run_cli(*self.bench_args(tmp_path, "--check")) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_exits_1_on_a_synthetic_regression(
        self, tiny_registered, tmp_path, capsys
    ):
        assert self.run_cli(*self.bench_args(tmp_path)) == 0
        path = tmp_path / "trajectory.jsonl"
        row = json.loads(path.read_text())
        row["metrics"]["rows_sha256"] = "0" * 64  # corrupt the exact baseline
        path.write_text(json.dumps(row, sort_keys=True) + "\n")
        assert self.run_cli(*self.bench_args(tmp_path, "--check")) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_json_reports_rows_and_verdict(
        self, tiny_registered, tmp_path, capsys
    ):
        assert self.run_cli(*self.bench_args(tmp_path)) == 0
        assert self.run_cli(*self.bench_args(tmp_path, "--check", "--json")) == 0
        doc = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert doc["check"]["ok"] is True and len(doc["rows"]) == 1

    def test_report_renders_without_running(self, tiny_registered, tmp_path, capsys):
        assert self.run_cli(*self.bench_args(tmp_path)) == 0
        capsys.readouterr()
        assert self.run_cli(*self.bench_args(tmp_path, "--report")) == 0
        assert "tiny.delta" in capsys.readouterr().out

    def test_unknown_suite_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown bench suite"):
            self.run_cli(
                "bench", "--suite", "nope",
                "--trajectory", str(tmp_path / "t.jsonl"),
            )

    def test_api_facade_returns_typed_report_without_persisting(
        self, tiny_registered, tmp_path, monkeypatch
    ):
        import dataclasses

        import repro.api as api

        monkeypatch.chdir(tmp_path)
        report = api.bench("tiny", repeats=1, warmup=0, commit="api-test")
        assert isinstance(report, api.BenchReport)
        assert dataclasses.is_dataclass(report) and isinstance(report.rows, tuple)
        assert report.suite == "tiny"
        assert report.commit == "api-test"
        assert report.rows[0]["commit"] == "api-test"
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.suite = "other"
        assert not (tmp_path / "BENCH_TRAJECTORY.jsonl").exists()
