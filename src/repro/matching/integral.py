"""Distributed maximal (integral) matching baselines (paper, Section 1.1).

Three algorithms with measured round counts:

* :func:`panconesi_rizzi_matching` — the deterministic
  ``O(Delta + log* n)`` algorithm: decompose into ``Delta`` rooted forests
  (0 rounds, from identifiers), 3-colour them all in parallel with
  Cole-Vishkin (``O(log* n)`` rounds), then sweep the forests; within a
  forest a 3-colouring lets unmatched nodes propose to parents colour class
  by colour class, ``O(1)`` rounds per forest.  This is the algorithm whose
  optimality the paper's open question (can ``o(Delta) + O(log* n)`` work?)
  asks about.
* :func:`randomized_matching` — Israeli-Itai-style: every round unmatched
  nodes propose to a random unmatched neighbour; proposal-receivers accept
  one.  Expected ``O(log n)`` rounds.
* :func:`greedy_matching_by_color` — given a proper edge colouring, sweep
  the colour classes; an edge joins the matching when processed with both
  endpoints unmatched.  ``palette`` rounds, maximal by construction.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from ..coloring.cole_vishkin import cole_vishkin_3color
from ..coloring.forests import forest_decomposition

Node = Hashable
EdgeKey = Tuple

__all__ = [
    "panconesi_rizzi_matching",
    "randomized_matching",
    "greedy_matching_by_color",
    "validate_maximal_matching",
]


def panconesi_rizzi_matching(g: "nx.Graph") -> Tuple[Set[EdgeKey], int]:
    """Deterministic maximal matching in ``O(Delta + log* n)`` rounds.

    Returns the matching (canonical edge pairs) and the round count:
    the parallel Cole-Vishkin rounds (counted once — the forests are
    processed simultaneously) plus 6 rounds per forest sweep.
    """
    forests = forest_decomposition(g)
    ids = {v: v for v in g.nodes()}
    colorings = []
    cv_rounds = 0
    for parent in forests:
        colors, r = cole_vishkin_3color(parent, ids)
        colorings.append(colors)
        cv_rounds = max(cv_rounds, r)  # forests are coloured in parallel

    matched: Set[Node] = set()
    matching: Set[EdgeKey] = set()
    sweep_rounds = 0
    for parent, colors in zip(forests, colorings):
        for c in (0, 1, 2):
            # one proposal round + one accept round
            proposals: Dict[Node, List[Node]] = {}
            for v, p in parent.items():
                if p is None or v in matched or p in matched:
                    continue
                if colors[v] == c:
                    proposals.setdefault(p, []).append(v)
            for p, proposers in proposals.items():
                if p in matched:
                    continue
                chosen = min(proposers)
                matching.add(tuple(sorted((chosen, p))))
                matched.add(chosen)
                matched.add(p)
            sweep_rounds += 2
    return matching, cv_rounds + sweep_rounds


def randomized_matching(g: "nx.Graph", rng: random.Random, max_rounds: int = 10_000) -> Tuple[Set[EdgeKey], int]:
    """Randomised maximal matching; expected ``O(log n)`` rounds.

    Each round: every unmatched node with an unmatched neighbour proposes to
    a random such neighbour; every node receiving proposals accepts one at
    random and the pair is matched.  Two communication rounds per iteration.
    """
    matched: Set[Node] = set()
    matching: Set[EdgeKey] = set()
    rounds = 0
    while rounds < max_rounds:
        live_edges = [
            (u, v) for u, v in g.edges() if u not in matched and v not in matched
        ]
        if not live_edges:
            break
        proposals: Dict[Node, List[Node]] = {}
        for v in g.nodes():
            if v in matched:
                continue
            candidates = [w for w in g.neighbors(v) if w not in matched]
            if candidates:
                target = rng.choice(candidates)
                proposals.setdefault(target, []).append(v)
        for target, proposers in sorted(proposals.items(), key=lambda kv: repr(kv[0])):
            if target in matched:
                continue
            free = [p for p in proposers if p not in matched]
            if not free:
                continue
            chosen = rng.choice(free)
            matching.add(tuple(sorted((chosen, target))))
            matched.add(chosen)
            matched.add(target)
        rounds += 2
    if any(u not in matched and v not in matched for u, v in g.edges()):
        raise RuntimeError("randomized matching did not finish within the cap")
    return matching, rounds


def greedy_matching_by_color(
    g: "nx.Graph", edge_coloring: Dict[EdgeKey, int]
) -> Tuple[Set[EdgeKey], int]:
    """Sweep colour classes of a proper edge colouring; 1 round per colour.

    Within a class the edges are pairwise non-adjacent, so all eligible
    edges join the matching simultaneously.  Maximal: when an edge's class
    is processed, either it joins or an endpoint is already matched.
    """
    matched: Set[Node] = set()
    matching: Set[EdgeKey] = set()
    palette = sorted(set(edge_coloring.values()))
    for c in palette:
        for key, col in edge_coloring.items():
            if col != c:
                continue
            u, v = key
            if u not in matched and v not in matched:
                matching.add(key)
                matched.add(u)
                matched.add(v)
    return matching, len(palette)


def validate_maximal_matching(g: "nx.Graph", matching: Set[EdgeKey]) -> bool:
    """Whether ``matching`` is a matching of ``g`` and is maximal."""
    used: Set[Node] = set()
    for u, v in matching:
        if not g.has_edge(u, v):
            return False
        if u in used or v in used:
            return False
        used.add(u)
        used.add(v)
    return all(u in used or v in used for u, v in g.edges())
