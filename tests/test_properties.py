"""Property-based tests (hypothesis) for core invariants.

Covers the algebraic heart of the reproduction:

* free-group word reduction and the homogeneous order (Appendix A),
* lift invariance of views and algorithms on random loopy trees,
* FM feasibility/maximality of the distributed algorithms on random graphs,
* the propagation principle on random saturated FM pairs.
"""

from __future__ import annotations

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.canonical_order import (
    bracket,
    compare_words,
    concat,
    inverse_word,
    reduce_word,
)
from repro.core.propagation import disagreeing_colors, next_disagreement
from repro.graphs.families import random_bounded_degree_graph, random_loopy_tree
from repro.graphs.lifts import is_covering_map_ec, random_two_lift
from repro.local.views import ec_view_tree
from repro.matching.fm import fm_from_node_outputs
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.proposal import proposal_algorithm
from repro.matching.sequential import greedy_maximal_fm

F = Fraction

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

steps = st.tuples(st.integers(min_value=1, max_value=3), st.sampled_from([1, -1]))
words = st.lists(steps, max_size=8).map(tuple)
reduced_words = words.map(reduce_word)


class TestFreeGroup:
    @given(words)
    def test_reduction_idempotent(self, w):
        assert reduce_word(reduce_word(w)) == reduce_word(w)

    @given(words)
    def test_inverse_cancels(self, w):
        assert concat(w, inverse_word(w)) == ()
        assert concat(inverse_word(w), w) == ()

    @given(words, words, words)
    def test_concat_associative(self, a, b, c):
        assert concat(concat(a, b), c) == concat(a, concat(b, c))

    @given(reduced_words)
    def test_bracket_antisymmetric(self, w):
        assert bracket(w) == -bracket(inverse_word(w))

    @given(reduced_words)
    def test_bracket_odd_for_nontrivial(self, w):
        if w:
            assert bracket(w) % 2 != 0

    @given(reduced_words, reduced_words)
    def test_compare_antisymmetric(self, x, y):
        assert compare_words(x, y) == -compare_words(y, x)

    @given(reduced_words, reduced_words, reduced_words)
    @settings(max_examples=200)
    def test_left_invariance(self, x, y, g):
        """Lemma 4 (homogeneity) as a universally quantified property."""
        assert compare_words(x, y) == compare_words(concat(g, x), concat(g, y))

    @given(reduced_words, reduced_words, reduced_words)
    @settings(max_examples=200)
    def test_transitivity(self, x, y, z):
        if compare_words(x, y) == -1 and compare_words(y, z) == -1:
            assert compare_words(x, z) == -1


class TestLiftInvariance:
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_views_lift_invariant(self, seed, n):
        g = random_loopy_tree(n, 1, seed=seed)
        lifted, alpha = random_two_lift(g, random.Random(seed + 1))
        assert is_covering_map_ec(lifted, g, alpha)
        for w in lifted.nodes():
            assert ec_view_tree(lifted, w, 2) == ec_view_tree(g, alpha[w], 2)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_greedy_lift_invariant(self, seed):
        g = random_loopy_tree(4, 1, seed=seed)
        lifted, alpha = random_two_lift(g, random.Random(seed))
        base = greedy_color_algorithm().run_on(g)
        up = greedy_color_algorithm().run_on(lifted)
        for w in lifted.nodes():
            assert up[w] == base[alpha[w]]


class TestDistributedFM:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=4, max_value=20),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_greedy_always_maximal(self, seed, n, delta):
        g = random_bounded_degree_graph(n, delta, seed=seed)
        fm = fm_from_node_outputs(g, greedy_color_algorithm().run_on(g))
        assert fm.is_feasible()
        assert fm.is_maximal()

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=4, max_value=16),
    )
    @settings(max_examples=20, deadline=None)
    def test_proposal_always_maximal(self, seed, n):
        g = random_bounded_degree_graph(n, 4, seed=seed)
        fm = fm_from_node_outputs(g, proposal_algorithm().run_on(g))
        assert fm.is_feasible()
        assert fm.is_maximal()

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=7))
    @settings(max_examples=20, deadline=None)
    def test_loopy_trees_fully_saturated(self, seed, n):
        """Lemma 2: on loopy graphs every node is saturated."""
        g = random_loopy_tree(n, 1, seed=seed)
        fm = fm_from_node_outputs(g, greedy_color_algorithm().run_on(g))
        assert fm.is_fully_saturated()


class TestPropagationPrinciple:
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_fact3_on_algorithm_pairs(self, seed, n):
        """For any two distinct fully saturating outputs, every saturated
        node with one disagreement has a second one."""
        g = random_loopy_tree(n, 2, seed=seed)
        out1 = greedy_color_algorithm().run_on(g)
        # second saturated FM: sequential greedy in a different edge order
        fm2 = greedy_maximal_fm(g, order=sorted((e.eid for e in g.edges()), reverse=True))
        out2 = {
            v: {e.color: fm2.weight(e.eid) for e in g.incident_edges(v)}
            for v in g.nodes()
        }
        if not fm2.is_fully_saturated():
            return  # propagation needs saturation on both sides
        for v in g.nodes():
            diff = disagreeing_colors(out1, out2, v)
            if diff:
                another = next_disagreement(g, out1, out2, v, incoming=diff[0])
                assert another != diff[0]
