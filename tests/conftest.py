"""Shared fixtures for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs.families import (
    caterpillar,
    complete_graph,
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    single_node_with_loops,
    star_graph,
)


@pytest.fixture
def rng():
    """A deterministic RNG for randomised constructions."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_graphs():
    """A spread of small EC-graphs without loops."""
    return {
        "path4": path_graph(4),
        "cycle6": cycle_graph(6),
        "star5": star_graph(5),
        "k4": complete_graph(4),
        "caterpillar": caterpillar(3, 2),
        "random": random_bounded_degree_graph(14, 4, seed=3),
    }


@pytest.fixture
def loopy_graphs():
    """Loopy EC-graphs (trees with loops), the adversary's habitat."""
    return {
        "one_node_3_loops": single_node_with_loops(3),
        "loopy_tree_small": random_loopy_tree(4, 2, seed=1),
        "loopy_tree_larger": random_loopy_tree(7, 1, seed=2),
    }
