"""Tests for lifts, covering maps, unfold and mix (repro.graphs.lifts)."""

from __future__ import annotations

import random

import pytest

from repro.graphs.families import (
    cycle_graph,
    random_loopy_tree,
    single_node_with_loops,
    star_graph,
)
from repro.graphs.lifts import (
    bipartite_double_cover,
    is_covering_map_ec,
    is_covering_map_po,
    mix,
    random_two_lift,
    unfold_loop,
)
from repro.graphs.multigraph import ECGraph
from repro.graphs.ports import po_double_from_ec


class TestCoveringMapCheck:
    def test_identity_is_covering(self):
        g = cycle_graph(5)
        assert is_covering_map_ec(g, g, {v: v for v in g.nodes()})

    def test_wrong_degree_rejected(self):
        g = star_graph(3)
        h = star_graph(2)
        alpha = {0: 0, 1: 1, 2: 2}
        assert not is_covering_map_ec(h, g, alpha)

    def test_non_onto_rejected(self):
        g = cycle_graph(4)
        alpha = {v: 0 for v in g.nodes()}
        assert not is_covering_map_ec(g, g, alpha)

    def test_po_identity(self):
        d = po_double_from_ec(cycle_graph(4))
        assert is_covering_map_po(d, d, {v: v for v in d.nodes()})


class TestUnfoldLoop:
    def test_unfold_is_2lift(self):
        g = single_node_with_loops(3)
        loop = g.loops_at(0)[0]
        gg, alpha, new_eid = unfold_loop(g, loop.eid)
        assert gg.num_nodes() == 2
        assert is_covering_map_ec(gg, g, alpha)
        e = gg.edge(new_eid)
        assert not e.is_loop and e.color == loop.color

    def test_unfold_rejects_non_loop(self):
        g = star_graph(2)
        e = g.edge_at(0, 1)
        with pytest.raises(ValueError):
            unfold_loop(g, e.eid)

    def test_unfold_preserves_degrees(self):
        g = random_loopy_tree(5, 2, seed=4)
        loop = g.loops_at(0)[0]
        gg, alpha, _ = unfold_loop(g, loop.eid)
        for v in gg.nodes():
            assert gg.degree(v) == g.degree(alpha[v])

    def test_unfold_loses_one_loop_at_anchor(self):
        g = single_node_with_loops(3)
        loop = g.loops_at(0)[0]
        gg, _, _ = unfold_loop(g, loop.eid)
        for side in (0, 1):
            assert gg.loop_count((side, 0)) == 2


class TestMix:
    def test_mix_structure(self):
        g = single_node_with_loops(3)
        h = single_node_with_loops(2)
        gh, new_eid = mix(g, g.edge_at(0, 1).eid, h, h.edge_at(0, 1).eid)
        assert gh.num_nodes() == 2
        e = gh.edge(new_eid)
        assert e.color == 1 and not e.is_loop
        assert gh.degree((0, 0)) == 3
        assert gh.degree((1, 0)) == 2

    def test_mix_requires_matching_colors(self):
        g = single_node_with_loops(2)
        h = single_node_with_loops(2)
        with pytest.raises(ValueError):
            mix(g, g.edge_at(0, 1).eid, h, h.edge_at(0, 2).eid)

    def test_mix_requires_loops(self):
        g = star_graph(2)
        h = single_node_with_loops(1)
        with pytest.raises(ValueError):
            mix(g, g.edge_at(0, 1).eid, h, h.edge_at(0, 1).eid)

    def test_mix_preserves_tree_shape(self):
        """(P3): mixing two trees-with-loops along loops gives a tree."""
        g = random_loopy_tree(4, 2, seed=9)
        h = random_loopy_tree(3, 2, seed=10)
        gh, _ = mix(g, g.loops_at(0)[0].eid, h, h.loops_at(0)[0].eid)
        assert gh.is_tree_ignoring_loops()


class TestRandomLifts:
    def test_random_two_lift_is_covering(self, rng):
        for seed in range(5):
            g = random_loopy_tree(5, 1, seed=seed)
            lifted, alpha = random_two_lift(g, rng)
            assert is_covering_map_ec(lifted, g, alpha)

    def test_two_lift_doubles_sizes(self, rng):
        g = cycle_graph(5)
        lifted, _ = random_two_lift(g, rng)
        assert lifted.num_nodes() == 2 * g.num_nodes()

    def test_crossed_loop_unfolds(self):
        g = single_node_with_loops(1)
        crossing_rng = random.Random(0)
        # try until we observe both behaviours across seeds
        saw_loop, saw_edge = False, False
        for seed in range(20):
            lifted, _ = random_two_lift(g, random.Random(seed))
            if any(e.is_loop for e in lifted.edges()):
                saw_loop = True
            else:
                saw_edge = True
        assert saw_loop and saw_edge


class TestBipartiteDoubleCover:
    def test_is_covering_and_bipartite(self):
        import networkx as nx

        g = cycle_graph(5)  # odd cycle: not bipartite
        cover, alpha = bipartite_double_cover(g)
        assert is_covering_map_ec(cover, g, alpha)
        nxg = nx.Graph()
        nxg.add_nodes_from(cover.nodes())
        nxg.add_edges_from((e.u, e.v) for e in cover.edges())
        assert nx.is_bipartite(nxg)

    def test_loops_become_edges(self):
        g = single_node_with_loops(2)
        cover, _ = bipartite_double_cover(g)
        assert all(not e.is_loop for e in cover.edges())
        assert cover.num_edges() == 2
