"""Resumable sweep results: JSONL shards plus one merged summary.

Each worker appends finished rows to its own ``shard-<k>.jsonl`` file — one
JSON object per line, flushed per row — so a sweep killed mid-flight loses
at most the row being written.  :meth:`ResultStore.completed` reads every
shard back and reports which cell keys are already done; the engine skips
those on resume.

Crash tolerance is explicit about what each damage class means:

* a torn **final** line is the expected signature of a writer killed
  mid-``write`` — it is dropped silently (counted in ``last_scan``);
* torn or garbage lines **mid-file** mean something else damaged the shard
  (truncation faults, disk corruption) — they are skipped too, but loudly:
  a ``RuntimeWarning`` names the file and line, and the ambient tracer's
  ``engine.store`` counter records it, so a sweep never aborts on a bad
  row yet the damage is never silent;
* duplicate cell keys (a shard killed after flushing a row but before the
  resume bookkeeping saw it, then re-run) keep the **first** occurrence —
  the dedup guard that makes resumed sweeps unable to double-count rows.

When a sweep finishes, :meth:`ResultStore.write_summary` merges all rows —
sorted by cell key, so worker scheduling never changes the document — into
``summary.json`` next to the shards, alongside the grid spec, aggregated
cache statistics, any failed cells, and the recovery account.  The merged
trace document lives in ``trace.json``.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Dict, List, Optional

from ..obs.tracer import current_tracer
from .faults import active_injector

__all__ = ["STORE_FORMAT", "ResultStore"]

STORE_FORMAT = "repro-sweep-v1"


class ResultStore:
    """Shard files and the merged summary for one sweep output directory."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: damage accounting of the most recent :meth:`rows` scan
        self.last_scan: Dict[str, int] = {"torn_final": 0, "corrupt_lines": 0, "duplicates": 0}

    # ------------------------------------------------------------------
    # shards
    # ------------------------------------------------------------------
    def shard_path(self, shard: int) -> Path:
        return self.directory / f"shard-{shard}.jsonl"

    def append(self, shard: int, row: dict) -> None:
        """Append one finished row to a shard, flushed immediately."""
        path = self.shard_path(shard)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(row, sort_keys=True, default=str) + "\n")
            fh.flush()
        injector = active_injector()
        if injector is not None:
            injector.on_store_append(path, row.get("key"))

    def rows(self) -> List[dict]:
        """Every persisted row across all shards, deduplicated and sorted.

        Damage policy: a truncated *final* line is dropped silently (the
        expected killed-writer signature); torn or garbage lines anywhere
        else are skipped with a ``RuntimeWarning`` and an ``engine.store``
        counter bump; duplicate cell keys keep the first occurrence.  The
        per-class tallies of this scan land in ``self.last_scan``.
        """
        scan = {"torn_final": 0, "corrupt_lines": 0, "duplicates": 0}
        metrics = current_tracer().metrics
        seen: Dict[str, dict] = {}
        for path in sorted(self.directory.glob("shard-*.jsonl")):
            # bytes + lossy decode: corruption may not even be valid UTF-8,
            # and an undecodable shard must degrade line-wise, not abort
            lines = path.read_bytes().decode("utf-8", errors="replace").splitlines()
            for lineno, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                row: Optional[dict] = None
                try:
                    parsed = json.loads(line)
                    if isinstance(parsed, dict) and parsed.get("key") is not None:
                        row = parsed
                except json.JSONDecodeError:
                    row = None
                if row is None:
                    if lineno == len(lines):
                        scan["torn_final"] += 1  # killed mid-write: expected
                    else:
                        scan["corrupt_lines"] += 1
                        metrics.counter("engine.store", outcome="corrupt_line").inc()
                        warnings.warn(
                            f"{path.name}:{lineno}: unreadable shard line skipped "
                            f"(mid-file corruption, not a torn final write)",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                    continue
                key = row["key"]
                if key in seen:
                    scan["duplicates"] += 1
                    metrics.counter("engine.store", outcome="duplicate_row").inc()
                    continue
                seen[key] = row
        self.last_scan = scan
        return [seen[key] for key in sorted(seen)]

    def completed(self) -> Dict[str, dict]:
        """Cell key -> persisted row for every already-finished cell."""
        return {row["key"]: row for row in self.rows()}

    def count_rows(self) -> int:
        """Cheap non-empty-line count across shards, for progress polling.

        Skips JSON decoding and the damage policy entirely, so the sweep's
        progress monitor can poll it frequently while workers are flushing.
        Torn lines and duplicates make this an upper-bound approximation —
        exact counts come from :meth:`rows` (and the progress ``final``
        event, which is derived from them).
        """
        total = 0
        for path in sorted(self.directory.glob("shard-*.jsonl")):
            try:
                data = path.read_bytes()
            except OSError:  # a shard mid-replacement reads as zero rows
                continue
            total += sum(1 for line in data.splitlines() if line.strip())
        return total

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------
    @property
    def summary_path(self) -> Path:
        return self.directory / "summary.json"

    @property
    def trace_path(self) -> Path:
        return self.directory / "trace.json"

    def write_summary(
        self,
        grid: dict,
        rows: List[dict],
        cache_stats: Optional[dict] = None,
        workers: Optional[int] = None,
        failed: Optional[List[dict]] = None,
        recovery: Optional[dict] = None,
    ) -> Path:
        """Write the merged ``summary.json``; rows are sorted by cell key.

        ``failed`` names cells whose execution error survived every retry
        and restart (each entry carries the cell key and the error), and
        ``recovery`` is the engine's restart/reassignment account — both
        empty on a healthy run.
        """
        document = {
            "format": STORE_FORMAT,
            "grid": grid,
            "workers": workers,
            "cells": len(rows),
            "cache": cache_stats,
            "failed": failed or [],
            "recovery": recovery or {},
            "rows": sorted(rows, key=lambda r: r.get("key", "")),
        }
        self.summary_path.write_text(
            json.dumps(document, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        return self.summary_path

    def read_summary(self) -> Optional[dict]:
        """The previously written summary, or ``None``."""
        try:
            return json.loads(self.summary_path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None
