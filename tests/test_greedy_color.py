"""Tests for greedy-by-colour maximal FM (repro.matching.greedy_color).

This is the O(Delta)-round EC upper bound against which the paper's lower
bound is tight — its properties are load-bearing for the whole repro.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core.saturation import check_lift_invariance
from repro.graphs.families import (
    caterpillar,
    complete_graph,
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    random_regular_graph,
    single_node_with_loops,
    star_graph,
)
from repro.matching.fm import fm_from_node_outputs
from repro.matching.greedy_color import greedy_color_algorithm


ALL_GRAPHS = [
    path_graph(5),
    cycle_graph(6),
    cycle_graph(7),
    star_graph(5),
    complete_graph(5),
    caterpillar(4, 2),
    random_bounded_degree_graph(20, 4, seed=0),
    random_regular_graph(12, 3, seed=1),
    random_loopy_tree(6, 2, seed=2),
    single_node_with_loops(4),
]


class TestCorrectness:
    def test_feasible_and_maximal_everywhere(self):
        for g in ALL_GRAPHS:
            alg = greedy_color_algorithm()
            fm = fm_from_node_outputs(g, alg.run_on(g))
            assert fm.is_feasible(), repr(g)
            assert fm.is_maximal(), repr(g)

    def test_saturates_loopy_graphs(self):
        """Lemma 2's hypothesis holds for this algorithm."""
        for seed in range(3):
            g = random_loopy_tree(5, 1, seed=seed)
            alg = greedy_color_algorithm()
            fm = fm_from_node_outputs(g, alg.run_on(g))
            assert fm.is_fully_saturated()

    def test_loop_saturates_its_node(self):
        g = single_node_with_loops(1)
        alg = greedy_color_algorithm()
        outputs = alg.run_on(g)
        assert outputs[0][1] == Fraction(1)


class TestRoundComplexity:
    def test_rounds_equal_palette_size(self):
        """The run takes exactly k rounds, k = number of colours = O(Delta)."""
        for g in ALL_GRAPHS:
            alg = greedy_color_algorithm()
            alg.run_on(g)
            assert alg.rounds_used(g) == len(g.colors())

    def test_rounds_scale_linearly_with_delta(self):
        rounds = []
        for delta in (2, 4, 6, 8):
            g = random_regular_graph(20 if (20 * delta) % 2 == 0 else 21, delta, seed=3)
            alg = greedy_color_algorithm()
            alg.run_on(g)
            rounds.append(alg.rounds_used(g))
        assert rounds == sorted(rounds)
        assert rounds[-1] >= 8  # at least Delta colours on a Delta-regular graph


class TestAnonymity:
    def test_lift_invariance(self):
        """The algorithm is a genuine EC-algorithm: invariant under lifts."""
        rng = random.Random(5)
        for g in (cycle_graph(5), random_loopy_tree(4, 1, seed=4)):
            problems = check_lift_invariance(greedy_color_algorithm(), g, rng, trials=2)
            assert problems == []

    def test_label_independence(self):
        g = path_graph(4)
        h = g.relabel({0: "a", 1: "b", 2: "c", 3: "d"})
        out_g = greedy_color_algorithm().run_on(g)
        out_h = greedy_color_algorithm().run_on(h)
        assert out_g[0] == out_h["a"]
        assert out_g[2] == out_h["c"]
