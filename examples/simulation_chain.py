"""The Section 5 simulation chain EC <= PO <= OI <= ID, end to end.

Starts from an ID-model state machine (the proposal dynamics, which happens
to ignore identifiers — order-invariant by construction), converts it down
the chain of the paper's Section 5.5:

    ID --(Ramsey / canonical identifiers, Sec 5.4)--> OI
       --(homogeneous tree order, Sec 5.3)--> PO
       --(edge doubling, Sec 5.1)--> EC

and (a) checks the resulting EC-algorithm still computes maximal FMs, then
(b) feeds it to the Section 4 adversary: with a time budget t that is too
small, the truncated algorithm is caught as *incorrect*; with enough budget
it survives to the full witness depth, certifying its run-time is
Omega(Delta) — the two branches of Theorem 1's refutation dichotomy.

Run:  python examples/simulation_chain.py
"""

from __future__ import annotations

from repro.core import chain_id_to_ec, chain_po_to_ec, run_adversary
from repro.core.witness import AlgorithmFailure
from repro.graphs.families import cycle_graph
from repro.local.algorithm import SimulatedPOWeights
from repro.matching import ProposalFM, fm_from_node_outputs


def id_pool(n: int) -> list:
    """A stand-in for the paper's infinite sparse identifier set J."""
    return [1000 + 7 * i for i in range(n)]


def chain_preserves_correctness() -> None:
    print("== the chained algorithm still solves maximal FM ==")
    ec = chain_id_to_ec(ProposalFM("ID"), t=4, id_pool=id_pool)
    for n in (4, 6, 8):
        g = cycle_graph(n)
        fm = fm_from_node_outputs(g, ec.run_on(g))
        print(
            f"  C{n}: feasible={fm.is_feasible()} maximal={fm.is_maximal()} "
            f"weight={fm.total_weight()}"
        )
    print()


def po_chain() -> None:
    print("== one link: EC <= PO on an edge-coloured graph ==")
    po_alg = SimulatedPOWeights(ProposalFM("PO"), name="proposal-po")
    ec = chain_po_to_ec(po_alg)
    g = cycle_graph(8)
    fm = fm_from_node_outputs(g, ec.run_on(g))
    print(f"  C8 via doubled PO-graph: maximal={fm.is_maximal()} weight={fm.total_weight()}")
    print()


def adversary_dichotomy() -> None:
    print("== adversary vs the full chain: the refutation dichotomy ==")
    delta = 4
    for t in (3, 4):
        ec = chain_id_to_ec(ProposalFM("ID"), t=t, id_pool=id_pool)
        try:
            witness = run_adversary(ec, delta)
            print(
                f"  t={t}: survived to depth {witness.achieved_depth} "
                f"(= Delta-2) — run-time certified Omega(Delta)"
            )
        except AlgorithmFailure as failure:
            print(f"  t={t}: caught as incorrect — {failure}")
    print()


def main() -> None:
    chain_preserves_correctness()
    po_chain()
    adversary_dichotomy()


if __name__ == "__main__":
    main()
