"""Tests for randomised maximal FM (repro.matching.random_priority) and the
tape machinery (repro.local.randomized)."""

from __future__ import annotations

import random
from fractions import Fraction

import networkx as nx
import pytest

from repro.graphs.families import (
    cycle_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    single_node_with_loops,
    star_graph,
)
from repro.local.randomized import my_coins, tape_globals, uniform_tape
from repro.matching.fm import fm_from_node_outputs
from repro.matching.random_priority import (
    RandomPriorityEC,
    RandomPriorityFM,
    failure_rate,
    id_output_is_valid_fm,
    run_random_priority_id,
)


class TestTape:
    def test_uniform_tape_coverage(self, rng):
        tape = uniform_tape(range(10), rng, bits=8)
        assert set(tape.keys()) == set(range(10))
        assert all(0 <= v < 256 for v in tape.values())

    def test_tape_globals_key(self, rng):
        tape = uniform_tape([1, 2], rng)
        g = tape_globals(tape, delta=4)
        assert g["random_tape"] == tape and g["delta"] == 4

    def test_my_coins_reads_own_entry(self, rng):
        from repro.local.context import NodeContext

        ctx = NodeContext(node="x", model="EC", ports=(), globals=tape_globals({"x": 7}))
        assert my_coins(ctx) == 7


class TestECCorrectness:
    """With colour-salted priorities local ties are impossible, so the EC
    variant is always a correct maximal-FM algorithm."""

    def test_maximal_on_samples(self, rng):
        for g in (
            cycle_graph(7),
            star_graph(5),
            random_bounded_degree_graph(18, 4, seed=1),
            random_loopy_tree(5, 2, seed=2),
            single_node_with_loops(3),
        ):
            tape = uniform_tape(g.nodes(), rng, bits=30)
            alg = RandomPriorityEC(tape)
            fm = fm_from_node_outputs(g, alg.run_on(g))
            assert fm.is_feasible(), repr(g)
            assert fm.is_maximal(), repr(g)

    def test_even_tiny_tapes_are_safe_in_ec(self, rng):
        """Colour salts break ties even with 1-bit coins."""
        g = random_bounded_degree_graph(15, 4, seed=3)
        tape = uniform_tape(g.nodes(), rng, bits=1)
        fm = fm_from_node_outputs(g, RandomPriorityEC(tape).run_on(g))
        assert fm.is_feasible() and fm.is_maximal()

    def test_missing_tape_entry_rejected(self, rng):
        g = cycle_graph(4)
        with pytest.raises(KeyError):
            RandomPriorityEC({0: 1}).run_on(g)

    def test_rounds_reported(self, rng):
        g = cycle_graph(8)
        alg = RandomPriorityEC(uniform_tape(g.nodes(), rng, 30))
        alg.run_on(g)
        assert alg.rounds_used(g) >= 2  # coins round + at least one firing


class TestIDVariant:
    def test_valid_with_wide_tape(self, rng):
        g = nx.random_regular_graph(3, 12, seed=1)
        outputs, rounds = run_random_priority_id(g, uniform_tape(g.nodes(), rng, 30))
        assert id_output_is_valid_fm(g, outputs)
        assert rounds <= g.number_of_edges() + 2

    def test_validator_catches_overload(self):
        g = nx.path_graph(3)
        bad = {
            0: {1: Fraction(1)},
            1: {0: Fraction(1), 2: Fraction(1)},
            2: {1: Fraction(1)},
        }
        assert not id_output_is_valid_fm(g, bad)

    def test_validator_catches_inconsistency(self):
        g = nx.path_graph(2)
        bad = {0: {1: Fraction(1)}, 1: {0: Fraction(1, 2)}}
        assert not id_output_is_valid_fm(g, bad)

    def test_validator_accepts_valid(self):
        g = nx.path_graph(2)
        ok = {0: {1: Fraction(1)}, 1: {0: Fraction(1)}}
        assert id_output_is_valid_fm(g, ok)


class TestFailureProbability:
    """The Appendix B premise: the algorithm fails with a probability
    controlled by the randomness width."""

    def test_failure_rate_decreases_with_bits(self):
        rng = random.Random(5)
        g = nx.random_regular_graph(3, 12, seed=2)
        narrow = failure_rate(g, rng, bits=1, samples=40)
        wide = failure_rate(g, rng, bits=24, samples=40)
        assert narrow > 0.5
        assert wide == 0.0

    def test_failures_are_real_overloads(self):
        """A 1-bit tape on a triangle: all priorities tie, everything fires,
        nodes overload."""
        rng = random.Random(6)
        g = nx.cycle_graph(3)
        tape = {v: 0 for v in g.nodes()}
        outputs, _ = run_random_priority_id(g, tape)
        assert not id_output_is_valid_fm(g, outputs)


class TestLemma10Integration:
    """Appendix B end to end with the *real* randomised FM algorithm."""

    def test_find_good_tape_for_fm(self):
        from repro.core.derandomize import find_good_assignment

        def correct(g, rho):
            if g.number_of_edges() == 0:
                return True
            outputs, _ = run_random_priority_id(g, rho)
            return id_output_is_valid_fm(g, outputs)

        rng = random.Random(7)
        found = find_good_assignment(
            correct, id_sets=[range(4)], rng=rng, rho_bits=16, attempts_per_set=32
        )
        assert found is not None
        ids, rho = found
        # spot-check on the complete graph over the ids
        g = nx.complete_graph(4)
        outputs, _ = run_random_priority_id(g, rho)
        assert id_output_is_valid_fm(g, outputs)
