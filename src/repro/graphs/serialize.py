"""JSON serialisation for kernel-backed graphs and lower-bound witnesses.

Hard instances produced by the adversary are valuable artefacts (regression
inputs, teaching material, cross-implementation checks); this module makes
them portable.  Node labels are arbitrary nested tuples/strings in the
construction, so they are encoded losslessly through a tagged scheme
(:func:`encode_label` / :func:`decode_label` — also reused by the canonical
-form cache in :mod:`repro.engine.cache`).

The current codec is ``repro-graph-v2``: one tagged format covering

* EC-graphs (``kind: "ec"``),
* PO-graphs (``kind: "po"``),
* bare :class:`~repro.graphs.kernel.GraphKernel` snapshots
  (``kind: "kernel"``, with a ``directed`` flag), and
* rooted :class:`~repro.graphs.neighborhoods.Ball` extractions
  (``kind: "ball"``, embedding the subgraph plus root/radius/distances).

Legacy ``repro-ecgraph-v1`` documents (EC-only, written before the kernel
refactor) are still read by :func:`graph_from_json` / :func:`from_json`.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, Hashable

from .digraph import POGraph
from .kernel import GraphKernel
from .multigraph import ECGraph

Node = Hashable

__all__ = [
    "GRAPH_FORMAT_V1",
    "GRAPH_FORMAT_V2",
    "encode_label",
    "decode_label",
    "to_json",
    "from_json",
    "graph_to_json",
    "graph_from_json",
    "witness_step_to_json",
]

GRAPH_FORMAT_V1 = "repro-ecgraph-v1"
GRAPH_FORMAT_V2 = "repro-graph-v2"


def encode_label(label: Any) -> Any:
    """Encode a node label (nested tuples of str/int) as tagged JSON.

    Tuples become ``{"t": [...]}``; the int/str/bool/``None`` leaves pass
    through.  The same scheme encodes canonical-form trees in the engine's
    cache, so the two layers stay byte-compatible.
    """
    if isinstance(label, tuple):
        return {"t": [encode_label(x) for x in label]}
    if isinstance(label, (str, int, bool)) or label is None:
        return label
    raise TypeError(f"cannot serialise node label of type {type(label).__name__}")


def decode_label(data: Any) -> Any:
    """Inverse of :func:`encode_label`."""
    if isinstance(data, dict) and set(data.keys()) == {"t"}:
        return tuple(decode_label(x) for x in data["t"])
    return data


# backwards-compatible aliases (pre-v2 private names)
_encode_label = encode_label
_decode_label = decode_label


def _graph_payload(g, kind: str, directed: bool) -> Dict[str, Any]:
    return {
        "format": GRAPH_FORMAT_V2,
        "kind": kind,
        "directed": directed,
        "nodes": [encode_label(v) for v in g.nodes()],
        "edges": [
            {
                "eid": e.eid,
                "u": encode_label(e.tail if directed else e.u),
                "v": encode_label(e.head if directed else e.v),
                "color": e.color,
            }
            for e in g.edges()
        ],
    }


def _payload_of(obj) -> Dict[str, Any]:
    from .neighborhoods import Ball

    if isinstance(obj, ECGraph):
        return _graph_payload(obj, "ec", directed=False)
    if isinstance(obj, POGraph):
        return _graph_payload(obj, "po", directed=True)
    if isinstance(obj, GraphKernel):
        return _graph_payload(obj, "kernel", directed=obj.directed)
    if isinstance(obj, Ball):
        return {
            "format": GRAPH_FORMAT_V2,
            "kind": "ball",
            "graph": _graph_payload(obj.graph, "ec", directed=False),
            "root": encode_label(obj.root),
            "radius": obj.radius,
            "distances": [
                [encode_label(v), d] for v, d in obj.distances.items()
            ],
        }
    raise TypeError(f"cannot serialise object of type {type(obj).__name__}")


def to_json(obj) -> str:
    """Serialise a graph-like object to a ``repro-graph-v2`` document.

    Accepts :class:`ECGraph`, :class:`POGraph`, a frozen
    :class:`~repro.graphs.kernel.GraphKernel`, or a rooted
    :class:`~repro.graphs.neighborhoods.Ball`.  Colours must be
    JSON-representable (ints/strings — all families and the adversary use
    ints).  Edge ids are preserved, so a round trip reproduces the graph
    exactly (and, ids aside, the same kernel digest).
    """
    return json.dumps(_payload_of(obj), sort_keys=True)


def _graph_from_payload(payload: Dict[str, Any]):
    kind = payload.get("kind")
    directed = bool(payload.get("directed", kind == "po"))
    g = POGraph() if directed else ECGraph()
    for label in payload["nodes"]:
        g.add_node(decode_label(label))
    for edge in payload["edges"]:
        g.add_edge(
            decode_label(edge["u"]),
            decode_label(edge["v"]),
            edge["color"],
            eid=edge["eid"],
        )
    if kind == "kernel":
        return g.kernel
    return g


def from_json(text: str):
    """Inverse of :func:`to_json`; also reads legacy ``repro-ecgraph-v1``.

    Returns an :class:`ECGraph`, :class:`POGraph`,
    :class:`~repro.graphs.kernel.GraphKernel` or
    :class:`~repro.graphs.neighborhoods.Ball` according to the document's
    ``kind``; validates the format tag.
    """
    payload = json.loads(text)
    fmt = payload.get("format")
    if fmt == GRAPH_FORMAT_V1:
        legacy = dict(payload, kind="ec", directed=False)
        return _graph_from_payload(legacy)
    if fmt != GRAPH_FORMAT_V2:
        raise ValueError(f"unknown format {fmt!r}")
    kind = payload.get("kind")
    if kind in ("ec", "po", "kernel"):
        return _graph_from_payload(payload)
    if kind == "ball":
        from .neighborhoods import Ball

        graph = _graph_from_payload(payload["graph"])
        return Ball(
            graph=graph,
            root=decode_label(payload["root"]),
            radius=int(payload["radius"]),
            distances={
                decode_label(v): int(d) for v, d in payload["distances"]
            },
        )
    raise ValueError(f"unknown graph kind {kind!r}")


def graph_to_json(g: ECGraph) -> str:
    """Serialise an EC-graph (nodes, edges with ids and colours) to JSON.

    Emits the ``repro-graph-v2`` codec; see :func:`to_json`.
    """
    return to_json(g)


def graph_from_json(text: str) -> ECGraph:
    """Read an EC-graph from ``repro-graph-v2`` or legacy ``repro-ecgraph-v1``."""
    result = from_json(text)
    if not isinstance(result, ECGraph):
        raise ValueError(f"document holds {type(result).__name__}, not an EC-graph")
    return result


def witness_step_to_json(step) -> str:
    """Serialise a :class:`~repro.core.witness.StepWitness` with its graphs.

    Weights are stored as exact ``numerator/denominator`` strings.
    """
    payload = {
        "format": "repro-witness-step-v1",
        "index": step.index,
        "side": step.side,
        "color": step.color,
        "node_g": encode_label(step.node_g),
        "node_h": encode_label(step.node_h),
        "weight_g": str(Fraction(step.weight_g)),
        "weight_h": str(Fraction(step.weight_h)),
        "balls_isomorphic": step.balls_isomorphic,
        "loop_budget": step.loop_budget,
        "graph_g": json.loads(graph_to_json(step.graph_g)),
        "graph_h": json.loads(graph_to_json(step.graph_h)),
    }
    return json.dumps(payload, sort_keys=True)
