"""The immutable, digest-addressed graph kernel.

Every graph in the reproduction — EC multigraphs, PO digraphs, extracted
balls, universal-cover truncations — is ultimately a *port/colour-labelled
multigraph with loops*: a set of labelled nodes, each owning a small map of
colour slots, and a set of edge records filling those slots.  This module
provides that substrate once, as a pair of classes:

* :class:`GraphKernel` — a **frozen** snapshot.  It owns its slot maps and
  edge table, refuses attribute assignment (:class:`FrozenKernelError`), and
  carries a **content digest**: a SHA-256 over the canonical node/edge
  encoding, maintained *incrementally* (an order-independent accumulator —
  the sum, modulo ``2**256``, of one SHA-256 token per node and per edge),
  so finalising the digest is O(1) no matter how the graph was built.  The
  digest is a pure function of the labelled structure — node labels, the
  ``(endpoints, colour)`` multiset and directedness; edge *ids* are
  deliberately excluded, exactly the equivalence the canonical-form cache
  in :mod:`repro.engine.cache` keys on.

* :class:`GraphBuilder` — the **only** mutator.  A builder forked from a
  kernel (:meth:`GraphKernel.builder`) starts as a copy-on-write overlay:
  per-node slot maps are shared *by identity* with the parent kernel until
  the first mutation touches that node, and edge records (frozen dataclass
  instances) are shared forever.  Forking, removing one edge and freezing
  therefore allocates O(touched nodes) fresh objects, not O(graph) — the
  move the Section 4 adversary ladder makes at every level.  The grafting
  ops :meth:`GraphBuilder.merge` and :meth:`GraphBuilder.double` insert
  whole relabelled copies of an existing (proper) graph without re-running
  per-edge properness checks.

Both EC and PO discipline live here, selected by ``directed``:

* undirected (EC): a node's slots are keyed by colour; a loop occupies one
  slot and counts +1 towards the degree (paper, Section 3.5);
* directed (PO): slots are keyed by ``("out", colour)`` / ``("in", colour)``
  pairs; a directed loop occupies both and counts +2.

:class:`repro.graphs.multigraph.ECGraph` and
:class:`repro.graphs.digraph.POGraph` are thin mutable views over a builder;
their public APIs are unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from .labels import LABELS

Node = Hashable
Color = Any
EdgeId = int

__all__ = [
    "KERNEL_DIGEST_VERSION",
    "Edge",
    "DiEdge",
    "FrozenKernelError",
    "ImproperColoringError",
    "ImproperPOColoringError",
    "GraphKernel",
    "GraphBuilder",
]

#: version string folded into every digest; bump on any encoding change so
#: stale on-disk cache entries can never alias fresh ones
KERNEL_DIGEST_VERSION = "repro-graph-kernel-v1"

_MASK = (1 << 256) - 1


class FrozenKernelError(TypeError):
    """Raised on any attempt to mutate a frozen :class:`GraphKernel`."""


class ImproperColoringError(ValueError):
    """Raised when an edge insertion would violate proper edge colouring."""


class ImproperPOColoringError(ValueError):
    """Raised when an arc insertion would clash with an existing colour slot."""


@dataclass(frozen=True)
class Edge:
    """An undirected coloured edge.

    Attributes
    ----------
    eid:
        Unique integer id of the edge within its graph.
    u, v:
        Endpoints.  For a loop, ``u == v``.
    color:
        The edge colour (a positive integer in all paper constructions).
    """

    eid: EdgeId
    u: Node
    v: Node
    color: Color

    @property
    def is_loop(self) -> bool:
        """Whether this edge is a loop (both endpoints equal)."""
        return self.u == self.v

    def endpoints(self) -> Tuple[Node, Node]:
        """Return the pair of endpoints ``(u, v)``."""
        return (self.u, self.v)

    def other(self, x: Node) -> Node:
        """Return the endpoint different from ``x`` (itself for a loop)."""
        if x == self.u:
            return self.v
        if x == self.v:
            return self.u
        raise KeyError(f"{x!r} is not an endpoint of edge {self.eid}")


@dataclass(frozen=True)
class DiEdge:
    """A directed coloured edge (arc) from ``tail`` to ``head``."""

    eid: EdgeId
    tail: Node
    head: Node
    color: Color

    @property
    def is_loop(self) -> bool:
        """Whether this arc is a directed loop (tail equals head)."""
        return self.tail == self.head


# ----------------------------------------------------------------------
# digest tokens — memoized in the process-wide interned-label table
# (repro.graphs.labels); the payload encoding is unchanged, so digests
# stay byte-identical across the refactor
# ----------------------------------------------------------------------
def _label_bytes(v: Node) -> bytes:
    return LABELS.repr_bytes(v)


def _node_token(v: Node) -> int:
    return LABELS.node_token(v)


def _edge_token(ends: Tuple[Node, Node], color: Color, directed: bool) -> int:
    return LABELS.edge_token(ends, color, directed)


def _record_token(record, directed: bool) -> int:
    ends = (record.tail, record.head) if directed else (record.u, record.v)
    return _edge_token(ends, record.color, directed)


class GraphKernel:
    """A frozen, digest-addressed port/colour-labelled multigraph.

    Instances are produced by :meth:`GraphBuilder.freeze` and never mutated:
    attribute assignment raises :class:`FrozenKernelError` and no mutator
    methods exist.  Per-node slot maps and edge records are structurally
    shared with the builder lineage that produced the kernel and with every
    builder forked from it.
    """

    __slots__ = ("_directed", "_slots", "_edges", "_acc", "_next_eid", "_digest", "_soa")

    def __init__(self, directed: bool, slots, edges, acc: int, next_eid: int):
        object.__setattr__(self, "_directed", directed)
        object.__setattr__(self, "_slots", slots)
        object.__setattr__(self, "_edges", edges)
        object.__setattr__(self, "_acc", acc)
        object.__setattr__(self, "_next_eid", next_eid)
        object.__setattr__(self, "_digest", None)
        # lazily-built columnar snapshot (repro.graphs.soa); None until the
        # first consumer asks, a sentinel when the structure defies one
        object.__setattr__(self, "_soa", None)

    def __setattr__(self, name, value):
        raise FrozenKernelError(
            f"GraphKernel is frozen; cannot set attribute {name!r} "
            f"(fork a GraphBuilder via .builder() to derive a new graph)"
        )

    def __delattr__(self, name):
        raise FrozenKernelError("GraphKernel is frozen; cannot delete attributes")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def directed(self) -> bool:
        """Whether this kernel follows the PO (directed) slot discipline."""
        return self._directed

    @property
    def digest(self) -> str:
        """The content digest: SHA-256 hex over the canonical encoding.

        Finalised lazily in O(1) from the incremental accumulator; equal
        for two kernels iff they have the same node-label set, the same
        ``(endpoints, colour)`` edge multiset and the same directedness.
        Edge ids never enter the digest.
        """
        if self._digest is None:
            payload = (
                f"{KERNEL_DIGEST_VERSION}|directed={int(self._directed)}"
                f"|n={len(self._slots)}|m={len(self._edges)}|acc={self._acc:064x}"
            )
            object.__setattr__(
                self, "_digest", hashlib.sha256(payload.encode("utf-8")).hexdigest()
            )
        return self._digest

    def rooted_digest(self, root: Optional[Node]) -> str:
        """Digest of the kernel together with a distinguished root label."""
        payload = f"{self.digest}|root={repr(root)}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def nodes(self) -> List[Node]:
        """List of all node labels (insertion order)."""
        return list(self._slots.keys())

    def edges(self) -> List[Any]:
        """List of all edge records (insertion order)."""
        return list(self._edges.values())

    def edge(self, eid: EdgeId):
        """The edge record with id ``eid``."""
        return self._edges[eid]

    def has_node(self, v: Node) -> bool:
        """Whether ``v`` is a node of this kernel."""
        return v in self._slots

    def has_edge_id(self, eid: EdgeId) -> bool:
        """Whether an edge with id ``eid`` exists."""
        return eid in self._edges

    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._slots)

    def num_edges(self) -> int:
        """Number of edge records (loops count once)."""
        return len(self._edges)

    def degree(self, v: Node) -> int:
        """Number of occupied slots at ``v`` (EC: loops +1; PO: loops +2)."""
        return len(self._slots[v])

    def slot_map(self, v: Node) -> Mapping[Any, EdgeId]:
        """The raw slot map of ``v`` — treat as read-only (it is shared)."""
        return self._slots[v]

    def edge_at(self, v: Node, color: Color):
        """Undirected read: the unique colour-``color`` edge at ``v`` or ``None``."""
        if self._directed:
            raise TypeError("edge_at is an undirected read; use out_edge/in_edge")
        eid = self._slots[v].get(color)
        return None if eid is None else self._edges[eid]

    def incident_colors(self, v: Node) -> List[Color]:
        """Undirected read: colours of edges incident to ``v``."""
        if self._directed:
            raise TypeError("incident_colors is an undirected read")
        return list(self._slots[v].keys())

    def out_edge(self, v: Node, color: Color):
        """Directed read: the outgoing colour-``color`` arc at ``v`` or ``None``."""
        if not self._directed:
            raise TypeError("out_edge is a directed read; use edge_at")
        eid = self._slots[v].get(("out", color))
        return None if eid is None else self._edges[eid]

    def in_edge(self, v: Node, color: Color):
        """Directed read: the incoming colour-``color`` arc at ``v`` or ``None``."""
        if not self._directed:
            raise TypeError("in_edge is a directed read; use edge_at")
        eid = self._slots[v].get(("in", color))
        return None if eid is None else self._edges[eid]

    def out_colors(self, v: Node) -> List[Color]:
        """Directed read: colours of outgoing arcs at ``v``."""
        if not self._directed:
            raise TypeError("out_colors is a directed read")
        return [c for (kind, c) in self._slots[v] if kind == "out"]

    def in_colors(self, v: Node) -> List[Color]:
        """Directed read: colours of incoming arcs at ``v``."""
        if not self._directed:
            raise TypeError("in_colors is a directed read")
        return [c for (kind, c) in self._slots[v] if kind == "in"]

    # ------------------------------------------------------------------
    # derivation / diagnostics
    # ------------------------------------------------------------------
    def builder(self) -> "GraphBuilder":
        """Fork a copy-on-write :class:`GraphBuilder` over this kernel.

        Costs two shallow dict copies (pointers only); per-node slot maps
        and edge records stay shared until a mutation touches them.
        """
        return GraphBuilder(directed=self._directed, _base=self)

    def shared_slot_maps(self, other: "GraphKernel") -> int:
        """How many per-node slot maps this kernel shares *by identity* with
        ``other`` — the mechanically honest measure of structural sharing
        (and of the copy work a builder fork avoided)."""
        other_slots = other._slots
        return sum(
            1 for v, m in self._slots.items() if other_slots.get(v) is m
        )

    def validate(self) -> None:
        """Check internal consistency; raises ``AssertionError`` on corruption."""
        for v, slots in self._slots.items():
            for key, eid in slots.items():
                record = self._edges[eid]
                if self._directed:
                    kind, color = key
                    assert record.color == color
                    assert (record.tail if kind == "out" else record.head) == v
                else:
                    assert record.color == key
                    assert v in (record.u, record.v)
        for eid, record in self._edges.items():
            assert record.eid == eid
            if self._directed:
                assert self._slots[record.tail][("out", record.color)] == eid
                assert self._slots[record.head][("in", record.color)] == eid
            else:
                assert self._slots[record.u][record.color] == eid
                assert self._slots[record.v][record.color] == eid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "po" if self._directed else "ec"
        return (
            f"GraphKernel({kind}, n={self.num_nodes()}, m={self.num_edges()}, "
            f"digest={self.digest[:12]}...)"
        )


class GraphBuilder:
    """Copy-on-write mutable overlay producing :class:`GraphKernel` snapshots.

    A fresh builder starts empty; a builder forked from a kernel
    (:meth:`GraphKernel.builder`) shares all of the kernel's per-node slot
    maps and edge records until mutations touch them.  :meth:`freeze` seals
    the current state into a new kernel in O(1) (handing over the dicts) and
    rebases the builder as a fork of that kernel, so a builder can be frozen
    repeatedly while staying usable.

    The canonical content digest is accumulated incrementally: every node
    and edge insertion adds (and every removal subtracts) one SHA-256 token
    into a running sum modulo ``2**256``, so no operation ever re-walks the
    graph to compute a digest.
    """

    __slots__ = ("directed", "_slots", "_edges", "_acc", "_next_eid", "_owned",
                 "allocated_nodes", "allocated_edges")

    def __init__(self, directed: bool = False, _base: Optional[GraphKernel] = None):
        self.directed = directed
        if _base is None:
            self._slots: Dict[Node, Dict[Any, EdgeId]] = {}
            self._edges: Dict[EdgeId, Any] = {}
            self._acc = 0
            self._next_eid = 0
            self._owned: Set[Node] = set()
        else:
            self._slots = dict(_base._slots)
            self._edges = dict(_base._edges)
            self._acc = _base._acc
            self._next_eid = _base._next_eid
            self._owned = set()
        #: fresh slot maps / edge records allocated by this builder since the
        #: last fork or freeze — the observable cost a fork keeps at O(touched)
        self.allocated_nodes = 0
        self.allocated_edges = 0

    # ------------------------------------------------------------------
    # copy-on-write plumbing
    # ------------------------------------------------------------------
    def _own(self, v: Node) -> Dict[Any, EdgeId]:
        """The slot map of ``v``, cloned first if still shared with a kernel."""
        if v not in self._owned:
            self._slots[v] = dict(self._slots[v])
            self._owned.add(v)
        return self._slots[v]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> Node:
        """Add an isolated node (no-op if present).  Returns the node."""
        if v not in self._slots:
            self._slots[v] = {}
            self._owned.add(v)
            self._acc = (self._acc + _node_token(v)) & _MASK
            self.allocated_nodes += 1
        return v

    def add_edge(self, u: Node, v: Node, color: Color, eid: Optional[EdgeId] = None) -> EdgeId:
        """Add an edge/arc of the given colour; enforces slot properness.

        Undirected builders raise :class:`ImproperColoringError` on a colour
        clash; directed builders treat ``u`` as tail and ``v`` as head and
        raise :class:`ImproperPOColoringError` when the out- or in-slot is
        taken.  An explicit fresh ``eid`` may be supplied.
        """
        self.add_node(u)
        self.add_node(v)
        if self.directed:
            key_u, key_v = ("out", color), ("in", color)
            if key_u in self._slots[u]:
                raise ImproperPOColoringError(
                    f"node {u!r} already has an outgoing arc of colour {color}"
                )
            if key_v in self._slots[v]:
                raise ImproperPOColoringError(
                    f"node {v!r} already has an incoming arc of colour {color}"
                )
        else:
            key_u = key_v = color
            if color in self._slots[u]:
                raise ImproperColoringError(
                    f"node {u!r} already has an incident edge of colour {color}"
                )
            if u != v and color in self._slots[v]:
                raise ImproperColoringError(
                    f"node {v!r} already has an incident edge of colour {color}"
                )
        if eid is None:
            eid = self._next_eid
        elif eid in self._edges:
            raise ValueError(f"edge id {eid} already in use")
        self._next_eid = max(self._next_eid, eid) + 1
        record = DiEdge(eid, u, v, color) if self.directed else Edge(eid, u, v, color)
        self._edges[eid] = record
        self._own(u)[key_u] = eid
        self._own(v)[key_v] = eid
        self._acc = (self._acc + _edge_token((u, v), color, self.directed)) & _MASK
        self.allocated_edges += 1
        return eid

    def remove_edge(self, eid: EdgeId):
        """Remove the edge with id ``eid`` and return its record."""
        record = self._edges.pop(eid)
        if self.directed:
            del self._own(record.tail)[("out", record.color)]
            del self._own(record.head)[("in", record.color)]
            ends = (record.tail, record.head)
        else:
            del self._own(record.u)[record.color]
            if record.u != record.v:
                del self._own(record.v)[record.color]
            ends = (record.u, record.v)
        self._acc = (self._acc - _edge_token(ends, record.color, self.directed)) & _MASK
        return record

    def remove_node(self, v: Node) -> None:
        """Remove node ``v`` together with all incident edges."""
        for eid in sorted(set(self._slots[v].values())):
            self.remove_edge(eid)
        del self._slots[v]
        self._owned.discard(v)
        self._acc = (self._acc - _node_token(v)) & _MASK

    # ------------------------------------------------------------------
    # grafting: whole-graph inserts that skip per-edge properness checks
    # ------------------------------------------------------------------
    def merge(
        self,
        source,
        tag: Any = None,
        relabel=None,
        skip_eids: Iterable[EdgeId] = (),
        preserve_eids: bool = False,
    ) -> Dict[Node, Node]:
        """Graft a relabelled copy of ``source`` into this builder.

        ``source`` is any kernel-backed graph (a :class:`GraphKernel`, a
        :class:`GraphBuilder`, or an EC/PO view) of the same directedness.
        Each source node ``v`` becomes ``(tag, v)`` when ``tag`` is given,
        ``relabel(v)`` when a callable is given, or keeps its label.  Edges
        listed in ``skip_eids`` are omitted; the rest receive fresh ids in
        source insertion order (or keep their ids with ``preserve_eids``).

        Properness is *not* re-checked edge by edge: the source graph is
        proper, relabelling is injective, and every inserted label must be
        new to this builder (checked; ``ValueError`` otherwise) — so the
        grafted copy is proper by construction.  This is what makes the
        adversary's unfold/mix levels O(inserted), not O(checks × graph).

        Returns the node mapping ``{source label -> new label}``.
        """
        src_slots, src_edges, src_directed = _graph_data(source)
        if src_directed != self.directed:
            raise ValueError("cannot merge graphs of different directedness")
        if tag is not None and relabel is not None:
            raise ValueError("pass either tag or relabel, not both")
        if tag is not None:
            mapping = {v: (tag, v) for v in src_slots}
        elif relabel is not None:
            mapping = {v: relabel(v) for v in src_slots}
            if len(set(mapping.values())) != len(mapping):
                raise ValueError("relabelling is not injective")
        else:
            mapping = {v: v for v in src_slots}
        for new in mapping.values():
            if new in self._slots:
                raise ValueError(f"merge target label {new!r} already present")
        skip = set(skip_eids)
        eid_map: Dict[EdgeId, EdgeId] = {}
        for old_eid in src_edges:
            if old_eid in skip:
                continue
            if preserve_eids:
                if old_eid in self._edges:
                    raise ValueError(f"edge id {old_eid} already in use")
                eid_map[old_eid] = old_eid
            else:
                eid_map[old_eid] = self._next_eid
                self._next_eid += 1
        # nodes: remap each source slot map in one pass (no properness scan)
        for v, slots in src_slots.items():
            new_v = mapping[v]
            self._slots[new_v] = {
                key: eid_map[eid] for key, eid in slots.items() if eid not in skip
            }
            self._owned.add(new_v)
            self._acc = (self._acc + _node_token(new_v)) & _MASK
            self.allocated_nodes += 1
        for old_eid, record in src_edges.items():
            if old_eid in skip:
                continue
            eid = eid_map[old_eid]
            if self.directed:
                new_record = DiEdge(eid, mapping[record.tail], mapping[record.head], record.color)
                ends = (new_record.tail, new_record.head)
            else:
                new_record = Edge(eid, mapping[record.u], mapping[record.v], record.color)
                ends = (new_record.u, new_record.v)
            self._edges[eid] = new_record
            self._next_eid = max(self._next_eid, eid + 1)
            self._acc = (self._acc + _edge_token(ends, record.color, self.directed)) & _MASK
            self.allocated_edges += 1
        return mapping

    def double(self, source, tags: Tuple[Any, Any] = (0, 1), skip_eids: Iterable[EdgeId] = ()):
        """Graft *two* tagged copies of ``source`` (the 2-lift scaffold).

        Equivalent to ``merge(source, tag=tags[0], ...)`` followed by
        ``merge(source, tag=tags[1], ...)``; the caller adds whatever fresh
        edges join the copies (unfold's opened loop, a crossed lift edge).
        Returns the pair of node mappings.
        """
        skip = tuple(skip_eids)
        return (
            self.merge(source, tag=tags[0], skip_eids=skip),
            self.merge(source, tag=tags[1], skip_eids=skip),
        )

    # ------------------------------------------------------------------
    # freezing
    # ------------------------------------------------------------------
    def freeze(self) -> GraphKernel:
        """Seal the current state into a :class:`GraphKernel`.

        The kernel takes ownership of the builder's dicts; the builder
        immediately rebases itself as a copy-on-write fork of the new
        kernel, so it stays usable and later mutations can never reach the
        frozen snapshot.
        """
        kernel = GraphKernel(
            self.directed, self._slots, self._edges, self._acc, self._next_eid
        )
        self._slots = dict(self._slots)
        self._edges = dict(self._edges)
        self._owned = set()
        self.allocated_nodes = 0
        self.allocated_edges = 0
        return kernel

    # ------------------------------------------------------------------
    # reads (the views delegate here)
    # ------------------------------------------------------------------
    def nodes(self) -> List[Node]:
        return list(self._slots.keys())

    def edges(self) -> List[Any]:
        return list(self._edges.values())

    def edge(self, eid: EdgeId):
        return self._edges[eid]

    def has_node(self, v: Node) -> bool:
        return v in self._slots

    def has_edge_id(self, eid: EdgeId) -> bool:
        return eid in self._edges

    def num_nodes(self) -> int:
        return len(self._slots)

    def num_edges(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "po" if self.directed else "ec"
        return f"GraphBuilder({kind}, n={self.num_nodes()}, m={self.num_edges()})"


def _graph_data(source) -> Tuple[Dict[Node, Dict[Any, EdgeId]], Dict[EdgeId, Any], bool]:
    """The (slots, edges, directed) triple behind any kernel-backed graph."""
    if isinstance(source, GraphKernel):
        return source._slots, source._edges, source._directed
    if isinstance(source, GraphBuilder):
        return source._slots, source._edges, source.directed
    builder = getattr(source, "_b", None)
    if isinstance(builder, GraphBuilder):
        return builder._slots, builder._edges, builder.directed
    raise TypeError(f"not a kernel-backed graph: {type(source).__name__}")
