"""Appendix B, live: randomised maximal FM and its derandomisation.

The paper notes that randomness cannot help a local algorithm solve a
locally checkable problem, derandomising via Lemma 10.  This demo runs the
whole story on a *real* randomised algorithm — random-priority maximal FM:

1. its failure probability is controlled by the width of the random
   strings (priority ties overload nodes);
2. failures amplify over identifier-disjoint unions as ``1 - (1-p)^q``
   (the averaging engine of Lemma 10's proof);
3. the Lemma 10 search finds an identifier set and a fixed tape on which
   the *derandomised* algorithm is correct on every graph over the set.

Run:  python examples/randomized_and_derandomized.py
"""

from __future__ import annotations

import random

import networkx as nx

from repro.core.derandomize import all_graphs_on, failure_amplification, find_good_assignment
from repro.local.randomized import uniform_tape
from repro.matching.random_priority import (
    failure_rate,
    id_output_is_valid_fm,
    run_random_priority_id,
)


def failure_by_bits() -> None:
    print("== failure probability vs randomness width ==")
    rng = random.Random(1)
    g = nx.random_regular_graph(3, 14, seed=1)
    print(f"{'bits':>5} {'failure rate':>13}")
    for bits in (1, 2, 4, 8, 16):
        rate = failure_rate(g, rng, bits=bits, samples=60)
        print(f"{bits:>5} {float(rate):>13.3f}")
    print()


def amplification() -> None:
    print("== failure amplification over disjoint unions (Lemma 10's engine) ==")
    rng = random.Random(2)
    # a 3-node path: the two edges tie (and overload the middle node)
    # whenever the end nodes draw equal coins -- probability 1/8 here
    bad = nx.path_graph(3)

    def correct(g, rho):
        outs, _ = run_random_priority_id(g, {v: r % 8 for v, r in rho.items()})
        return id_output_is_valid_fm(g, outs)

    print(f"{'components':>11} {'empirical':>10}")
    for q in (1, 2, 4, 8):
        rate = failure_amplification(correct, bad, rng, components=q, samples=200)
        print(f"{q:>11} {float(rate):>10.3f}")
    print()


def lemma10() -> None:
    print("== Lemma 10: a good (S_n, rho_n) pair for the real algorithm ==")

    def correct(g, rho):
        if g.number_of_edges() == 0:
            return True
        outs, _ = run_random_priority_id(g, rho)
        return id_output_is_valid_fm(g, outs)

    rng = random.Random(3)
    found = find_good_assignment(correct, id_sets=[range(4)], rng=rng, rho_bits=20)
    assert found is not None
    ids, rho = found
    graphs = all_graphs_on(ids)
    assert all(correct(g, rho) for g in graphs)
    print(f"  identifier set S_n = {ids}")
    print(f"  fixed tape rho_n   = {rho}")
    print(f"  the derandomised algorithm is correct on all {len(graphs)} graphs over S_n")
    print()


def main() -> None:
    failure_by_bits()
    amplification()
    lemma10()


if __name__ == "__main__":
    main()
