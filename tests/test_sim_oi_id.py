"""Tests for the OI <= ID simulation (repro.core.sim_oi_id, Section 5.4)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.sim_oi_id import (
    OIFromID,
    ball_size_bound,
    evaluate_id_on_neighbourhood,
    extract_order_invariant_ids,
    lemma6_check,
    lemma7_check,
    loopy_oi_neighbourhood,
    saturation_of_root,
)
from repro.core.sim_po_oi import po_algorithm_from_oi
from repro.core.sim_ec_po import ECFromPO
from repro.graphs.families import cycle_graph, single_node_with_loops
from repro.graphs.ports import po_double_from_ec
from repro.local.identifiers import assign_ids_respecting_order, sparse_subset
from repro.matching.fm import fm_from_node_outputs
from repro.matching.naive import ParityTiltFM
from repro.matching.proposal import ProposalFM


def loopy_po():
    """The doubled PO version of a loopy one-node EC graph."""
    return po_double_from_ec(single_node_with_loops(2))


class TestNeighbourhoods:
    def test_structure(self):
        nbhd = loopy_oi_neighbourhood(loopy_po(), 0, 2)
        assert nbhd.root == ()
        assert nbhd.size == nbhd.cover.tree.num_nodes()
        assert nbhd.ordered_nodes[0] is not None
        # canonical order sorts all cover nodes
        assert len(nbhd.ordered_nodes) == nbhd.size

    def test_undirected_is_simple_tree(self):
        import networkx as nx

        nbhd = loopy_oi_neighbourhood(loopy_po(), 0, 2)
        tree = nbhd.undirected()
        assert nx.is_tree(tree)


class TestBallSizeBound:
    def test_small_values(self):
        assert ball_size_bound(0, 3) == 1
        assert ball_size_bound(3, 0) == 1
        assert ball_size_bound(1, 5) == 2
        assert ball_size_bound(2, 2) == 5  # a path: 1 + 2 + 2

    def test_dominates_actual_covers(self):
        d = loopy_po()
        for radius in (1, 2):
            nbhd = loopy_oi_neighbourhood(d, 0, radius)
            assert nbhd.size <= ball_size_bound(d.max_degree(), radius)


class TestLemma6:
    def test_proposal_saturates_centre(self):
        """The (order-invariant) proposal dynamics saturates the centre of a
        loopy neighbourhood — Lemma 6's conclusion."""
        nbhd = loopy_oi_neighbourhood(loopy_po(), 0, 3)
        pool = [10 * i + 7 for i in range(nbhd.size)]
        assert lemma6_check(ProposalFM("ID"), nbhd, pool)

    def test_saturation_of_root_flags(self):
        nbhd = loopy_oi_neighbourhood(loopy_po(), 0, 2)
        phi = assign_ids_respecting_order(nbhd.ordered_nodes, range(nbhd.size))
        outputs = evaluate_id_on_neighbourhood(ProposalFM("ID"), nbhd, phi)
        assert saturation_of_root(nbhd, outputs) in (0, 1)


class TestLemma7:
    def test_order_invariant_machine_passes(self):
        nbhd = loopy_oi_neighbourhood(loopy_po(), 0, 2)
        pool = list(range(100, 100 + 3 * nbhd.size, 3))
        assert lemma7_check(ProposalFM("ID"), nbhd, pool, limit=4)

    def test_parity_machine_fails_on_mixed_parity_assignments(self):
        """ParityTiltFM reads identifier values: two order-respecting
        assignments whose parity patterns differ give different root outputs,
        so the machine is not order-invariant on a mixed pool."""
        nbhd = loopy_oi_neighbourhood(loopy_po(), 0, 2)
        all_even = assign_ids_respecting_order(
            nbhd.ordered_nodes, [100 + 2 * i for i in range(nbhd.size)]
        )
        alternating = assign_ids_respecting_order(
            nbhd.ordered_nodes, [100 + 3 * i for i in range(nbhd.size)]
        )
        out_even = evaluate_id_on_neighbourhood(ParityTiltFM(), nbhd, all_even)
        out_alt = evaluate_id_on_neighbourhood(ParityTiltFM(), nbhd, alternating)
        assert out_even[nbhd.root] != out_alt[nbhd.root]

    def test_parity_machine_passes_on_constant_parity_pool(self):
        nbhd = loopy_oi_neighbourhood(loopy_po(), 0, 2)
        even_pool = list(range(50, 50 + 4 * nbhd.size, 2))
        assert lemma7_check(ParityTiltFM(), nbhd, even_pool, limit=6)


class TestRamseyExtraction:
    def test_extracts_constant_parity_for_tilt_machine(self):
        """Lemma 5, concretely: the Ramsey search finds identifiers on which
        the parity-sensitive machine's saturation indicator is constant."""
        d = loopy_po()
        nbhd = loopy_oi_neighbourhood(d, 0, 1)  # small: exhaustive search ok
        universe = range(20, 40)
        found = extract_order_invariant_ids(
            ParityTiltFM(), [nbhd], universe, target=nbhd.size + 1
        )
        assert found is not None

    def test_order_invariant_machine_trivially_extractable(self):
        nbhd = loopy_oi_neighbourhood(loopy_po(), 0, 1)
        found = extract_order_invariant_ids(
            ProposalFM("ID"), [nbhd], range(10), target=nbhd.size
        )
        assert found is not None


class TestOIFromID:
    def test_rejects_non_id_machines(self):
        with pytest.raises(ValueError):
            OIFromID(ProposalFM("EC"), t=2, id_pool=range(10))

    def test_t_zero_rejected(self):
        with pytest.raises(ValueError):
            OIFromID(ProposalFM("ID"), t=0, id_pool=range(10))

    def test_finite_pool_too_small_raises(self):
        oi = OIFromID(ProposalFM("ID"), t=3, id_pool=[1, 2, 3])
        d = loopy_po()
        from repro.core.sim_po_oi import POFromOI

        with pytest.raises(ValueError, match="identifier pool"):
            POFromOI(oi).run_on(d)

    def test_full_chain_produces_maximal_fm(self):
        oi = OIFromID(ProposalFM("ID"), t=3, id_pool=lambda n: [5 * i for i in range(n)])
        ec = ECFromPO(po_algorithm_from_oi(oi))
        g = cycle_graph(6)
        fm = fm_from_node_outputs(g, ec.run_on(g))
        assert fm.is_feasible() and fm.is_maximal()

    def test_sparse_pool_composition(self):
        """Wiring Lemma 5 + sparse_subset + OIFromID as Section 5.4 does."""
        d = loopy_po()
        nbhd = loopy_oi_neighbourhood(d, 0, 1)
        extracted = extract_order_invariant_ids(
            ProposalFM("ID"), [nbhd], range(40), target=12
        )
        assert extracted is not None
        m = ball_size_bound(d.max_degree(), 1)
        sparse = sparse_subset(extracted, min(m, 2))
        assert len(sparse) >= 1
