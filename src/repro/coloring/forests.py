"""Forest decompositions from unique identifiers (0 communication rounds).

A graph of maximum degree ``Delta`` splits into ``Delta`` rooted forests:
each edge is *owned* by its higher-identifier endpoint and assigned the
index of that edge in the owner's (sorted) list of owned edges.  In forest
``F_i`` every node has at most one owned index-``i`` edge and points along
it to the lower-identifier endpoint; parent chains strictly decrease
identifiers, so each ``F_i`` is a forest rooted at local minima.

This is the entry step of the Panconesi-Rizzi maximal-matching baseline
(paper, Section 1.1): it costs no communication because every node already
knows its neighbours' identifiers in the ID model.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

import networkx as nx

Node = Hashable

__all__ = ["forest_decomposition", "validate_forest"]


def forest_decomposition(g: "nx.Graph") -> List[Dict[Node, Optional[Node]]]:
    """Split ``g`` into rooted forests given as parent-pointer maps.

    Returns a list of ``Delta`` maps; map ``i`` sends every node to its
    parent in forest ``F_{i+1}`` (``None`` if it owns no index-``i+1`` edge).
    Every edge of ``g`` appears in exactly one forest.  Node labels must be
    comparable (they are identifiers).
    """
    delta = max((d for _, d in g.degree()), default=0)
    forests: List[Dict[Node, Optional[Node]]] = [
        {v: None for v in g.nodes()} for _ in range(delta)
    ]
    for owner in g.nodes():
        owned = sorted(w for w in g.neighbors(owner) if owner > w)
        for i, w in enumerate(owned):
            forests[i][owner] = w
    return forests


def validate_forest(parent: Dict[Node, Optional[Node]]) -> bool:
    """Whether the parent map is acyclic (a genuine rooted forest)."""
    for start in parent:
        seen = {start}
        v = start
        while parent[v] is not None:
            v = parent[v]
            if v in seen:
                return False
            seen.add(v)
    return True
