"""The stable public surface of :mod:`repro`.

Three verbs cover the repository's workflows:

* :func:`run` — execute a distributed algorithm on a graph (or prebuilt
  network) under the LOCAL runtime, optionally bounded to an exact round
  budget, sanitized, and traced;
* :func:`refute` — test a claimed run-time against the Section 4 adversary,
  optionally stacking the Section 5 simulation chain (EC ⇐ PO ⇐ OI ⇐ ID)
  in front of a base machine;
* :func:`sweep` — run a declarative grid of (algorithm, ∆, chain, seed)
  cells through the parallel experiment engine (:mod:`repro.engine`);
* :func:`bench` — run a declared scaling-experiment suite
  (:mod:`repro.obs.bench`) and return its per-commit trajectory rows.

Everything here is re-exported keyword-first and model-agnostic: ``run``
builds the right network adapter from the algorithm's declared model, and
``refute`` accepts either a ready EC-weight algorithm or a ``chain`` name.
The lower-level modules remain importable, but new code (and the CLI)
should go through this facade.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from .core.theorem import Refutation, chain_from_name
from .core.theorem import refute as _theorem_refute
from .graphs.digraph import POGraph
from .graphs.multigraph import ECGraph
from .local.algorithm import DistributedAlgorithm, ECWeightAlgorithm
from .local.runtime import (
    ECNetwork,
    IDNetwork,
    Network,
    PONetwork,
    RunResult,
    run as _run,
    run_rounds as _run_rounds,
)

__all__ = ["run", "refute", "sweep", "bench"]

_NETWORKS = {"EC": ECNetwork, "PO": PONetwork, "ID": IDNetwork}


def _as_network(algorithm: DistributedAlgorithm, graph: Any, globals_: Optional[Dict[str, Any]]) -> Network:
    """Wrap ``graph`` in the network adapter matching the algorithm's model."""
    if isinstance(graph, Network):
        if globals_:
            raise ValueError("pass globals to the Network constructor, not to run()")
        return graph
    if isinstance(graph, ECGraph):
        network_cls = ECNetwork
    elif isinstance(graph, POGraph):
        network_cls = PONetwork
    else:
        network_cls = _NETWORKS.get(algorithm.model, IDNetwork)
    return network_cls(graph, globals_=globals_)


def run(
    algorithm: DistributedAlgorithm,
    graph: Any,
    *,
    rounds: Optional[int] = None,
    max_rounds: int = 10_000,
    tracer=None,
    sanitize: bool = False,
    sanitize_mode: str = "raise",
    globals: Optional[Dict[str, Any]] = None,  # noqa: A002 - deliberate public name
) -> RunResult:
    """Execute ``algorithm`` on ``graph`` and return the :class:`RunResult`.

    ``graph`` may be an :class:`ECGraph`, a :class:`POGraph`, a simple
    networkx graph (ID model) or an already-built :class:`Network`; the
    adapter is chosen from the algorithm's declared model.  With ``rounds``
    set, exactly that many communication rounds execute and non-halted
    nodes are snapshotted (:func:`repro.local.runtime.run_rounds`);
    otherwise the run continues until all nodes output or ``max_rounds``.

    ``sanitize`` wraps every node context in the locality sanitizer;
    ``tracer`` attaches a :class:`repro.obs.Tracer` (defaults to the
    ambient one).  ``globals`` seeds the network's shared global knowledge
    (e.g. ``{"delta": 4}``) and must be ``None`` when ``graph`` is already
    a network.
    """
    network = _as_network(algorithm, graph, globals)
    if rounds is not None:
        return _run_rounds(
            network,
            algorithm,
            rounds,
            sanitize=sanitize,
            sanitize_mode=sanitize_mode,
            tracer=tracer,
        )
    return _run(
        network,
        algorithm,
        max_rounds=max_rounds,
        sanitize=sanitize,
        sanitize_mode=sanitize_mode,
        tracer=tracer,
    )


def refute(
    algorithm: Union[ECWeightAlgorithm, DistributedAlgorithm],
    delta: int,
    *,
    claimed_rounds: int = 1,
    chain: Optional[str] = None,
    deep_verify: bool = False,
    tracer=None,
) -> Refutation:
    """Test "``algorithm`` computes maximal FM in ``claimed_rounds`` rounds
    on degree-``delta`` EC-graphs" with the Section 4 adversary.

    ``algorithm`` is either a ready EC-weight algorithm (``chain=None``) or
    a base state machine to stack the named simulation chain in front of:
    ``chain="ec"`` presents it directly, ``"po"``/``"oi"``/``"id"`` add the
    Section 5 simulations (see :func:`repro.core.theorem.chain_from_name`).
    Returns a machine-checked :class:`Refutation`.
    """
    if chain is not None:
        algorithm = chain_from_name(chain, t=delta, base=algorithm)
    return _theorem_refute(
        algorithm, claimed_rounds, delta, deep_verify=deep_verify, tracer=tracer
    )


def sweep(
    grid=None,
    *,
    workers: int = 0,
    out: Optional[str] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    resume: bool = False,
    tracer=None,
    faults=None,
    cell_timeout: Optional[float] = None,
    retries: int = 1,
    max_restarts: int = 2,
    progress=None,
):
    """Run a grid of experiment cells through the parallel engine.

    ``grid`` is a :class:`repro.engine.GridSpec`, a mapping accepted by
    :meth:`GridSpec.from_mapping`, or ``None`` for the paper's E1 grid.
    Returns a :class:`repro.engine.SweepResult`; see :mod:`repro.engine`
    for sharding, caching and resume semantics.

    ``faults`` replays a deterministic failure scenario (a
    :class:`repro.engine.FaultPlan`, its dict form, or a path to its JSON
    file); ``cell_timeout``/``retries``/``max_restarts`` bound the per-cell
    watchdog, the retry loop, and dead-worker recovery — see
    ``docs/fault_injection.md``.  ``progress`` attaches a
    :class:`repro.obs.ProgressEmitter` for live heartbeat telemetry; it
    observes the sweep without changing any row.
    """
    from .engine import GridSpec, run_sweep

    if grid is not None and not isinstance(grid, GridSpec):
        grid = GridSpec.from_mapping(grid)
    return run_sweep(
        grid,
        workers=workers,
        out_dir=out,
        cache_dir=cache_dir,
        use_cache=use_cache,
        resume=resume,
        tracer=tracer,
        faults=faults,
        cell_timeout=cell_timeout,
        retries=retries,
        max_restarts=max_restarts,
        progress=progress,
    )


def bench(
    suite: str = "smoke",
    *,
    repeats: int = 3,
    warmup: int = 1,
    commit: Optional[str] = None,
):
    """Run the named scaling-experiment suite; returns its trajectory rows.

    Rows are schema-versioned dicts (see
    :mod:`repro.obs.bench.trajectory`) and are **not** persisted here —
    append them with :func:`repro.obs.bench.append_rows`, or use
    ``python -m repro bench``, which also runs the regression gate
    (``--check``) and the dashboard (``--report``).
    """
    from .obs.bench import run_suite

    return run_suite(suite, repeats=repeats, warmup=warmup, commit=commit)
