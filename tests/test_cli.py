"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestSolve:
    def test_solve_greedy(self, capsys):
        code = main(["solve", "--family", "cycle", "--n", "8", "--algorithm", "greedy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "maximal: True" in out
        assert "accepts" in out

    def test_solve_proposal_on_random(self, capsys):
        code = main([
            "solve", "--family", "random", "--n", "15", "--delta", "4",
            "--algorithm", "proposal",
        ])
        assert code == 0

    def test_solve_zero_fails(self, capsys):
        code = main(["solve", "--family", "path", "--n", "4", "--algorithm", "zero"])
        out = capsys.readouterr().out
        assert code == 1
        assert "maximal: False" in out

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["solve", "--family", "klein-bottle"])

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["solve", "--algorithm", "oracle"])


class TestAdversary:
    def test_adversary_greedy(self, capsys):
        code = main(["adversary", "--delta", "4", "--algorithm", "greedy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "step 0" in out and "step 2" in out
        assert "Omega(Delta)" in out

    def test_adversary_catches_zero(self, capsys):
        code = main(["adversary", "--delta", "4", "--algorithm", "zero"])
        out = capsys.readouterr().out
        assert code == 1
        assert "incorrect" in out

    def test_deep_verify_flag(self, capsys):
        code = main(["adversary", "--delta", "3", "--algorithm", "greedy", "--deep-verify"])
        assert code == 0


class TestRefute:
    def test_refutes_small_claim(self, capsys):
        code = main(["refute", "--delta", "5", "--algorithm", "greedy", "--claimed-rounds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "isomorphic radius-1" in out

    def test_consistent_claim_exit_code(self, capsys):
        code = main(["refute", "--delta", "4", "--algorithm", "greedy", "--claimed-rounds", "9"])
        assert code == 2


class TestCoverAndOrder:
    def test_cover(self, capsys):
        code = main(["cover", "--family", "regular", "--n", "12", "--delta", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "certified ratio" in out

    def test_order(self, capsys):
        code = main(["order", "--generators", "2", "--radius", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "e" in out
        assert len(out.strip().splitlines()) == 5  # identity + 4 slot neighbours


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert parser.prog == "repro"


class TestExhaustive:
    def test_exhaustive_impossible(self, capsys):
        code = main(["exhaustive", "--delta", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "IMPOSSIBLE" in out


class TestSweep:
    def test_smoke_grid_serial(self, capsys):
        code = main(["sweep", "--smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 cells" in out
        assert "hit-rate" in out

    def test_custom_grid_json_to_stdout(self, capsys):
        code = main(["sweep", "--algorithms", "greedy", "--deltas", "3", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["rows"][0]["key"] == "greedy/d3/ec/s0"
        assert payload["cache"]["hits"] > 0

    def test_delta_range_spec(self, capsys):
        code = main(["sweep", "--algorithms", "greedy", "--deltas", "3..4", "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out.strip().splitlines()[-1])
        assert code == 0
        assert [row["delta"] for row in payload["rows"]] == [3, 4]

    def test_out_dir_and_resume(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["sweep", "--smoke", "--out", out_dir]) == 0
        capsys.readouterr()
        assert main(["sweep", "--smoke", "--out", out_dir, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "(0 computed, 4 resumed)" in out

    def test_bad_delta_spec(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--deltas", "three"])

    def test_min_hit_rate_satisfied(self, capsys):
        code = main(["sweep", "--smoke", "--min-hit-rate", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "canonical-cache hit rate" in out

    def test_min_hit_rate_violated(self, capsys):
        # an impossible floor: the guard must flag it and exit non-zero
        code = main(["sweep", "--smoke", "--min-hit-rate", "1.01"])
        out = capsys.readouterr().out
        assert code == 1
        assert "below required" in out

    def test_deep_chain_for_greedy_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--algorithms", "greedy", "--chain", "po"])


class TestVerify:
    def test_refuted_claim_exit_zero(self, capsys):
        code = main(["verify", "--delta", "4", "--claimed-rounds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "radius-1" in out

    def test_consistent_claim_exit_two(self):
        assert main(["verify", "--delta", "4", "--claimed-rounds", "9"]) == 2

    def test_chain_po_uses_proposal(self, capsys):
        code = main([
            "verify", "--delta", "3", "--claimed-rounds", "1", "--chain", "po", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["kind"] == "locality-violation"
        assert payload["chain"] == "po"

    def test_chain_rejects_other_algorithms(self):
        with pytest.raises(SystemExit):
            main([
                "verify", "--delta", "3", "--claimed-rounds", "1",
                "--chain", "po", "--algorithm", "greedy",
            ])

    def test_json_to_file(self, tmp_path):
        target = tmp_path / "verdict.json"
        main(["verify", "--delta", "4", "--claimed-rounds", "1", "--json", str(target)])
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["kind"] == "locality-violation"
