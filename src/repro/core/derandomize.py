"""Derandomising local algorithms (paper, Appendix B, Lemma 10).

Randomness does not help a local algorithm solve a locally checkable problem
such as maximal FM.  The engine is Lemma 10: for every ``n`` there is an
``n``-element identifier set ``S_n`` and an assignment ``rho_n`` of random
strings such that the *deterministic* algorithm ``A_rho_n`` is correct on
every graph with identifiers from ``S_n``.  The proof is an averaging
argument over disjoint unions: if every assignment failed somewhere, one
could assemble a multi-component graph on which the randomised algorithm
fails with probability arbitrarily close to 1.

This module makes both halves executable for finite universes:

* :func:`find_good_assignment` searches identifier sets and random-string
  assignments until one is correct on *all* graphs over the set;
* :func:`failure_amplification` measures the failure probability on
  disjoint unions of independently sampled bad components, reproducing the
  ``1 - (1 - 1/k)^q`` amplification the proof uses.
"""

from __future__ import annotations

import random
from fractions import Fraction
from itertools import combinations
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = [
    "all_graphs_on",
    "find_good_assignment",
    "failure_amplification",
]

Rho = Dict[int, int]  # identifier -> random seed/string (an int suffices)
#: a correctness oracle: (graph, rho) -> did the derandomised run succeed?
CorrectnessOracle = Callable[["nx.Graph", Rho], bool]


def all_graphs_on(ids: Sequence[int], connected_only: bool = False) -> List["nx.Graph"]:
    """Every simple graph with vertex set exactly ``ids`` (tiny universes only).

    The count is ``2**(n choose 2)``; intended for ``n <= 4`` as in the
    Lemma 10 demonstrations.
    """
    ids = sorted(ids)
    pairs = list(combinations(ids, 2))
    out: List[nx.Graph] = []
    for mask in range(1 << len(pairs)):
        g = nx.Graph()
        g.add_nodes_from(ids)
        for j, (u, v) in enumerate(pairs):
            if mask >> j & 1:
                g.add_edge(u, v)
        if connected_only and not nx.is_connected(g):
            continue
        out.append(g)
    return out


def find_good_assignment(
    correct: CorrectnessOracle,
    id_sets: Iterable[Sequence[int]],
    rng: random.Random,
    rho_bits: int = 30,
    attempts_per_set: int = 64,
    connected_only: bool = False,
) -> Optional[Tuple[List[int], Rho]]:
    """Search for ``(S_n, rho_n)`` making the derandomised algorithm correct
    on every graph over ``S_n`` (Lemma 10, executably).

    ``correct`` runs the algorithm with the supplied random strings on one
    graph and verifies the output.  For each candidate identifier set the
    search samples ``attempts_per_set`` random assignments; per Lemma 10 a
    good pair exists once enough disjoint sets are tried (for reasonable
    algorithms the very first set succeeds).
    """
    for ids in id_sets:
        graphs = all_graphs_on(ids, connected_only=connected_only)
        for _ in range(attempts_per_set):
            rho: Rho = {i: rng.getrandbits(rho_bits) for i in ids}
            if all(correct(g, rho) for g in graphs):
                return sorted(ids), rho
    return None


def failure_amplification(
    correct: CorrectnessOracle,
    bad_graph: "nx.Graph",
    rng: random.Random,
    components: int,
    samples: int = 200,
) -> Fraction:
    """Estimate the failure probability on ``components`` disjoint copies.

    If the algorithm fails on ``bad_graph`` with probability ``p`` under
    fresh randomness, the disjoint union of ``q`` identifier-disjoint copies
    fails with probability ``1 - (1 - p)**q`` — the amplification at the
    heart of Lemma 10's proof.  Returns the empirical failure rate of the
    union over ``samples`` random assignments.
    """
    ids = sorted(bad_graph.nodes())
    failures = 0
    for _ in range(samples):
        failed = False
        for c in range(components):
            # identifier-disjoint copy: shift identifiers per component
            shift = (max(ids) + 1) * c
            copy = nx.relabel_nodes(bad_graph, {v: v + shift for v in ids}, copy=True)
            rho = {v: rng.getrandbits(30) for v in copy.nodes()}
            if not correct(copy, rho):
                failed = True
                break
        failures += failed
    return Fraction(failures, samples)
