"""Isomorphism tests for rooted, edge-coloured neighbourhoods.

Property (P1) of the paper's lower-bound construction (Section 4.1) asserts
that two radius-``i`` neighbourhoods are isomorphic as edge-coloured
structures.  The adversary in :mod:`repro.core.adversary` verifies this claim
mechanically on every inductive step using the functions here.

For trees-with-loops (property (P3): the construction's graphs are trees once
loops are ignored) a rooted, colour-preserving isomorphism is decided by a
*canonical form*: proper edge colouring makes the recursive encoding of a
rooted tree deterministic, so two balls are isomorphic iff their encodings are
equal.  A general (slow) fallback via :mod:`networkx` VF2 is provided for
arbitrary EC-graphs.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

import networkx as nx

from . import soa
from .multigraph import ECGraph
from .neighborhoods import Ball

Node = Hashable

__all__ = [
    "canonical_rooted_form",
    "canonical_form_of",
    "balls_isomorphic",
    "rooted_isomorphic",
    "ec_isomorphic",
    "install_canonical_cache",
    "current_canonical_cache",
    "use_canonical_cache",
]

_LOOP = "loop"
_CUT = "cut"

#: the installed canonical-form memoizer (duck-typed: anything with a
#: ``canonical_form(g, root, compute)`` method, normally a
#: :class:`repro.engine.cache.CanonicalFormCache`); ``None`` disables
#: memoization.  Held here — not in :mod:`repro.engine` — so the graphs
#: layer never imports upwards.
_CANONICAL_CACHE = None


def install_canonical_cache(cache):
    """Install ``cache`` as the ambient canonical-form memoizer.

    Returns the previously installed cache (``None`` when there was none)
    so callers can restore it; prefer :class:`use_canonical_cache` for
    scoped installation.
    """
    global _CANONICAL_CACHE
    previous = _CANONICAL_CACHE
    _CANONICAL_CACHE = cache
    return previous


def current_canonical_cache():
    """The ambient canonical-form cache, or ``None`` when memoization is off."""
    return _CANONICAL_CACHE


class use_canonical_cache:
    """Install a canonical-form cache for the duration of a ``with`` block."""

    def __init__(self, cache):
        self._cache = cache
        self._previous = None

    def __enter__(self):
        self._previous = install_canonical_cache(self._cache)
        return self._cache

    def __exit__(self, exc_type, exc, tb) -> bool:
        install_canonical_cache(self._previous)
        return False


def canonical_rooted_form(g: ECGraph, root: Node, _from_eid: Optional[int] = None) -> Tuple:
    """Canonical form of a rooted EC tree-with-loops.

    Recursively encodes the structure below ``root``: for each incident edge
    (other than the one we arrived by) the entry is ``(colour, "loop")`` for a
    loop and ``(colour, <child encoding>)`` otherwise.  Entries are sorted by
    colour; properness guarantees colours are distinct, so the encoding is
    well-defined and two rooted trees-with-loops are colour-isomorphic iff
    their canonical forms are equal.

    Raises ``ValueError`` if the graph (ignoring loops) contains a cycle,
    since the recursion would not terminate on such inputs.
    """
    entries = []
    for e in g.incident_edges(root):
        if _from_eid is not None and e.eid == _from_eid:
            entries.append((e.color, _CUT))
            continue
        if e.is_loop:
            entries.append((e.color, _LOOP))
        else:
            child = e.other(root)
            entries.append((e.color, canonical_rooted_form(g, child, _from_eid=e.eid)))
    return tuple(sorted(entries, key=lambda item: (repr(item[0]), repr(item[1]))))


def _compute_canonical(g: ECGraph, root: Node) -> Tuple:
    """The compute path under a cache miss: the plan-cached array kernel
    (:func:`repro.graphs.soa.canonical_form_fast`) when the graph's frozen
    kernel admits a SoA snapshot, the reference recursion otherwise.  Both
    produce identical tuples; the recursion remains the semantics of
    record."""
    form = soa.canonical_form_fast(g, root)
    if form is not None:
        return form
    return canonical_rooted_form(g, root)


def canonical_form_of(g: ECGraph, root: Node) -> Tuple:
    """Canonical rooted form of a tree-with-loops, through the ambient cache.

    Equal to :func:`canonical_rooted_form` but consults the installed
    canonical-form cache (:func:`install_canonical_cache`) first and
    computes misses over the columnar SoA snapshot; the hot path of
    ball-isomorphism checks and of the parallel sweep engine.
    """
    cache = _CANONICAL_CACHE
    if cache is not None:
        return cache.canonical_form(g, root, _compute_canonical)
    return _compute_canonical(g, root)


def rooted_isomorphic(g1: ECGraph, r1: Node, g2: ECGraph, r2: Node) -> bool:
    """Whether two rooted EC-graphs admit a colour- and root-preserving isomorphism.

    Fast path: if both graphs are trees-with-loops, compare (cached)
    canonical forms.  Otherwise fall back to VF2 on auxiliary simple graphs
    with a root marker.
    """
    if g1.is_tree_ignoring_loops() and g2.is_tree_ignoring_loops():
        return canonical_form_of(g1, r1) == canonical_form_of(g2, r2)
    return _vf2_isomorphic(g1, g2, roots=(r1, r2))


def balls_isomorphic(b1: Ball, b2: Ball) -> bool:
    """Whether two extracted balls are isomorphic as rooted EC structures."""
    if b1.radius != b2.radius:
        return False
    return rooted_isomorphic(b1.graph, b1.root, b2.graph, b2.root)


def ec_isomorphic(g1: ECGraph, g2: ECGraph) -> bool:
    """Unrooted colour-preserving isomorphism between two EC-graphs (VF2)."""
    return _vf2_isomorphic(g1, g2, roots=None)


def _vf2_isomorphic(g1: ECGraph, g2: ECGraph, roots) -> bool:
    """VF2 fallback; encodes loops and parallel edges via subdivision nodes."""
    n1 = _to_marked_nx(g1, roots[0] if roots else None)
    n2 = _to_marked_nx(g2, roots[1] if roots else None)
    nm = nx.algorithms.isomorphism.categorical_node_match("kind", None)
    return nx.is_isomorphic(n1, n2, node_match=nm)


def _to_marked_nx(g: ECGraph, root) -> "nx.Graph":
    """Encode an EC multigraph as a simple graph: every edge (including loops
    and parallels) becomes a subdivision node labelled by its colour."""
    out = nx.Graph()
    for v in g.nodes():
        kind = ("root",) if root is not None and v == root else ("node",)
        out.add_node(("n", v), kind=kind)
    for e in g.edges():
        mid = ("e", e.eid)
        out.add_node(mid, kind=("edge", e.color, e.is_loop))
        out.add_edge(("n", e.u), mid)
        if not e.is_loop:
            out.add_edge(("n", e.v), mid)
    return out
