"""Live sweep progress telemetry: heartbeat JSONL events + a TTY status line.

The engine drives a :class:`ProgressEmitter` while a sweep runs (see
``repro.engine.pool``): one ``start`` event, throttled ``heartbeat`` events
as cells finish, and one forced ``final`` event whose counts are exact —
the final ``done`` always equals the ``"cells"`` count of the sweep's
``summary.json``.  Events are appended to a JSONL file (one JSON object per
line, flushed per event, so a killed sweep still leaves a readable event
log) and optionally rendered as a single ``\\r``-rewritten status line on a
TTY stream.

Progress observes the sweep, it never feeds back into it: result rows are
byte-identical with the emitter attached or absent, and heartbeat counts on
the parallel path are best-effort approximations read from the result store
(``final`` is the only event with exactness guarantees).

This module is a sanctioned wall-clock reader (``LintConfig.clock_modules``):
the clock is injected and defaults to :func:`time.perf_counter`, mirroring
the tracer's discipline, so tests drive the throttle with a fake clock.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Optional

__all__ = [
    "PROGRESS_SCHEMA_VERSION",
    "ProgressEmitter",
    "NullProgressEmitter",
    "NULL_PROGRESS",
    "read_progress_events",
]

PROGRESS_SCHEMA_VERSION = 1


class ProgressEmitter:
    """Emit sweep heartbeat events to a JSONL file and/or a TTY stream.

    ``interval`` throttles heartbeats (seconds of injected-clock time
    between emitted events); ``start``/``final`` events and ``force=True``
    updates always emit.  Either sink may be ``None``.
    """

    def __init__(
        self,
        path=None,
        stream=None,
        interval: float = 1.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.stream = stream
        self.interval = interval
        self.events = 0
        self._clock = clock if clock is not None else time.perf_counter
        self._fh = None
        self._t0: Optional[float] = None
        self._last_emit: Optional[float] = None
        self._finished = False
        self._tty_dirty = False
        self.total = 0
        self.resumed = 0
        self._last = {"done": 0, "failed": 0, "retries": 0}

    def start(self, total: int, resumed: int = 0) -> None:
        """Open the sinks and emit the ``start`` event."""
        self.total = total
        self.resumed = resumed
        self._t0 = self._clock()
        if self.path is not None:
            self._fh = self.path.open("w", encoding="utf-8")
        self._emit("start", done=resumed, force=True)

    def update(
        self,
        done: int,
        failed: int = 0,
        retries: int = 0,
        cache_hits: int = 0,
        cache_lookups: int = 0,
        force: bool = False,
    ) -> None:
        """Emit a ``heartbeat`` unless one was emitted less than
        ``interval`` seconds ago (``force=True`` bypasses the throttle)."""
        if self._t0 is None or self._finished:
            return
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self.interval
        ):
            return
        self._emit(
            "heartbeat",
            done=done,
            failed=failed,
            retries=retries,
            cache_hits=cache_hits,
            cache_lookups=cache_lookups,
            force=True,
            now=now,
        )

    def finish(
        self,
        done: int,
        failed: int = 0,
        retries: int = 0,
        cache_hits: int = 0,
        cache_lookups: int = 0,
    ) -> None:
        """Emit the exact ``final`` event and close the sinks."""
        if self._t0 is None or self._finished:
            return
        self._emit(
            "final",
            done=done,
            failed=failed,
            retries=retries,
            cache_hits=cache_hits,
            cache_lookups=cache_lookups,
            force=True,
        )
        self._finished = True
        self.close()

    def close(self) -> None:
        """Close the sinks; emits an ``aborted`` event first if the sweep
        never reached :meth:`finish` (e.g. it raised)."""
        if self._t0 is not None and not self._finished:
            self._emit("aborted", force=True, **self._last)
            self._finished = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self.stream is not None and self._tty_dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._tty_dirty = False

    # -- internals ---------------------------------------------------------

    def _emit(
        self,
        kind: str,
        done: int = 0,
        failed: int = 0,
        retries: int = 0,
        cache_hits: int = 0,
        cache_lookups: int = 0,
        force: bool = False,
        now: Optional[float] = None,
    ) -> None:
        del force  # callers already decided; kept for call-site symmetry
        now = self._clock() if now is None else now
        done = max(0, min(done, self.total))
        pending = max(0, self.total - done - failed)
        elapsed = max(0.0, now - self._t0)
        computed = max(0, done - self.resumed)
        rate = computed / elapsed if elapsed > 0 else None
        eta = pending / rate if rate else None
        hit_rate = cache_hits / cache_lookups if cache_lookups else None
        event = {
            "schema": PROGRESS_SCHEMA_VERSION,
            "event": kind,
            "elapsed_s": round(elapsed, 6),
            "total": self.total,
            "done": done,
            "pending": pending,
            "failed": failed,
            "resumed": self.resumed,
            "retries": retries,
            "cache_hits": cache_hits,
            "cache_lookups": cache_lookups,
            "cache_hit_rate": hit_rate,
            "rows_per_s": round(rate, 3) if rate is not None else None,
            "eta_s": round(eta, 3) if eta is not None else None,
        }
        self._last = {"done": done, "failed": failed, "retries": retries}
        self._last_emit = now
        self.events += 1
        if self._fh is not None:
            self._fh.write(json.dumps(event, sort_keys=True) + "\n")
            self._fh.flush()
        if self.stream is not None:
            self._render_tty(event)

    def _render_tty(self, event: dict) -> None:
        bits = [
            f"sweep {event['done']}/{event['total']} done",
            f"{event['failed']} failed",
            f"{event['retries']} retries",
        ]
        if event["cache_hit_rate"] is not None:
            bits.append(f"hit {event['cache_hit_rate'] * 100:.0f}%")
        if event["rows_per_s"] is not None:
            bits.append(f"{event['rows_per_s']:.1f} rows/s")
        if event["eta_s"] is not None:
            bits.append(f"eta {event['eta_s']:.1f}s")
        line = f"[{event['event']}] " + " | ".join(bits)
        if getattr(self.stream, "isatty", lambda: False)():
            # one rewritten line; pad so a shorter line fully overwrites
            self.stream.write("\r" + line.ljust(79))
            self._tty_dirty = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()


class NullProgressEmitter:
    """No-op stand-in the engine uses when no progress sink is wanted."""

    __slots__ = ()

    path = None
    stream = None
    interval = 1.0
    events = 0

    def start(self, total: int, resumed: int = 0) -> None:
        pass

    def update(self, done: int, failed: int = 0, retries: int = 0,
               cache_hits: int = 0, cache_lookups: int = 0,
               force: bool = False) -> None:
        pass

    def finish(self, done: int, failed: int = 0, retries: int = 0,
               cache_hits: int = 0, cache_lookups: int = 0) -> None:
        pass

    def close(self) -> None:
        pass


NULL_PROGRESS = NullProgressEmitter()


def read_progress_events(path) -> list:
    """Read a progress JSONL file back as a list of event dicts.

    Tolerant of a torn final line (the signature of a killed writer):
    unparsable lines are skipped.
    """
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events
