"""Local checkability of maximal fractional matchings (paper, Sections 2, 5.3).

The maximal-FM problem is *locally checkable*: a 1-round distributed
algorithm can verify a proposed solution.  Each node already knows the
weights of its incident edges; after a single exchange of saturation flags
every node can confirm (a) it is not overloaded and (b) each incident edge
has a saturated endpoint.  This module provides both the distributed checker
(:class:`LocalFMVerifier`, run in the simulator — demonstrating
PO-checkability concretely) and a centralised wrapper used throughout the
test-suite.

PO-checkability is what transfers feasibility through lifts in the PO <= OI
simulation: a PO-checkable solution is feasible on ``G`` iff it is feasible
on any lift of ``G`` (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

from ..graphs.multigraph import ECGraph
from ..local.algorithm import DistributedAlgorithm
from ..local.context import NodeContext
from ..local.runtime import ECNetwork, run
from .fm import FractionalMatching, ONE

Node = Hashable
Color = Hashable

__all__ = ["LocalFMVerifier", "VerifierVerdict", "verify_distributed", "check_maximal_fm"]


@dataclass(frozen=True)
class VerifierVerdict:
    """Per-node verdict of the distributed checker."""

    feasible: bool
    maximal: bool

    @property
    def ok(self) -> bool:
        """Whether the node accepts the solution locally."""
        return self.feasible and self.maximal


class LocalFMVerifier(DistributedAlgorithm):
    """1-round distributed verifier for maximal fractional matchings.

    Initialised with the proposed solution as per-node colour->weight maps
    (the problem's output encoding).  Round 1: each node sends its own
    saturation flag and its announced weight on every port; it then checks

    * consistency — the neighbour announced the same weight for the shared
      edge,
    * feasibility — its own load is at most 1,
    * maximality — each incident edge has a saturated endpoint (for a loop
      the echo returns the node's own flag, which is exactly the Figure 4
      semantics: the neighbour across a loop is a copy of oneself).
    """

    model = "EC"

    #: the verifier indexes its *own input* (the proposed solution is handed
    #: to each node as its certificate); ``ctx.node`` is bookkeeping here,
    #: not information — the verdict depends only on the node's weights and
    #: the one-round exchange.
    sanitizer_allow = frozenset({"node"})

    def __init__(self, proposal: Mapping[Node, Mapping[Color, Fraction]]):
        self.proposal = {v: dict(cw) for v, cw in proposal.items()}

    def initial_state(self, ctx: NodeContext) -> Dict[str, Any]:
        weights = {c: Fraction(self.proposal[ctx.node][c]) for c in ctx.ports}  # repro: noqa[locality]
        load = sum(weights.values(), Fraction(0))
        return {"weights": weights, "load": load, "verdict": None}

    def send(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Any]:
        if state["verdict"] is not None:
            return {}
        saturated = state["load"] == ONE
        return {c: (saturated, state["weights"][c]) for c in ctx.ports}

    def receive(self, state: Dict[str, Any], ctx: NodeContext, inbox: Dict[Any, Any]) -> Dict[str, Any]:
        if state["verdict"] is not None:
            return state
        feasible = Fraction(0) <= state["load"] <= ONE and all(
            Fraction(0) <= w <= ONE for w in state["weights"].values()
        )
        maximal = True
        self_saturated = state["load"] == ONE
        for c in ctx.ports:
            their_saturated, their_weight = inbox[c]
            if their_weight != state["weights"][c]:
                feasible = False  # endpoints disagree on the edge weight
            if not (self_saturated or their_saturated):
                maximal = False
        state = dict(state)
        state["verdict"] = VerifierVerdict(feasible=feasible, maximal=maximal)
        return state

    def output(self, state: Dict[str, Any], ctx: NodeContext) -> Optional[VerifierVerdict]:
        return state["verdict"]


def verify_distributed(
    g: ECGraph, proposal: Mapping[Node, Mapping[Color, Fraction]]
) -> Tuple[bool, Dict[Node, VerifierVerdict], int]:
    """Run the 1-round distributed checker on ``g``.

    Returns ``(accepted_everywhere, per-node verdicts, rounds)``; the round
    count is always 1, demonstrating local checkability.
    """
    from ..obs.tracer import current_tracer

    with current_tracer().span(
        "matching.verify_distributed", nodes=g.num_nodes(), edges=g.num_edges()
    ) as span:
        result = run(ECNetwork(g), LocalFMVerifier(proposal), max_rounds=2)
        verdicts: Dict[Node, VerifierVerdict] = result.outputs
        accepted = all(v.ok for v in verdicts.values())
        span.set(accepted=accepted, rounds=result.rounds)
    return accepted, verdicts, result.rounds


def check_maximal_fm(fm: FractionalMatching) -> List[str]:
    """Centralised check; returns human-readable problems (empty iff valid)."""
    problems = fm.feasibility_violations()
    for eid in fm.maximality_violations():
        e = fm.graph.edge(eid)
        problems.append(
            f"edge {eid} ({e.u!r}-{e.v!r}, colour {e.color!r}) has no saturated endpoint"
        )
    return problems
