"""Process-parallel sweep execution with caching, retries, and recovery.

:func:`run_sweep` shards a grid's pending cells round-robin across a
process pool (spawn context: workers import the package fresh, no inherited
interpreter state).  Each worker shard runs under

* its own :class:`repro.obs.Tracer` — one ``engine.shard`` span wrapping an
  ``engine.cell`` span per grid point, merged afterwards into a single
  trace document (:func:`repro.obs.export.merge_trace_documents`);
* an installed :class:`repro.engine.cache.CanonicalFormCache`, so every
  witness-ball canonicalisation inside the adversary is memoized; pointing
  workers at a shared on-disk store (``cache_dir`` / ``$REPRO_CACHE_DIR``)
  lets shards reuse each other's forms;
* a :class:`repro.engine.store.ResultStore` shard file, appended row by
  row, which is what makes a killed sweep resumable.

Rows carry no wall-clock data and are merged in cell-key order, so a sweep
result is byte-for-byte identical however many workers produced it — and,
by the same construction, however many faults it survived on the way.

Fault tolerance
---------------
The engine assumes workers can die, cells can hang, and disks can lie:

* every cell runs under an optional watchdog (``cell_timeout`` seconds) and
  a bounded, deterministically backed-off retry loop (``retries``); a cell
  whose error survives every retry surfaces as a :class:`CellExecutionError`
  that **names the failing cell** instead of a bare pool teardown;
* a shard whose worker dies (SIGKILL, crash) or raises is detected by the
  coordinator, which reads back whatever rows the dead worker had already
  flushed and **reassigns only the missing cells** to a fresh round of
  workers (``max_restarts`` rounds, ``engine.recovery`` spans);
* cache and store damage degrades gracefully (see their modules) and is
  exercised end to end by :mod:`repro.engine.faults` — pass ``faults=``
  (a :class:`~repro.engine.faults.FaultPlan`) to replay a failure scenario
  deterministically.

``time.sleep`` here implements only the retry backoff and never feeds any
model output; the module is a sanctioned clock user
(``LintConfig.clock_modules``) for exactly that line.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..graphs.isomorphism import use_canonical_cache
from ..obs.export import merge_trace_documents, trace_document
from ..obs.progress import NULL_PROGRESS, NullProgressEmitter
from ..obs.tracer import Tracer, current_tracer, use_tracer
from .cache import CacheStats, CanonicalFormCache
from .faults import FaultInjector, FaultPlan, InjectedWorkerError, as_plan, use_faults
from .grid import Cell, GridSpec, expand, run_cell
from .store import ResultStore

__all__ = [
    "CellExecutionError",
    "CellTimeout",
    "SweepResult",
    "run_sweep",
    "verify_store",
]

#: deterministic retry backoff: attempt k sleeps k * _BACKOFF_BASE seconds
_BACKOFF_BASE = 0.02


class CellExecutionError(RuntimeError):
    """A cell failed after every retry; names the failing grid point."""

    def __init__(self, key: str, algorithm: str = "?", delta: int = -1,
                 chain: str = "?", seed: int = -1, cause: str = ""):
        self.key = key
        self.algorithm = algorithm
        self.delta = delta
        self.chain = chain
        self.seed = seed
        self.cause = cause
        super().__init__(
            f"cell {key} (algorithm={algorithm}, delta={delta}, chain={chain}, "
            f"seed={seed}) failed: {cause}"
        )

    def __reduce__(self):  # exceptions cross the process boundary pickled
        return (type(self), (self.key, self.algorithm, self.delta, self.chain, self.seed, self.cause))

    @classmethod
    def for_cell(cls, cell: Cell, cause: BaseException) -> "CellExecutionError":
        return cls(
            cell.key, cell.algorithm, cell.delta, cell.chain, cell.seed,
            f"{type(cause).__name__}: {cause}",
        )

    def as_record(self) -> dict:
        """The JSON-ready account recorded in ``summary.json``'s ``failed``."""
        return {
            "key": self.key,
            "algorithm": self.algorithm,
            "delta": self.delta,
            "chain": self.chain,
            "seed": self.seed,
            "error": self.cause,
        }


class CellTimeout(RuntimeError):
    """The per-cell watchdog fired before the cell finished."""

    def __init__(self, key: str, timeout: float):
        self.key = key
        self.timeout = timeout
        super().__init__(f"cell {key} exceeded its {timeout:g}s watchdog")

    def __reduce__(self):
        return (type(self), (self.key, self.timeout))


@dataclass
class SweepResult:
    """Outcome of one sweep: merged rows, cache stats, merged trace."""

    grid: dict
    rows: List[dict]
    workers: int
    cache: CacheStats = field(default_factory=CacheStats)
    trace: Optional[dict] = None
    resumed: int = 0
    out_dir: Optional[str] = None
    #: restart/reassignment account: zeros on a fault-free run
    recovery: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    def summary(self) -> str:
        """One-line human account of the sweep."""
        fresh = len(self.rows) - self.resumed
        line = (
            f"{len(self.rows)} cells ({fresh} computed, {self.resumed} resumed) "
            f"on {self.workers} worker(s); canonical-form cache hit-rate "
            f"{self.cache.hit_rate:.0%} ({self.cache.hits}/{self.cache.lookups})"
        )
        restarts = self.recovery.get("restarts", 0)
        if restarts:
            line += (
                f"; recovered in {restarts} restart(s) "
                f"({self.recovery.get('reassigned', 0)} cells reassigned, "
                f"{self.recovery.get('worker_losses', 0)} worker(s) lost)"
            )
        return line


def _shard_cells(cells: List[Cell], shards: int) -> List[List[Cell]]:
    """Deterministic round-robin split; empty shards are dropped."""
    buckets: List[List[Cell]] = [[] for _ in range(max(shards, 1))]
    for index, cell in enumerate(cells):
        buckets[index % len(buckets)].append(cell)
    return [bucket for bucket in buckets if bucket]


def _execute_cell(
    cell: Cell,
    tracer: Tracer,
    injector: Optional[FaultInjector],
    cell_timeout: Optional[float],
    retries: int,
) -> dict:
    """One cell under the watchdog and the bounded retry loop.

    Raises :class:`CellExecutionError` when the last attempt still fails;
    :class:`InjectedWorkerError` passes straight through — a simulated
    worker crash is the *coordinator's* problem, not a per-cell retry.
    """
    last: Optional[BaseException] = None
    for attempt in range(retries + 1):
        if attempt:
            tracer.metrics.counter("engine.cell_retry").inc()
            time.sleep(_BACKOFF_BASE * attempt)  # deterministic backoff schedule
        try:
            return _run_cell_watchdogged(cell, tracer, injector, attempt, cell_timeout)
        except InjectedWorkerError:
            raise
        except CellTimeout as exc:
            tracer.metrics.counter("engine.cell_timeout").inc()
            last = exc
        except Exception as exc:  # noqa: BLE001 - every failure is named below
            last = exc
    raise CellExecutionError.for_cell(cell, last if last is not None else RuntimeError("unknown"))


def _run_cell_watchdogged(
    cell: Cell,
    tracer: Tracer,
    injector: Optional[FaultInjector],
    attempt: int,
    cell_timeout: Optional[float],
) -> dict:
    """Run one cell, bounded by ``cell_timeout`` seconds when set.

    The timed path computes on a worker thread against a private tracer;
    on success the finished spans are grafted back under the shard span, on
    timeout the abandoned attempt's spans are discarded with it.  Without a
    timeout the cell runs inline — the exact pre-fault-hardening hot path.
    """

    def body(body_tracer: Tracer) -> dict:
        if injector is not None:
            injector.on_cell_body(cell.key, attempt)
        return run_cell(cell, tracer=body_tracer)

    if cell_timeout is None:
        return body(tracer)

    sub = Tracer()
    outcome: List[dict] = []
    failure: List[BaseException] = []

    def target() -> None:
        try:
            outcome.append(body(sub))
        except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
            failure.append(exc)

    watchdogged = threading.Thread(target=target, daemon=True, name=f"cell-{cell.key}")
    watchdogged.start()
    watchdogged.join(cell_timeout)
    if watchdogged.is_alive():
        raise CellTimeout(cell.key, cell_timeout)
    tracer.graft(sub.roots)
    if failure:
        raise failure[0]
    return outcome[0]


def _run_shard(payload: dict, on_row=None) -> Tuple[int, List[dict], dict, dict]:
    """Execute one shard of cells; the unit of work a pool worker receives.

    Returns ``(shard_index, rows, trace_document, cache_stats)``.  Must stay
    a module-level function: the spawn context pickles it by reference.
    ``on_row`` is an in-process-only hook — serial rounds pass the sweep's
    progress callback; pool workers always run with the default ``None``
    (a callback could not cross the spawn boundary anyway).
    """
    shard_index = payload["shard"]
    cells = [Cell.from_dict(d) for d in payload["cells"]]
    store = ResultStore(payload["out_dir"]) if payload["out_dir"] else None
    plan = FaultPlan.from_dict(payload["plan"]) if payload.get("plan") else None
    injector = (
        FaultInjector(plan, shard=shard_index, in_worker=payload.get("in_worker", False))
        if plan is not None
        else None
    )
    tracer = Tracer()
    cache = CanonicalFormCache(directory=payload["cache_dir"])
    rows: List[dict] = []
    with use_tracer(tracer), use_faults(injector):
        guard = use_canonical_cache(cache) if payload["use_cache"] else nullcontext()
        with guard:
            with tracer.span(
                "engine.shard",
                shard=shard_index,
                cells=len(cells),
                round=payload.get("round", 0),
            ) as span:
                for cell in cells:
                    if injector is not None:
                        injector.on_worker_cell(cell.key, payload.get("round", 0))
                    row = _execute_cell(
                        cell, tracer, injector, payload.get("cell_timeout"), payload.get("retries", 1)
                    )
                    rows.append(row)
                    if store is not None:
                        store.append(shard_index, row)
                    if on_row is not None:
                        on_row(row, cache.stats)
                span.set(
                    cache_hits=cache.stats.hits,
                    cache_misses=cache.stats.misses,
                )
    doc = trace_document(tracer, command=f"sweep shard {shard_index}")
    return shard_index, rows, doc, cache.stats.as_dict()


def _shard_payloads(
    shards: List[List[Cell]],
    store: Optional[ResultStore],
    cache_dir,
    use_cache: bool,
    plan: Optional[FaultPlan],
    round_: int,
    cell_timeout: Optional[float],
    retries: int,
    in_worker: bool,
) -> List[dict]:
    return [
        {
            "shard": index,
            "cells": [cell.as_dict() for cell in bucket],
            "out_dir": str(store.directory) if store else None,
            "cache_dir": str(cache_dir) if cache_dir else None,
            "use_cache": use_cache,
            "plan": plan.as_dict() if plan is not None else None,
            "round": round_,
            "cell_timeout": cell_timeout,
            "retries": retries,
            "in_worker": in_worker,
        }
        for index, bucket in enumerate(shards)
    ]


def run_sweep(
    grid: Union[GridSpec, Mapping, None] = None,
    *,
    workers: int = 0,
    out_dir=None,
    cache_dir=None,
    use_cache: bool = True,
    resume: bool = False,
    tracer=None,
    faults=None,
    cell_timeout: Optional[float] = None,
    retries: int = 1,
    max_restarts: int = 2,
    progress=None,
) -> SweepResult:
    """Run every cell of ``grid``, sharded over ``workers`` processes.

    Parameters
    ----------
    grid:
        A :class:`GridSpec`, a plain mapping of axes, or ``None`` for the
        default E1 grid.
    workers:
        ``0`` or ``1`` runs serially in-process (no subprocesses — the
        baseline the parallel path must reproduce byte-identically);
        ``n >= 2`` spawns ``n`` pool workers.
    out_dir:
        Results directory (JSONL shards, ``summary.json``, ``trace.json``).
        ``None`` keeps everything in memory — such a sweep cannot resume,
        and a lost worker's finished cells must be recomputed instead of
        read back.
    cache_dir:
        On-disk canonical-form store shared by all workers; defaults to
        ``$REPRO_CACHE_DIR`` when set (workers always get an in-memory LRU).
    use_cache:
        ``False`` disables canonical-form memoization entirely.
    resume:
        Skip cells whose rows already sit in ``out_dir``'s shards; their
        persisted rows are merged into the result untouched (rows for cells
        outside this grid are ignored).
    tracer:
        Parent tracer for the coordinating ``engine.sweep`` span; defaults
        to the ambient tracer.
    faults:
        A :class:`~repro.engine.faults.FaultPlan` (or its dict form, or a
        path to its JSON file) replayed deterministically during the sweep.
    cell_timeout:
        Per-cell watchdog in seconds; ``None`` (default) disables it.
    retries:
        Extra attempts per cell after a timeout or error (default 1).
    max_restarts:
        Rounds of dead-worker recovery: each round reassigns only the
        cells the lost shards had not yet persisted (default 2).
    progress:
        A :class:`repro.obs.progress.ProgressEmitter` fed heartbeat events
        while the sweep runs (serial rounds report per row; parallel rounds
        are polled from the result store).  The emitter only observes the
        sweep — rows are byte-identical with or without it.  ``None``
        (default) uses the shared no-op emitter.
    """
    if grid is None:
        spec = GridSpec()
    elif isinstance(grid, GridSpec):
        spec = grid
    else:
        spec = GridSpec.from_mapping(grid)
    tracer = tracer if tracer is not None else current_tracer()
    plan = as_plan(faults)
    cells = expand(spec)
    cell_keys = {cell.key for cell in cells}
    store = ResultStore(out_dir) if out_dir else None

    done: Dict[str, dict] = {}
    if resume:
        if store is None:
            raise ValueError("resume=True needs an out_dir to read shards from")
        done = {key: row for key, row in store.completed().items() if key in cell_keys}
    pending = [cell for cell in cells if cell.key not in done]

    parallel = workers >= 2
    collected: Dict[str, dict] = {}
    shard_docs: List[dict] = []
    stats_dicts: List[dict] = []
    recovery = {"restarts": 0, "reassigned": 0, "worker_losses": 0}
    failures: List[Tuple[dict, BaseException]] = []

    progress = progress if progress is not None else NULL_PROGRESS
    live = {"done": len(done)}

    def _note_row(row, cache_stats) -> None:
        # serial rounds only: exact per-row heartbeats (closure-local state)
        live["done"] += 1
        progress.update(
            live["done"],
            cache_hits=cache_stats.hits,
            cache_lookups=cache_stats.lookups,
        )

    monitor = None
    if parallel and store is not None and not isinstance(progress, NullProgressEmitter):
        monitor = _ProgressMonitor(progress, store)

    progress.start(total=len(cells), resumed=len(done))
    if monitor is not None:
        monitor.start()
    try:
        with tracer.span(
            "engine.sweep",
            cells=len(cells),
            pending=len(pending),
            resumed=len(done),
            workers=workers,
        ) as sweep_span:
            remaining = list(pending)
            round_ = 0
            while remaining:
                span_ctx = (
                    tracer.span("engine.recovery", round=round_, cells=len(remaining))
                    if round_ > 0
                    else nullcontext()
                )
                # the last restart round runs in-process: recovery must not be
                # starved by an environment that keeps killing fresh workers
                parallel_round = parallel and round_ < max_restarts
                with span_ctx:
                    shards = _shard_cells(remaining, workers if parallel_round else 1)
                    payloads = _shard_payloads(
                        shards, store, cache_dir, use_cache, plan, round_,
                        cell_timeout, retries, in_worker=parallel_round,
                    )
                    outcomes, failures = _run_round(
                        payloads,
                        workers if parallel_round else 0,
                        on_row=None if parallel_round else _note_row,
                    )
                    for _, rows, doc, stats in sorted(outcomes, key=lambda item: item[0]):
                        for row in rows:
                            collected.setdefault(row["key"], row)
                        shard_docs.append(doc)
                        stats_dicts.append(stats)
                # round boundary: forced heartbeat with best-known counts
                live["done"] = len(done) + len(collected)
                round_stats = CacheStats.merged(stats_dicts)
                progress.update(
                    live["done"],
                    cache_hits=round_stats.hits,
                    cache_lookups=round_stats.lookups,
                    force=True,
                )
                if not failures:
                    break
                # dead-worker recovery: read back what the lost shards already
                # flushed, then reassign only the cells still missing
                persisted = store.completed() if store is not None else {}
                for key, row in persisted.items():
                    if key in cell_keys and key not in done:
                        collected.setdefault(key, row)
                remaining = [cell for cell in remaining if cell.key not in collected and cell.key not in done]
                recovery["worker_losses"] += sum(1 for _, exc in failures if _is_worker_loss(exc))
                if not remaining:
                    # the dead shard had already flushed every cell it owed
                    break
                if round_ >= max_restarts:
                    _abort_sweep(store, spec, done, collected, stats_dicts, workers, recovery, failures)
                recovery["restarts"] += 1
                recovery["reassigned"] += len(remaining)
                tracer.metrics.counter("engine.sweep_restart").inc()
                round_ += 1

            cache_stats = CacheStats.merged(stats_dicts)
            sweep_span.set(
                cache_hits=cache_stats.hits,
                cache_misses=cache_stats.misses,
                cache_hit_rate=round(cache_stats.hit_rate, 4),
                restarts=recovery["restarts"],
            )

        all_rows = sorted(
            _dedup_rows(done, collected), key=lambda row: row.get("key", "")
        )
        merged = merge_trace_documents(
            shard_docs,
            command=f"sweep ({len(cells)} cells, {workers} workers)",
            extra={"cache": cache_stats.as_dict(), "recovery": recovery},
        )
        result = SweepResult(
            grid=spec.as_dict(),
            rows=all_rows,
            workers=workers,
            cache=cache_stats,
            trace=merged,
            resumed=len(done),
            out_dir=str(store.directory) if store else None,
            recovery=recovery,
        )
        if store is not None:
            store.write_summary(
                spec.as_dict(),
                all_rows,
                cache_stats=cache_stats.as_dict(),
                workers=workers,
                recovery=recovery,
            )
            store.trace_path.write_text(
                json.dumps(merged, indent=2, default=str) + "\n", encoding="utf-8"
            )
        if monitor is not None:
            monitor.stop()
        # the final event is exact by construction: `done` is the merged row
        # count — the same number summary.json records as "cells"
        progress.finish(
            done=len(all_rows),
            failed=0,
            retries=_merged_counter_total(merged, "engine.cell_retry"),
            cache_hits=cache_stats.hits,
            cache_lookups=cache_stats.lookups,
        )
        return result
    finally:
        if monitor is not None:
            monitor.stop()
        progress.close()


class _ProgressMonitor:
    """Background poller feeding heartbeats while pool workers run.

    The coordinator cannot observe worker rows directly (shards only report
    back when they finish), so parallel-round heartbeats poll the result
    store's cheap line count — what the workers have flushed so far.  The
    counts are an approximation refined by the exact ``final`` event; the
    emitter clamps them to the sweep total.  The thread target is a bound
    method touching only instance state, the engine-concurrency lint's
    sanctioned shape.
    """

    def __init__(self, progress, store: ResultStore):
        self._progress = progress
        self._store = store
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._poll, daemon=True, name="sweep-progress"
        )

    def start(self) -> None:
        self._thread.start()

    def _poll(self) -> None:
        interval = max(0.05, float(self._progress.interval))
        while not self._stop_event.wait(interval):
            self._progress.update(self._store.count_rows())

    def stop(self) -> None:
        self._stop_event.set()
        self._thread.join(timeout=2.0)


def _merged_counter_total(merged_doc: dict, name: str) -> int:
    """Total of one counter across a merged trace document's metric rows."""
    return sum(
        row.get("value", 0)
        for row in merged_doc.get("metrics", {}).get("counters", [])
        if row.get("name") == name
    )


def _is_worker_loss(exc: BaseException) -> bool:
    """Whether a shard failure means the worker process itself died."""
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(exc, (BrokenProcessPool, InjectedWorkerError))


def _run_round(
    payloads: List[dict], workers: int, on_row=None
) -> Tuple[List[Tuple[int, List[dict], dict, dict]], List[Tuple[dict, BaseException]]]:
    """Execute one round of shard payloads; never raises on shard failure.

    Returns ``(outcomes, failures)`` where each failure pairs the payload
    whose shard did not finish with the exception that stopped it — a
    SIGKILLed worker surfaces as ``BrokenProcessPool`` on every future the
    broken pool still owed.  ``on_row`` only reaches the in-process serial
    path; pool workers never see it.
    """
    outcomes: List[Tuple[int, List[dict], dict, dict]] = []
    failures: List[Tuple[dict, BaseException]] = []
    if workers >= 2 and payloads:
        from concurrent.futures import ProcessPoolExecutor

        # spawn, not fork: workers must re-import the package so no
        # half-initialised interpreter state (or installed caches/tracers)
        # leaks across the process boundary
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(payloads)), mp_context=context
        ) as pool:
            futures = [(pool.submit(_run_shard, payload), payload) for payload in payloads]
            for future, payload in futures:
                try:
                    outcomes.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - triaged by the caller
                    failures.append((payload, exc))
    else:
        for payload in payloads:
            try:
                outcomes.append(_run_shard(payload, on_row))
            except (InjectedWorkerError, CellExecutionError, CellTimeout) as exc:
                failures.append((payload, exc))
    return outcomes, failures


def _dedup_rows(done: Dict[str, dict], collected: Dict[str, dict]) -> List[dict]:
    """Merge resumed and fresh rows, first occurrence per cell key winning.

    A shard killed after flushing a row but before the resume bookkeeping
    saw it can present the same cell twice (persisted + recomputed); the
    rows are identical by determinism, so keeping the first is sound.
    """
    merged: Dict[str, dict] = dict(done)
    for key, row in collected.items():
        merged.setdefault(key, row)
    return list(merged.values())


def _abort_sweep(store, spec, done, collected, stats_dicts, workers, recovery, failures) -> None:
    """Give up after the restart budget: record the damage, raise named."""
    records = []
    first_error: Optional[BaseException] = None
    for payload, exc in failures:
        if first_error is None:
            first_error = exc
        if isinstance(exc, CellExecutionError):
            records.append(exc.as_record())
        else:
            for cell_dict in payload["cells"]:
                cell = Cell.from_dict(cell_dict)
                if cell.key not in collected and cell.key not in done:
                    records.append(
                        {**cell.as_dict(), "key": cell.key, "error": f"{type(exc).__name__}: {exc}"}
                    )
    if store is not None:
        store.write_summary(
            spec.as_dict(),
            sorted(_dedup_rows(done, collected), key=lambda row: row.get("key", "")),
            cache_stats=CacheStats.merged(stats_dicts).as_dict(),
            workers=workers,
            failed=records,
            recovery=recovery,
        )
    if isinstance(first_error, CellExecutionError):
        raise first_error
    keys = ", ".join(sorted(record["key"] for record in records)) or "?"
    raise CellExecutionError(
        keys, cause=f"shards failed after {recovery['restarts']} restart(s): {first_error}"
    ) from first_error


def verify_store(directory) -> dict:
    """Replay a finished store's rows against fresh serial computation.

    Re-executes every persisted cell in-process (no cache, no workers) and
    compares the recomputed row byte-for-byte with the stored one — the
    independent check that a store (however many faults its sweep survived)
    contains exactly what a fault-free serial sweep would have produced.
    Also cross-checks ``summary.json``'s rows against the shard rows when a
    summary is present.

    Returns a JSON-ready report::

        {"cells": N, "matched": N, "mismatched": [...], "summary_consistent": bool}
    """
    store = ResultStore(directory)
    rows = store.rows()
    tracer = current_tracer()
    mismatched: List[dict] = []
    with tracer.span("engine.verify_store", cells=len(rows)):
        for row in rows:
            fresh = run_cell(Cell.from_dict(row))
            stored_bytes = json.dumps(row, sort_keys=True, default=str)
            fresh_bytes = json.dumps(fresh, sort_keys=True, default=str)
            if stored_bytes != fresh_bytes:
                mismatched.append({"key": row["key"], "stored": row, "recomputed": fresh})
    summary = store.read_summary()
    summary_consistent = True
    if summary is not None:
        summary_rows = json.dumps(summary.get("rows", []), sort_keys=True, default=str)
        shard_rows = json.dumps(rows, sort_keys=True, default=str)
        summary_consistent = summary_rows == shard_rows
    return {
        "cells": len(rows),
        "matched": len(rows) - len(mismatched),
        "mismatched": mismatched,
        "summary_consistent": summary_consistent,
        "scan": dict(store.last_scan),
    }
