"""Greedy-by-colour maximal fractional matching in the EC model.

This is the canonical ``O(Delta)``-round upper bound the paper's Theorem 1
is tight against (the paper cites Astrand-Suomela [3]; in the EC model the
algorithm is the natural greedy of Hirvonen-Suomela [13]):

    for each colour ``c`` of the palette, in one communication round, the two
    endpoints of every colour-``c`` edge exchange their residual capacities
    and add ``min(r(u), r(v))`` to the edge's weight.

Each colour class is a matching (proper colouring), so the round is
conflict-free; after an edge's colour is processed one endpoint is saturated
(the minimiser spends its whole residual) — hence the result is maximal —
and no node ever exceeds capacity — hence feasible.  The round count equals
the palette size ``k = O(Delta)``.

A loop's round is the echo: the node receives its own residual back and
assigns the loop ``min(r, r) = r``, saturating itself — exactly the
universal-cover semantics under which a loop's neighbour is a copy of
oneself.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, Hashable, List, Optional

from ..graphs.multigraph import ECGraph
from ..local.algorithm import DistributedAlgorithm, SimulatedECWeights
from ..local.context import NodeContext

Node = Hashable
Color = Hashable

__all__ = ["GreedyColorFM", "greedy_color_algorithm"]

ONE = Fraction(1)


class GreedyColorFM(DistributedAlgorithm):
    """EC-model state machine for greedy-by-colour maximal FM.

    The palette (the graph's sorted colour list) is global knowledge, as is
    standard for EC algorithms — it is supplied through ``ctx.globals``
    under the key ``"palette"``.  Round ``r`` handles the ``r``-th palette
    colour; nodes lacking that colour idle for the round.
    """

    model = "EC"

    def initial_state(self, ctx: NodeContext) -> Dict[str, Any]:
        palette = ctx.globals["palette"]
        return {
            "palette": list(palette),
            "step": 0,
            "residual": ONE,
            "weights": {},
        }

    def send(self, state: Dict[str, Any], ctx: NodeContext) -> Dict[Any, Any]:
        step = state["step"]
        if step >= len(state["palette"]):
            return {}
        color = state["palette"][step]
        if color in ctx.ports:
            return {color: state["residual"]}
        return {}

    def receive(self, state: Dict[str, Any], ctx: NodeContext, inbox: Dict[Any, Any]) -> Dict[str, Any]:
        step = state["step"]
        state = dict(state)
        if step < len(state["palette"]):
            color = state["palette"][step]
            if color in ctx.ports:
                their_residual = inbox[color]
                w = min(state["residual"], their_residual)
                weights = dict(state["weights"])
                weights[color] = w
                state["weights"] = weights
                state["residual"] = state["residual"] - w
        state["step"] = step + 1
        return state

    def output(self, state: Dict[str, Any], ctx: NodeContext) -> Optional[Dict[Color, Fraction]]:
        if state["step"] < len(state["palette"]):
            return None
        return {c: state["weights"].get(c, Fraction(0)) for c in ctx.ports}


def greedy_color_algorithm() -> SimulatedECWeights:
    """The greedy-by-colour algorithm packaged for the adversary/benches.

    The palette is derived from each input graph; the run length is exactly
    the palette size (``O(Delta)`` for ``O(Delta)``-colourings).
    """
    algorithm = SimulatedECWeights(
        GreedyColorFM(),
        globals_factory=lambda g: {"palette": g.colors()},
        max_rounds_factory=lambda g: len(g.colors()) + 1,
        name="greedy-by-colour",
    )
    # deterministic function of the labelled graph: verified runs are safe
    # to memoize content-addressed (see ECWeightAlgorithm.fingerprint)
    algorithm.fingerprint = "greedy-by-colour-v1"
    return algorithm
