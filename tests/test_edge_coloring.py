"""Tests for distributed edge colouring (repro.coloring.edge_coloring)."""

from __future__ import annotations

import networkx as nx

from repro.coloring.edge_coloring import (
    distributed_edge_coloring,
    line_graph_adjacency,
    validate_edge_coloring,
)


class TestLineGraph:
    def test_adjacency_of_path(self):
        g = nx.path_graph(4)
        adj = line_graph_adjacency(g)
        assert set(adj.keys()) == {(0, 1), (1, 2), (2, 3)}
        assert adj[(1, 2)] == [(0, 1), (2, 3)]

    def test_star_line_graph_is_clique(self):
        g = nx.star_graph(4)
        adj = line_graph_adjacency(g)
        for k, nbrs in adj.items():
            assert len(nbrs) == 3  # all other spokes


class TestColoring:
    def test_properness_on_samples(self):
        for g in (
            nx.path_graph(10),
            nx.cycle_graph(11),
            nx.random_regular_graph(4, 16, seed=0),
            nx.complete_graph(6),
        ):
            coloring, rounds = distributed_edge_coloring(g)
            assert validate_edge_coloring(g, coloring), g
            assert rounds >= 0

    def test_palette_polynomial_in_delta(self):
        g = nx.random_regular_graph(4, 40, seed=1)
        coloring, _ = distributed_edge_coloring(g)
        palette = len(set(coloring.values()))
        # line-graph degree is 2*Delta-2 = 6; O(Delta^2) palette
        assert palette <= 130

    def test_empty_graph(self):
        coloring, rounds = distributed_edge_coloring(nx.empty_graph(3))
        assert coloring == {} and rounds == 0

    def test_colors_one_based(self):
        g = nx.path_graph(5)
        coloring, _ = distributed_edge_coloring(g)
        assert min(coloring.values()) >= 1


class TestValidator:
    def test_detects_conflict(self):
        g = nx.path_graph(3)
        bad = {(0, 1): 1, (1, 2): 1}
        assert not validate_edge_coloring(g, bad)
