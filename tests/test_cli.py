"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestSolve:
    def test_solve_greedy(self, capsys):
        code = main(["solve", "--family", "cycle", "--n", "8", "--algorithm", "greedy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "maximal: True" in out
        assert "accepts" in out

    def test_solve_proposal_on_random(self, capsys):
        code = main([
            "solve", "--family", "random", "--n", "15", "--delta", "4",
            "--algorithm", "proposal",
        ])
        assert code == 0

    def test_solve_zero_fails(self, capsys):
        code = main(["solve", "--family", "path", "--n", "4", "--algorithm", "zero"])
        out = capsys.readouterr().out
        assert code == 1
        assert "maximal: False" in out

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["solve", "--family", "klein-bottle"])

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["solve", "--algorithm", "oracle"])


class TestAdversary:
    def test_adversary_greedy(self, capsys):
        code = main(["adversary", "--delta", "4", "--algorithm", "greedy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "step 0" in out and "step 2" in out
        assert "Omega(Delta)" in out

    def test_adversary_catches_zero(self, capsys):
        code = main(["adversary", "--delta", "4", "--algorithm", "zero"])
        out = capsys.readouterr().out
        assert code == 1
        assert "incorrect" in out

    def test_deep_verify_flag(self, capsys):
        code = main(["adversary", "--delta", "3", "--algorithm", "greedy", "--deep-verify"])
        assert code == 0


class TestRefute:
    def test_refutes_small_claim(self, capsys):
        code = main(["refute", "--delta", "5", "--algorithm", "greedy", "--claimed-rounds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "isomorphic radius-1" in out

    def test_consistent_claim_exit_code(self, capsys):
        code = main(["refute", "--delta", "4", "--algorithm", "greedy", "--claimed-rounds", "9"])
        assert code == 2


class TestCoverAndOrder:
    def test_cover(self, capsys):
        code = main(["cover", "--family", "regular", "--n", "12", "--delta", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "certified ratio" in out

    def test_order(self, capsys):
        code = main(["order", "--generators", "2", "--radius", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "e" in out
        assert len(out.strip().splitlines()) == 5  # identity + 4 slot neighbours


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert parser.prog == "repro"


class TestExhaustive:
    def test_exhaustive_impossible(self, capsys):
        code = main(["exhaustive", "--delta", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "IMPOSSIBLE" in out
