"""``engine-concurrency`` — what crosses the process boundary must survive it.

The experiment engine ships work to spawn-context worker processes; the
chaos harness replays runs under injected faults and asserts byte-identical
output.  Three classes of bug defeat that design silently, and none is
visible to a per-line rule:

* **unpicklable submissions** — a lambda, nested function, or locally
  defined class handed to ``pool.submit``/``map``/``apply_async`` pickles
  only at dispatch time (spawn context), so the failure surfaces as a
  runtime crash deep in a sweep.  The rule flags them at the submission
  site — *including* submissions laundered through helper layers: a
  parameter that flows into a submit position makes every caller's
  corresponding argument a submission site too (a sink-parameter fixpoint
  over the call graph).
* **worker entry points touching module-global state** — a worker entry
  that mutates module-level state works in-process and silently diverges
  across processes (each worker has its own copy).  Flagged whenever the
  resolved entry function's visible effect set contains
  ``global-mutation``.
* **unsanctioned thread targets** — ``threading.Thread(target=...)`` with
  a lambda target (unauditable), or with a project function that mutates
  module-global state without holding it in a declared
  :attr:`LintConfig.state_modules` module.  The engine's sanctioned
  pattern is the watchdog in ``repro.engine.pool``: a named nested
  function that communicates only through its closure's local containers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import Finding

RULE_ID = "engine-concurrency"

#: attribute names that ship their first positional argument to a worker.
_SUBMIT_METHODS = {
    "submit",
    "apply",
    "apply_async",
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
}

#: external constructors whose ``target=`` runs on another thread/process.
_TARGET_CONSTRUCTORS = {"threading.Thread", "multiprocessing.Process"}


def _callable_problem(info, expr: ast.AST) -> Optional[str]:
    """Why ``expr``, as a shipped callable, cannot cross a process boundary."""
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.Name):
        if expr.id in info.nested_defs:
            return f"locally-defined function '{expr.id}'"
        if expr.id in info.local_callables:
            return f"local binding '{expr.id}' of an unpicklable callable"
    return None


def _keyword(node: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def check(project) -> Iterator[Finding]:
    """Flag unpicklable submissions, stateful workers, rogue threads."""
    graph = project.callgraph
    effects = project.effects
    findings: Dict[Tuple[str, int, str], Finding] = {}

    def add(module: str, line: int, message: str) -> None:
        mod = project.module_named(module)
        if mod is None:
            return
        findings.setdefault(
            (mod.path, line, message),
            Finding(path=mod.path, line=line, col=1, rule=RULE_ID, message=message),
        )

    # -- pass 1: direct submit/thread sites; seed the sink-param fixpoint
    sinks: Dict[str, Set[int]] = {}

    def flag_shipped(info, site, expr: ast.AST, what: str) -> None:
        problem = _callable_problem(info, expr)
        if problem is not None:
            add(
                info.module,
                expr.lineno,
                f"{problem} shipped as {what} in '{info.qualname}' cannot "
                f"cross the process boundary (spawn-context workers pickle "
                f"their payload); use a module-level function",
            )

    def note_sink_param(info, expr: ast.AST) -> None:
        if isinstance(expr, ast.Name) and expr.id in info.params:
            sinks.setdefault(info.qualname, set()).add(info.params.index(expr.id))

    submit_entries: List[Tuple[object, object, ast.AST]] = []  # (info, site, expr)
    thread_targets: List[Tuple[object, object, ast.AST]] = []

    for qualname, sites in graph.calls.items():
        info = graph.functions[qualname]
        for site in sites:
            res = site.resolution
            if site.attr in _SUBMIT_METHODS and site.node.args:
                expr = site.node.args[0]
                flag_shipped(info, site, expr, f"a pool .{site.attr}() payload")
                note_sink_param(info, expr)
                submit_entries.append((info, site, expr))
            elif res.kind == "external" and res.target in _TARGET_CONSTRUCTORS:
                target = _keyword(site.node, "target")
                if target is None and site.node.args:
                    target = site.node.args[0]
                if target is None:
                    continue
                if isinstance(target, ast.Lambda):
                    add(
                        info.module,
                        target.lineno,
                        f"lambda thread target in '{info.qualname}'; thread "
                        f"entry points must be named functions so their "
                        f"shared-state discipline is auditable",
                    )
                else:
                    thread_targets.append((info, site, target))

    # -- pass 2: sink-parameter fixpoint — a helper forwarding its
    # parameter into a submit position makes the caller's argument a
    # submission site, however many layers deep the laundering goes.
    changed = True
    while changed:
        changed = False
        for qualname, sites in graph.calls.items():
            info = graph.functions[qualname]
            for site in sites:
                res = site.resolution
                if res.kind != "project" or res.target not in sinks:
                    continue
                callee = graph.functions.get(res.target)
                if callee is None:
                    continue
                for index in sorted(sinks[res.target]):
                    expr: Optional[ast.AST] = None
                    if index < len(site.node.args):
                        expr = site.node.args[index]
                    elif index < len(callee.params):
                        expr = _keyword(site.node, callee.params[index])
                    if expr is None:
                        continue
                    problem = _callable_problem(info, expr)
                    if problem is not None:
                        add(
                            info.module,
                            expr.lineno,
                            f"{problem} passed to '{res.target}' in "
                            f"'{info.qualname}' reaches a pool submission and "
                            f"cannot cross the process boundary; use a "
                            f"module-level function",
                        )
                    if isinstance(expr, ast.Name) and expr.id in info.params:
                        param_index = info.params.index(expr.id)
                        if param_index not in sinks.get(qualname, set()):
                            sinks.setdefault(qualname, set()).add(param_index)
                            changed = True

    # -- pass 3: worker/thread entry points vs module-global state
    for info, site, expr in submit_entries:
        if not isinstance(expr, ast.Name) or expr.id in info.local_names:
            continue
        res = graph.resolve(info.module, expr.id)
        if res.kind != "project" or res.target is None:
            continue
        entry = effects.functions.get(res.target)
        if entry is not None and "global-mutation" in entry.visible:
            chain = effects.path(res.target, "global-mutation")
            add(
                info.module,
                expr.lineno,
                f"worker entry '{res.target}' reaches mutable module-level "
                f"state ({' -> '.join(chain)}); worker state must stay "
                f"process-local or live in a declared state module",
            )

    for info, site, target in thread_targets:
        dotted = None
        if isinstance(target, ast.Name) and target.id not in info.local_names:
            dotted = target.id
        if dotted is None:
            continue  # named nested targets are the sanctioned watchdog shape
        res = graph.resolve(info.module, dotted)
        if res.kind != "project" or res.target is None:
            continue
        entry = effects.functions.get(res.target)
        if entry is not None and "global-mutation" in entry.visible:
            chain = effects.path(res.target, "global-mutation")
            add(
                info.module,
                target.lineno,
                f"thread target '{res.target}' mutates module-global state "
                f"({' -> '.join(chain)}) outside a declared state module; "
                f"threads may only share state through their own closure",
            )

    for key in sorted(findings):
        yield findings[key]
