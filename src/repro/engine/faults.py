"""Deterministic fault injection for the sweep engine.

The engine's headline claims — resumable, corrupt-tolerant, and
byte-identical however it is executed — are only worth something if they
hold *under* failure.  This module turns each informal failure story into a
mechanically replayable scenario: a :class:`FaultPlan` is a seeded, JSON
round-trippable list of :class:`Fault` triggers, and a
:class:`FaultInjector` built from one fires each trigger at an exactly
reproducible point of a sweep.  The chaos tests (``tests/test_faults.py``)
and the CI chaos step drive :func:`repro.engine.run_sweep` through every
fault class and assert the merged rows still serialise byte-identically to
a fault-free serial sweep.

Fault kinds
-----------
``kill-worker``
    SIGKILL the worker process right before it executes the matching cell
    (in-process shards raise :class:`InjectedWorkerError` instead — there
    is no separate process to kill).  Matches on the sweep *restart round*,
    so a recovered re-run does not die again.
``raise-worker``
    Raise :class:`InjectedWorkerError` before the matching cell: the whole
    shard fails with an exception instead of a dead process.
``stall-cell``
    Sleep ``seconds`` inside the matching cell's execution on the matching
    *retry attempt* — long enough past ``cell_timeout`` and the engine's
    per-cell watchdog fires and retries.
``truncate-shard``
    After the matching cell's row is appended to its JSONL shard, cut the
    file at ``offset`` bytes (negative: from the end) — the torn-write
    signature of a writer killed mid-``write``.
``corrupt-cache``
    After the matching cache entry is written, overwrite ``length`` bytes
    at ``offset`` with garbage, so a later read sees a corrupt entry.
``cache-io-error``
    Raise a transient :class:`InjectedIOError` (an ``OSError``) on the next
    matching cache ``op`` (``"read"`` or ``"write"``).

Determinism contract
--------------------
Nothing here consults ambient entropy: triggers anchor on cell keys,
restart rounds, and retry attempts, all of which are pure functions of the
grid and the plan itself, and :meth:`FaultPlan.sample` derives a plan from
an explicit seed via ``random.Random(seed)``.  Replaying a sweep with the
same grid and plan therefore replays the same failures at the same points.
The only clock use is ``time.sleep`` for injected stalls — a sanctioned
clock module (``LintConfig.clock_modules``): the sleep delays execution
but no model output ever depends on it.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, fields, replace
from pathlib import Path
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.tracer import current_tracer

__all__ = [
    "FAULT_KINDS",
    "PLAN_FORMAT",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "InjectedIOError",
    "InjectedWorkerError",
    "active_injector",
    "use_faults",
]

PLAN_FORMAT = "repro-fault-plan-v1"

FAULT_KINDS = (
    "kill-worker",
    "raise-worker",
    "stall-cell",
    "truncate-shard",
    "corrupt-cache",
    "cache-io-error",
)

#: bytes written over cache entries by ``corrupt-cache`` — deliberately not
#: valid UTF-8, so readers exercise the full undecodable-garbage path
GARBAGE = b"\xfe"


class InjectedWorkerError(RuntimeError):
    """A simulated worker crash (``raise-worker``, or ``kill-worker`` when
    there is no separate process to kill)."""


class InjectedIOError(OSError):
    """A simulated transient I/O failure on a cache read or write."""


@dataclass(frozen=True)
class Fault:
    """One replayable trigger; see the module docstring for kind semantics.

    ``cell`` and ``key`` are either an exact value or ``"*"`` (match
    anything).  ``attempt`` is the sweep restart round for worker faults
    and the per-cell retry attempt for ``stall-cell``; ``None`` matches
    every round/attempt.  Each fault fires at most ``times`` times per
    injector (workers own independent injectors, so anchor worker-local
    faults on cell keys rather than relying on a global count).
    """

    kind: str
    cell: str = "*"
    key: str = "*"
    attempt: Optional[int] = 0
    op: str = "*"
    offset: int = -5
    length: int = 0
    seconds: float = 0.25
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown fault fields {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable list of faults — one failure scenario."""

    faults: Tuple[Fault, ...] = ()
    seed: Optional[int] = None
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "format": PLAN_FORMAT,
            "seed": self.seed,
            "note": self.note,
            "faults": [f.as_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        declared = data.get("format", PLAN_FORMAT)
        if declared != PLAN_FORMAT:
            raise ValueError(f"unknown fault-plan format {declared!r} (want {PLAN_FORMAT!r})")
        return cls(
            faults=tuple(Fault.from_dict(f) for f in data.get("faults", ())),
            seed=data.get("seed"),
            note=data.get("note", ""),
        )

    def dump(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    @classmethod
    def sample(
        cls,
        cell_keys: Sequence[str],
        seed: int,
        kinds: Sequence[str] = ("kill-worker", "raise-worker", "truncate-shard", "corrupt-cache", "cache-io-error"),
        count: int = 3,
    ) -> "FaultPlan":
        """A deterministic random scenario: ``count`` faults over ``kinds``.

        Every sampled fault is survivable by construction (one-shot, round
        0, transient), so a sweep run under a sampled plan must complete —
        the property the chaos matrix asserts over many seeds.  ``seed``
        fully determines the plan; no ambient entropy is consulted.
        """
        if not cell_keys:
            raise ValueError("cannot sample a fault plan over an empty grid")
        rng = Random(seed)
        faults: List[Fault] = []
        for _ in range(count):
            kind = rng.choice(list(kinds))
            cell = rng.choice(list(cell_keys))
            if kind == "stall-cell":
                faults.append(Fault(kind=kind, cell=cell, seconds=0.4))
            elif kind == "cache-io-error":
                faults.append(Fault(kind=kind, op=rng.choice(("read", "write"))))
            elif kind == "corrupt-cache":
                faults.append(Fault(kind=kind, offset=rng.choice((-5, 0, 10)), length=rng.choice((0, 4))))
            elif kind == "truncate-shard":
                faults.append(Fault(kind=kind, cell=cell, offset=-rng.choice((3, 5, 9))))
            else:  # kill-worker / raise-worker
                faults.append(Fault(kind=kind, cell=cell, attempt=0))
        return cls(faults=tuple(faults), seed=seed, note=f"sampled({seed})")

    def scoped(self, **overrides) -> "FaultPlan":
        """A copy with top-level fields replaced (faults stay shared)."""
        return replace(self, **overrides)


class FaultInjector:
    """Fires a plan's faults at the engine's instrumented trigger points.

    One injector per execution context (the coordinator's in-process shard
    loop, or each worker process); ``in_worker`` decides whether
    ``kill-worker`` sends a real SIGKILL or degrades to
    :class:`InjectedWorkerError`.  Every fire is recorded in ``fired`` and
    counted on the ambient tracer (``engine.fault`` counter, ``kind``
    label) so merged sweep traces account for the injected failures.
    """

    def __init__(self, plan: FaultPlan, *, shard: Optional[int] = None, in_worker: bool = False):
        self.plan = plan
        self.shard = shard
        self.in_worker = in_worker
        self.fired: List[dict] = []
        self._counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def _match(
        self,
        kind: str,
        *,
        cell: Optional[str] = None,
        attempt: Optional[int] = None,
        key: Optional[str] = None,
        op: Optional[str] = None,
    ) -> Optional[Fault]:
        for index, fault in enumerate(self.plan.faults):
            if fault.kind != kind:
                continue
            if self._counts.get(index, 0) >= fault.times:
                continue
            if cell is not None and fault.cell not in ("*", cell):
                continue
            if attempt is not None and fault.attempt is not None and fault.attempt != attempt:
                continue
            if key is not None and fault.key not in ("*", key):
                continue
            if op is not None and fault.op not in ("*", op):
                continue
            self._counts[index] = self._counts.get(index, 0) + 1
            record = dict(fault.as_dict(), shard=self.shard)
            if cell is not None:
                record["matched_cell"] = cell
            if key is not None:
                record["matched_key"] = key
            self.fired.append(record)
            current_tracer().metrics.counter("engine.fault", kind=kind).inc()
            return fault
        return None

    # ------------------------------------------------------------------
    # trigger points (called by pool/store/cache)
    # ------------------------------------------------------------------
    def on_worker_cell(self, cell_key: str, round_: int) -> None:
        """Worker is about to execute ``cell_key`` in restart round ``round_``."""
        if self._match("kill-worker", cell=cell_key, attempt=round_) is not None:
            if self.in_worker:
                os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies here
            raise InjectedWorkerError(f"injected worker kill at cell {cell_key}")
        if self._match("raise-worker", cell=cell_key, attempt=round_) is not None:
            raise InjectedWorkerError(f"injected worker crash at cell {cell_key}")

    def on_cell_body(self, cell_key: str, attempt: int) -> None:
        """Inside the (possibly watchdogged) execution of ``cell_key``."""
        fault = self._match("stall-cell", cell=cell_key, attempt=attempt)
        if fault is not None:
            time.sleep(fault.seconds)

    def on_store_append(self, path, cell_key: Optional[str]) -> None:
        """A row for ``cell_key`` was flushed to the shard file at ``path``."""
        fault = self._match("truncate-shard", cell=cell_key or "*")
        if fault is None:
            return
        path = Path(path)
        size = path.stat().st_size
        cut = max(0, size + fault.offset if fault.offset < 0 else min(fault.offset, size))
        with path.open("r+b") as fh:
            fh.truncate(cut)

    def on_cache_write(self, key: str, path) -> None:
        """A cache entry for ``key`` was atomically written to ``path``."""
        fault = self._match("corrupt-cache", key=key)
        if fault is None:
            return
        path = Path(path)
        size = path.stat().st_size
        start = size + fault.offset if fault.offset < 0 else min(fault.offset, max(size - 1, 0))
        start = max(0, start)
        length = fault.length if fault.length > 0 else max(size - start, 1)
        with path.open("r+b") as fh:
            fh.seek(start)
            fh.write(GARBAGE * length)

    def check_cache_io(self, op: str, key: str) -> None:
        """Raise a transient error for a matching cache ``op`` on ``key``."""
        if self._match("cache-io-error", key=key, op=op) is not None:
            raise InjectedIOError(f"injected transient cache {op} error for {key[:12]}…")

    def report(self) -> List[dict]:
        """The faults fired so far, in firing order (JSON-ready)."""
        return list(self.fired)


#: the ambient injector consulted by store/cache trigger points; ``None``
#: (the default) keeps every fault hook a single attribute read
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The ambient :class:`FaultInjector`, or ``None`` outside fault runs."""
    return _ACTIVE


class use_faults:
    """Install ``injector`` as the ambient injector for a ``with`` block.

    ``use_faults(None)`` is a no-op guard, so call sites need no branching.
    """

    def __init__(self, injector: Optional[FaultInjector]):
        self._injector = injector
        self._previous: Optional[FaultInjector] = None

    def __enter__(self) -> Optional[FaultInjector]:
        global _ACTIVE
        self._previous = _ACTIVE
        if self._injector is not None:
            _ACTIVE = self._injector
        return self._injector

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        if self._injector is not None:
            _ACTIVE = self._previous
        return False


def as_plan(faults: Union[FaultPlan, dict, str, Path, None]) -> Optional[FaultPlan]:
    """Coerce the public ``faults=`` argument into a :class:`FaultPlan`.

    Accepts a ready plan, its ``as_dict`` form, or a path to a JSON file.
    """
    if faults is None or isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, dict):
        return FaultPlan.from_dict(faults)
    return FaultPlan.load(faults)
