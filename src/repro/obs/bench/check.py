"""The regression gate: compare fresh bench rows against the trajectory.

Pure functions over plain dicts — the CLI turns a :class:`CheckReport`
into exit codes, and tests inject synthetic baselines to prove the gate
trips exactly when a declared threshold is crossed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .suite import Suite
from .trajectory import latest_baselines

__all__ = ["Violation", "CheckReport", "check_rows", "profile_attribution"]


@dataclass(frozen=True)
class Violation:
    """One metric past its declared threshold."""

    experiment: str
    metric: str
    baseline: object
    current: object
    reason: str

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "reason": self.reason,
        }


@dataclass
class CheckReport:
    """Everything ``repro bench --check`` decides and reports."""

    suite: str
    violations: List[Violation] = field(default_factory=list)
    #: every (experiment, metric) comparison made, pass or fail
    compared: List[dict] = field(default_factory=list)
    #: experiments with no baseline row yet (new experiments pass vacuously)
    missing: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "suite": self.suite,
            "ok": self.ok,
            "violations": [violation.as_dict() for violation in self.violations],
            "compared": list(self.compared),
            "missing": list(self.missing),
        }


def check_rows(new_rows: List[dict], trajectory_rows: List[dict], suite: Suite) -> CheckReport:
    """Judge fresh rows against the latest committed baseline per experiment.

    A metric missing on either side is recorded in ``compared`` with
    ``ok=None`` but never fails the gate (renaming a metric should not brick
    the build); an experiment with no baseline lands in ``missing``.
    """
    report = CheckReport(suite=suite.name)
    baselines = latest_baselines(trajectory_rows, suite=suite.name)
    for row in new_rows:
        experiment = suite.experiment_named(row["experiment"])
        if experiment is None:
            continue
        baseline = baselines.get(row["experiment"])
        if baseline is None:
            report.missing.append(row["experiment"])
            continue
        for threshold in experiment.thresholds:
            base_value = baseline.get("metrics", {}).get(threshold.metric)
            current_value = row.get("metrics", {}).get(threshold.metric)
            comparison = {
                "experiment": row["experiment"],
                "metric": threshold.metric,
                "baseline": base_value,
                "current": current_value,
                "direction": threshold.direction,
                "informational": threshold.informational,
            }
            if base_value is None or current_value is None:
                comparison["ok"] = None
                report.compared.append(comparison)
                continue
            reason = threshold.judge(base_value, current_value)
            comparison["ok"] = reason is None
            report.compared.append(comparison)
            if reason is not None:
                report.violations.append(
                    Violation(
                        experiment=row["experiment"],
                        metric=threshold.metric,
                        baseline=base_value,
                        current=current_value,
                        reason=reason,
                    )
                )
    return report


def profile_attribution(
    baseline_row: Optional[dict], current_row: dict, top: int = 5
) -> List[dict]:
    """Which span names grew: per-name self-time delta, biggest first.

    The regression gate's "why": when a wall-time metric trips, the
    baseline and current trajectory rows both carry a self-time profile, so
    the report can point at the span names that absorbed the extra time.
    """
    baseline_self: Dict[str, float] = {}
    baseline_calls: Dict[str, int] = {}
    for row in (baseline_row or {}).get("profile", []):
        baseline_self[row["name"]] = row.get("self", 0.0)
        baseline_calls[row["name"]] = row.get("calls", 0)
    deltas: List[dict] = []
    for row in current_row.get("profile", []):
        name = row["name"]
        delta = row.get("self", 0.0) - baseline_self.get(name, 0.0)
        deltas.append(
            {
                "name": name,
                "self_delta": round(delta, 6),
                "self": row.get("self", 0.0),
                "baseline_self": baseline_self.get(name, 0.0),
                "calls": row.get("calls", 0),
                "baseline_calls": baseline_calls.get(name, 0),
            }
        )
    deltas.sort(key=lambda row: (-row["self_delta"], row["name"]))
    return deltas[:top]
