"""Setuptools shim: enables legacy editable installs (``pip install -e .``)
on environments whose setuptools/pip lack PEP 660 wheel support.  All project
metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
