"""Distributed edge colouring via colour reduction on the line graph.

Simulating one round of a line-graph algorithm costs ``O(1)`` rounds of the
original network (an edge's state can live at an endpoint and its line-graph
neighbours are at distance <= 1), so Linial reduction on the line graph
properly edge-colours a graph of maximum degree ``Delta`` with ``O(Delta^2)``
colours in ``O(log* n)`` rounds.  Together with greedy-by-colour matching
this realises the "simple" ``O(Delta^2 + log* n)`` maximal matching that
Panconesi-Rizzi improve upon (paper, Section 1.1).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import networkx as nx

from .linial import linial_reduce

Node = Hashable
EdgeKey = Tuple  # canonical (min, max) node pair

__all__ = ["line_graph_adjacency", "distributed_edge_coloring", "validate_edge_coloring"]


def line_graph_adjacency(g: "nx.Graph") -> Dict[EdgeKey, List[EdgeKey]]:
    """Adjacency of the line graph; vertices are canonical edge keys."""
    keys = [tuple(sorted(e)) for e in g.edges()]
    incident: Dict[Node, List[EdgeKey]] = {}
    for k in keys:
        incident.setdefault(k[0], []).append(k)
        incident.setdefault(k[1], []).append(k)
    adj: Dict[EdgeKey, List[EdgeKey]] = {k: [] for k in keys}
    for k in keys:
        nbrs = set(incident[k[0]]) | set(incident[k[1]])
        nbrs.discard(k)
        adj[k] = sorted(nbrs)
    return adj


def distributed_edge_coloring(g: "nx.Graph") -> Tuple[Dict[EdgeKey, int], int]:
    """Properly edge-colour ``g`` with ``O(Delta^2)`` colours.

    Initial line-graph colours come from injectively pairing the endpoint
    identifiers; Linial reduction shrinks the palette.  Returns the edge
    colouring (1-based colours, keyed by canonical edge pair) and the round
    count, where each line-graph round is billed as 2 network rounds.
    """
    adj = line_graph_adjacency(g)
    if not adj:
        return {}, 0
    n_bound = max(g.nodes()) + 1 if g.number_of_nodes() else 1
    initial = {k: k[0] * n_bound + k[1] for k in adj}
    # make colours dense-ish but still unique (identifiers may be sparse)
    delta_line = max((len(v) for v in adj.values()), default=0)
    colors, line_rounds = linial_reduce(initial, adj, delta_line)
    shifted = {k: c + 1 for k, c in colors.items()}
    return shifted, 2 * line_rounds


def validate_edge_coloring(g: "nx.Graph", coloring: Dict[EdgeKey, int]) -> bool:
    """Whether adjacent edges always received distinct colours."""
    adj = line_graph_adjacency(g)
    return all(coloring[k] != coloring[j] for k in adj for j in adj[k])
