"""The ``repro bench`` scaling-experiment suite.

Five small modules, one pipeline:

* :mod:`~repro.obs.bench.suite` — declarative :class:`Suite` /
  :class:`Experiment` / :class:`Threshold` definitions (pure data);
* :mod:`~repro.obs.bench.runner` — the warmup/repeat/median harness that
  drives the real engine (the sanctioned clock reader);
* :mod:`~repro.obs.bench.trajectory` — the append-only, schema-versioned
  per-commit ``BENCH_TRAJECTORY.jsonl`` store;
* :mod:`~repro.obs.bench.check` — the regression gate comparing fresh rows
  against the committed trajectory;
* :mod:`~repro.obs.bench.report` — text renderers (run table, trend
  dashboard, gate verdict with self-time attribution).

Imported lazily by ``repro.cli`` / ``repro.api`` — this package depends on
the engine, so ``repro.obs`` must not import it eagerly (the engine imports
``repro.obs``).
"""

from .check import CheckReport, Violation, check_rows, profile_attribution
from .report import render_check, render_rows, render_trajectory
from .runner import BenchContext, RUNNERS, run_experiment, run_suite
from .suite import SUITES, Experiment, Suite, Threshold, suite_named
from .trajectory import (
    DEFAULT_TRAJECTORY_PATH,
    TRAJECTORY_SCHEMA_VERSION,
    append_rows,
    current_commit,
    latest_baselines,
    make_row,
    read_rows,
)

__all__ = [
    "BenchContext",
    "CheckReport",
    "DEFAULT_TRAJECTORY_PATH",
    "Experiment",
    "RUNNERS",
    "SUITES",
    "Suite",
    "TRAJECTORY_SCHEMA_VERSION",
    "Threshold",
    "Violation",
    "append_rows",
    "check_rows",
    "current_commit",
    "latest_baselines",
    "make_row",
    "profile_attribution",
    "read_rows",
    "render_check",
    "render_rows",
    "render_trajectory",
    "run_experiment",
    "run_suite",
    "suite_named",
]
