"""Tests for Luby's MIS (repro.coloring.mis)."""

from __future__ import annotations

import random

import networkx as nx

from repro.coloring.mis import luby_mis, validate_mis


class TestLuby:
    def test_valid_mis_on_samples(self):
        rng = random.Random(3)
        for g in (
            nx.path_graph(10),
            nx.cycle_graph(9),
            nx.complete_graph(8),
            nx.random_regular_graph(4, 20, seed=0),
            nx.gnp_random_graph(25, 0.2, seed=1),
        ):
            mis, rounds = luby_mis(g, rng)
            assert validate_mis(g, mis), g

    def test_complete_graph_single_winner(self):
        mis, _ = luby_mis(nx.complete_graph(10), random.Random(0))
        assert len(mis) == 1

    def test_empty_graph_all_join(self):
        g = nx.empty_graph(5)
        mis, rounds = luby_mis(g, random.Random(0))
        assert mis == set(range(5))
        assert rounds == 2  # one iteration suffices

    def test_rounds_logarithmic(self):
        g = nx.random_regular_graph(4, 256, seed=2)
        _, rounds = luby_mis(g, random.Random(5))
        assert rounds <= 40

    def test_matching_via_line_graph(self):
        """A maximal matching is an MIS of the line graph."""
        g = nx.random_regular_graph(3, 16, seed=3)
        lg = nx.line_graph(g)
        mis, _ = luby_mis(lg, random.Random(7))
        matched = set()
        for (u, v) in mis:
            assert u not in matched and v not in matched
            matched |= {u, v}
        for (u, v) in g.edges():
            assert u in matched or v in matched


class TestValidator:
    def test_rejects_dependent_set(self):
        g = nx.path_graph(3)
        assert not validate_mis(g, {0, 1})

    def test_rejects_non_maximal(self):
        g = nx.path_graph(5)
        assert not validate_mis(g, {0})

    def test_accepts(self):
        g = nx.path_graph(5)
        assert validate_mis(g, {0, 2, 4})
