"""Execute every example script end to end (the examples are documentation
that must not rot)."""

from __future__ import annotations

import os
import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, tmp_path, monkeypatch, capsys) -> str:
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, tmp_path, monkeypatch, capsys):
        out = run_example("quickstart.py", tmp_path, monkeypatch, capsys)
        assert "All outputs verified" in out

    def test_lower_bound_adversary(self, tmp_path, monkeypatch, capsys):
        out = run_example("lower_bound_adversary.py", tmp_path, monkeypatch, capsys)
        assert "Omega(Delta)" in out
        assert "caught" in out

    def test_simulation_chain(self, tmp_path, monkeypatch, capsys):
        out = run_example("simulation_chain.py", tmp_path, monkeypatch, capsys)
        assert "survived to depth 2" in out
        assert "caught as incorrect" in out

    def test_matching_zoo(self, tmp_path, monkeypatch, capsys):
        out = run_example("matching_zoo.py", tmp_path, monkeypatch, capsys)
        assert "Panconesi-Rizzi" in out

    def test_canonical_order_demo(self, tmp_path, monkeypatch, capsys):
        out = run_example("canonical_order_demo.py", tmp_path, monkeypatch, capsys)
        assert "held every time" in out

    def test_randomized_and_derandomized(self, tmp_path, monkeypatch, capsys):
        out = run_example("randomized_and_derandomized.py", tmp_path, monkeypatch, capsys)
        assert "identifier set S_n" in out

    def test_witness_artifacts(self, tmp_path, monkeypatch, capsys):
        out = run_example("witness_artifacts.py", tmp_path, monkeypatch, capsys)
        assert (tmp_path / "artifacts" / "witness_delta5.dot").exists()
        assert (tmp_path / "artifacts" / "witness_delta5.json").exists()
        assert "Omega(Delta)" in out
