"""Tests for graph family generators (repro.graphs.families)."""

from __future__ import annotations

import pytest

from repro.graphs.families import (
    caterpillar,
    complete_graph,
    cycle_graph,
    ec_from_simple_edges,
    greedy_edge_coloring,
    path_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    random_regular_graph,
    single_node_with_loops,
    star_graph,
)


class TestGreedyEdgeColoring:
    def test_properness(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        coloring = greedy_edge_coloring(edges)
        used = {}
        for (u, v), c in coloring.items():
            assert c not in used.get(u, set()) and c not in used.get(v, set())
            used.setdefault(u, set()).add(c)
            used.setdefault(v, set()).add(c)

    def test_palette_bound(self):
        """Greedy uses at most 2*Delta - 1 colours."""
        edges = [(0, i) for i in range(1, 8)]
        coloring = greedy_edge_coloring(edges)
        assert max(coloring.values()) <= 2 * 7 - 1

    def test_deterministic(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        assert greedy_edge_coloring(edges) == greedy_edge_coloring(edges)


class TestStandardFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.num_nodes() == 5 and g.num_edges() == 4
        assert g.max_degree() == 2
        assert set(g.colors()) <= {1, 2}

    def test_path_single_node(self):
        assert path_graph(1).num_nodes() == 1
        with pytest.raises(ValueError):
            path_graph(0)

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges() == 6
        assert all(g.degree(v) == 2 for v in g.nodes())
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert all(g.degree(i) == 1 for i in range(1, 5))

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges() == 10
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_caterpillar(self):
        g = caterpillar(3, 2)
        assert g.num_nodes() == 3 + 6
        assert g.is_tree_ignoring_loops()
        assert g.max_degree() == 4  # interior spine: 2 spine + 2 legs

    def test_single_node_with_loops(self):
        g = single_node_with_loops(5, node="x", first_color=10)
        assert g.degree("x") == 5
        assert g.colors() == list(range(10, 15))


class TestRandomFamilies:
    def test_bounded_degree_respected(self):
        g = random_bounded_degree_graph(30, 4, seed=11)
        assert g.max_degree() <= 4
        assert g.num_edges() > 0

    def test_bounded_degree_deterministic(self):
        a = random_bounded_degree_graph(20, 3, seed=5)
        b = random_bounded_degree_graph(20, 3, seed=5)
        assert {(e.u, e.v, e.color) for e in a.edges()} == {
            (e.u, e.v, e.color) for e in b.edges()
        }

    def test_regular(self):
        g = random_regular_graph(12, 3, seed=2)
        assert all(g.degree(v) == 3 for v in g.nodes())

    def test_loopy_tree_invariants(self):
        g = random_loopy_tree(8, 2, seed=7)
        assert g.is_tree_ignoring_loops()
        assert all(g.loop_count(v) == 2 for v in g.nodes())
        # loop colours below the tree-colour offset never clash
        g.validate()

    def test_ec_from_simple_edges_with_isolated_nodes(self):
        g = ec_from_simple_edges([(0, 1)], nodes=[0, 1, 2])
        assert g.has_node(2) and g.degree(2) == 0
