"""Tests for the model separations of Section 2.1 (repro.core.separations)."""

from __future__ import annotations

import pytest

from repro.core.separations import (
    GreedyColorMatching,
    ec_coloring_impossibility_certificate,
    maximal_matching_in_ec,
    two_color_one_regular_po,
)
from repro.graphs.digraph import POGraph
from repro.graphs.families import (
    complete_graph,
    cycle_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    star_graph,
)
from repro.local.views import ec_view_tree


def is_maximal_matching(g, chosen):
    matched = set()
    for eid in chosen:
        e = g.edge(eid)
        if e.is_loop or e.u in matched or e.v in matched:
            return False
        matched |= {e.u, e.v}
    return all(e.is_loop or e.u in matched or e.v in matched for e in g.edges())


class TestPOCanColor:
    def test_perfect_matching_two_colored(self):
        g = POGraph()
        g.add_edge("a", "b", 1)
        g.add_edge("c", "d", 2)
        colors = two_color_one_regular_po(g)
        assert colors["a"] != colors["b"]
        assert colors["c"] != colors["d"]
        assert set(colors.values()) == {0, 1}

    def test_zero_rounds(self):
        """The colouring uses only locally visible orientation: no messages."""
        g = POGraph()
        g.add_edge("a", "b", 1)
        # the function consults only out/in degrees — a 0-round algorithm
        colors = two_color_one_regular_po(g)
        assert colors == {"a": 0, "b": 1}

    def test_rejects_higher_degree(self):
        g = POGraph()
        g.add_edge("a", "b", 1)
        g.add_edge("b", "c", 2)
        with pytest.raises(ValueError):
            two_color_one_regular_po(g)


class TestECCannotColor:
    @pytest.mark.parametrize("radius", [0, 1, 3, 6])
    def test_certificate_views_agree(self, radius):
        g, u, v = ec_coloring_impossibility_certificate(radius)
        assert ec_view_tree(g, u, radius) == ec_view_tree(g, v, radius)

    def test_any_ec_algorithm_fails(self):
        """Concretely: run arbitrary view functions on the certificate; the
        two endpoints always receive equal outputs."""
        g, u, v = ec_coloring_impossibility_certificate(4)

        def arbitrary_algorithm(view):
            return hash(view) % 2  # any function of the view whatsoever

        cu = arbitrary_algorithm(ec_view_tree(g, u, 4))
        cv = arbitrary_algorithm(ec_view_tree(g, v, 4))
        assert cu == cv  # never a proper colouring of the edge {u, v}


class TestECCanMatch:
    def test_maximal_matching_on_samples(self):
        for g in (
            cycle_graph(8),
            star_graph(5),
            complete_graph(5),
            random_bounded_degree_graph(20, 4, seed=1),
        ):
            chosen, rounds = maximal_matching_in_ec(g)
            assert is_maximal_matching(g, chosen), repr(g)
            assert rounds <= len(g.colors()) + 1

    def test_loops_excluded(self):
        g = random_loopy_tree(6, 2, seed=4)
        chosen, _ = maximal_matching_in_ec(g)
        assert all(not g.edge(eid).is_loop for eid in chosen)
        assert is_maximal_matching(g, chosen)

    def test_rounds_equal_palette(self):
        g = cycle_graph(9)
        _, rounds = maximal_matching_in_ec(g)
        assert rounds == len(g.colors())

    def test_edgeless_graph(self):
        from repro.graphs.multigraph import ECGraph

        g = ECGraph()
        g.add_node(0)
        chosen, rounds = maximal_matching_in_ec(g)
        assert chosen == set() and rounds == 0
