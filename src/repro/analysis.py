"""Quantitative shape analysis for complexity measurements.

The reproduction's benchmark claims are about *shapes* — rounds growing
linearly in ``Delta`` (E1, E2), logarithmically (E3, E10), or staying flat
in ``n`` (E2).  This module turns those eyeball judgements into numbers:
least-squares fits against linear and logarithmic models plus a simple
classifier, used by the benches and tests to assert the measured growth
class rather than individual values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Fit", "fit_linear", "fit_log", "classify_growth"]


@dataclass(frozen=True)
class Fit:
    """A least-squares fit ``y ~ slope * f(x) + intercept``.

    ``r_squared`` is the coefficient of determination of the fit (1 = the
    model explains the data perfectly; constant data is reported as 1 for a
    zero-slope model since the residuals vanish).
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, fx: float) -> float:
        """Model value at the (already transformed) abscissa ``fx``."""
        return self.slope * fx + self.intercept


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return Fit(slope=float(slope), intercept=float(intercept), r_squared=r2)


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    """Fit ``y ~ a*x + b``."""
    return _least_squares(xs, ys)


def fit_log(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    """Fit ``y ~ a*log2(x) + b`` (requires positive ``x``)."""
    if any(x <= 0 for x in xs):
        raise ValueError("logarithmic fit needs positive x values")
    return _least_squares([math.log2(x) for x in xs], ys)


def classify_growth(xs: Sequence[float], ys: Sequence[float]) -> str:
    """Classify a measured curve as ``"flat"``, ``"logarithmic"`` or ``"linear"``.

    Heuristic suited to the benches' small series: near-zero relative slope
    means flat; otherwise the better-fitting of the linear and logarithmic
    models wins (ties go to logarithmic, the more conservative claim).
    Returns one of the three labels.
    """
    lin = fit_linear(xs, ys)
    y_span = max(ys) - min(ys)
    y_scale = max(abs(v) for v in ys) or 1.0
    if y_span <= 0.15 * y_scale:
        return "flat"
    log = fit_log(xs, ys)
    if lin.r_squared > log.r_squared:
        return "linear"
    return "logarithmic"
