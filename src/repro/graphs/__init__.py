"""Graph substrate: edge-coloured multigraphs, PO digraphs, lifts, covers,
factor graphs, neighbourhoods and graph families (paper, Section 3).

Everything is backed by the immutable, digest-addressed kernel in
:mod:`repro.graphs.kernel`; :class:`ECGraph` and :class:`POGraph` are thin
mutable views over it (see ``docs/graph_kernel.md``)."""

from .kernel import (
    KERNEL_DIGEST_VERSION,
    FrozenKernelError,
    GraphBuilder,
    GraphKernel,
)
from .multigraph import ECGraph, Edge, ImproperColoringError
from .digraph import POGraph, DiEdge, ImproperPOColoringError
from .neighborhoods import Ball, ball
from .isomorphism import (
    balls_isomorphic,
    canonical_rooted_form,
    ec_isomorphic,
    rooted_isomorphic,
)
from .cover import TruncatedCover, TruncatedCoverPO, universal_cover_ec, universal_cover_po
from .lifts import (
    bipartite_double_cover,
    is_covering_map_ec,
    is_covering_map_po,
    mix,
    random_two_lift,
    unfold_loop,
)
from .factor import factor_graph, factor_graph_po, stable_partition, stable_partition_po
from .loopy import is_k_loopy, is_loopy, loopiness, min_direct_loops
from .ports import po_double_from_ec, po_from_port_numbering, port_numbering_from_po
from .render import ascii_summary, to_dot, witness_pair_to_dot
from .serialize import (
    from_json,
    graph_from_json,
    graph_to_json,
    to_json,
    witness_step_to_json,
)
from . import families

__all__ = [
    "KERNEL_DIGEST_VERSION",
    "FrozenKernelError",
    "GraphBuilder",
    "GraphKernel",
    "ECGraph",
    "Edge",
    "ImproperColoringError",
    "POGraph",
    "DiEdge",
    "ImproperPOColoringError",
    "Ball",
    "ball",
    "balls_isomorphic",
    "canonical_rooted_form",
    "ec_isomorphic",
    "rooted_isomorphic",
    "TruncatedCover",
    "TruncatedCoverPO",
    "universal_cover_ec",
    "universal_cover_po",
    "bipartite_double_cover",
    "is_covering_map_ec",
    "is_covering_map_po",
    "mix",
    "random_two_lift",
    "unfold_loop",
    "factor_graph",
    "factor_graph_po",
    "stable_partition",
    "stable_partition_po",
    "is_k_loopy",
    "is_loopy",
    "loopiness",
    "min_direct_loops",
    "po_double_from_ec",
    "po_from_port_numbering",
    "port_numbering_from_po",
    "ascii_summary",
    "to_dot",
    "witness_pair_to_dot",
    "from_json",
    "graph_from_json",
    "graph_to_json",
    "to_json",
    "witness_step_to_json",
    "families",
]
