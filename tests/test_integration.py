"""End-to-end integration tests: the paper's storyline as executable checks.

Each test stitches several subsystems together and corresponds to a concrete
claim in the paper — these are the tests that make the reproduction a
reproduction rather than a collection of parts.
"""

from __future__ import annotations

import random
from fractions import Fraction

import networkx as nx
import pytest

from repro.core import (
    chain_id_to_ec,
    refute,
    run_adversary,
)
from repro.core.saturation import simple_unfolding
from repro.core.witness import AlgorithmFailure
from repro.graphs.families import (
    random_bounded_degree_graph,
    random_loopy_tree,
    random_regular_graph,
)
from repro.graphs.lifts import is_covering_map_ec
from repro.matching import (
    ProposalFM,
    doubling_algorithm,
    fm_from_node_outputs,
    greedy_color_algorithm,
    max_weight_fm_lp,
    panconesi_rizzi_matching,
    proposal_algorithm,
    randomized_matching,
    validate_maximal_matching,
    verify_distributed,
)


class TestTheorem1Storyline:
    """Theorem 1: maximal FM takes Omega(Delta) rounds; O(Delta) suffices."""

    def test_upper_and_lower_bounds_meet(self):
        """For each Delta: an O(Delta)-round algorithm exists AND no
        algorithm can beat depth Delta-2 — the matching bounds."""
        for delta in (3, 5, 7):
            g = random_regular_graph(12 if (12 * delta) % 2 == 0 else 13, delta, seed=1)
            alg = greedy_color_algorithm()
            fm = fm_from_node_outputs(g, alg.run_on(g))
            assert fm.is_maximal()
            assert alg.rounds_used(g) <= 2 * delta  # O(Delta) upper bound

            witness = run_adversary(greedy_color_algorithm(), delta)
            assert witness.achieved_depth == delta - 2  # Omega(Delta) lower bound

    def test_witness_depth_linear_in_delta(self):
        depths = [run_adversary(greedy_color_algorithm(), d).achieved_depth for d in range(3, 8)]
        diffs = [b - a for a, b in zip(depths, depths[1:])]
        assert all(d == 1 for d in diffs)  # exactly linear


class TestLocalCheckabilityStory:
    """Section 2: maximal FM is locally checkable, so the lower bound needs
    only deterministic algorithms, and solutions verify in one round."""

    def test_every_algorithm_output_verifies_in_one_round(self):
        g = random_bounded_degree_graph(18, 4, seed=2)
        for alg in (greedy_color_algorithm(), proposal_algorithm()):
            outputs = alg.run_on(g)
            ok, _, rounds = verify_distributed(g, outputs)
            assert ok and rounds == 1


class TestComplexityLandscape:
    """Sections 1.1-1.2: the surrounding upper bounds, measured."""

    def test_maximal_fm_vs_approx_separation(self):
        """Maximal FM rounds grow with Delta; the approximation's barely move."""
        maximal_rounds, approx_rounds = [], []
        for delta in (4, 8, 16):
            n = 34 if (34 * delta) % 2 == 0 else 35
            g = random_regular_graph(n, delta, seed=3)
            greedy = greedy_color_algorithm()
            greedy.run_on(g)
            maximal_rounds.append(greedy.rounds_used(g))
            doubling = doubling_algorithm()
            doubling.run_on(g)
            approx_rounds.append(doubling.rounds_used(g))
        assert maximal_rounds[-1] - maximal_rounds[0] >= 8
        assert approx_rounds[-1] - approx_rounds[0] <= 3

    def test_half_approximation_guarantee(self):
        g = random_bounded_degree_graph(24, 5, seed=4)
        fm = fm_from_node_outputs(g, greedy_color_algorithm().run_on(g))
        opt, _ = max_weight_fm_lp(g)
        assert float(fm.total_weight()) >= opt / 2 - 1e-9

    def test_matching_baselines(self):
        g = nx.random_regular_graph(4, 40, seed=5)
        m1, r1 = panconesi_rizzi_matching(g)
        assert validate_maximal_matching(g, m1)
        m2, r2 = randomized_matching(g, random.Random(6))
        assert validate_maximal_matching(g, m2)


class TestSimpleInputsOnly:
    """Section 3.4: analysing multigraphs is legitimate because every output
    on a multigraph is realised on a simple lift."""

    def test_adversary_failures_transfer_to_simple_graphs(self):
        """If an algorithm fails on a loopy multigraph, it fails on the
        explicit *simple* unfolding too."""
        from repro.matching.naive import DegreeSplitFM

        g = random_loopy_tree(3, 2, seed=7)
        alg = DegreeSplitFM()
        fm = fm_from_node_outputs(g, alg.run_on(g))
        simple, alpha = simple_unfolding(g)
        assert simple.is_simple()
        assert is_covering_map_ec(simple, g, alpha)
        fm_simple = fm_from_node_outputs(simple, alg.run_on(simple))
        # degree-split is lift-invariant, so failures project exactly
        assert fm.is_maximal() == fm_simple.is_maximal()

    def test_greedy_agrees_on_simple_unfolding(self):
        g = random_loopy_tree(3, 1, seed=8)
        simple, alpha = simple_unfolding(g)
        base = greedy_color_algorithm().run_on(g)
        up = greedy_color_algorithm().run_on(simple)
        for w in simple.nodes():
            assert up[w] == base[alpha[w]]


class TestSection55Pipeline:
    """The full backwards chain, both dichotomy branches."""

    @pytest.mark.slow
    def test_id_algorithm_cannot_be_fast(self):
        pool = lambda n: [17 * i + 3 for i in range(n)]
        # generous time budget: survives and is certified Omega(Delta)
        ec_ok = chain_id_to_ec(ProposalFM("ID"), t=4, id_pool=pool)
        r = refute(ec_ok, claimed_rounds=1, delta=4)
        assert r.kind == "locality-violation"
        # starved time budget: caught as incorrect
        ec_bad = chain_id_to_ec(ProposalFM("ID"), t=2, id_pool=pool)
        r2 = refute(ec_bad, claimed_rounds=2, delta=4)
        assert r2.kind == "incorrect-output"
