"""Runtime locality sanitizer: the simulator polices the model contract.

The static pass in :mod:`repro.lint` catches what is visible in the AST;
this module catches the rest at run time.  When a simulator run is started
with ``sanitize=True`` every :class:`~repro.local.context.NodeContext` is
wrapped in a :class:`SanitizedContext` proxy that records *every attribute
read* a node algorithm performs and raises (or, in ``"log"`` mode, records)
a :class:`LocalityViolation` whenever the read is outside what the node's
model permits:

===== ==========================================
model attributes a node may read
===== ==========================================
EC    ``model``, ``ports``, ``degree``, ``globals``
PO    ``model``, ``ports``, ``degree``, ``globals``
OI    ``model``, ``ports``, ``degree``, ``globals``
ID    all of the above plus ``identifier``, ``node``
===== ==========================================

An algorithm with a *sanctioned* out-of-model read (e.g. looking up its
private coins in the tape, or indexing its own certificate input) declares
it with a class attribute ``sanitizer_allow = frozenset({"node"})`` next to
a comment justifying why the read carries no identity information; the
declaration is deliberately visible at the class head so reviews and the
static linter can audit it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, List, Tuple

from .context import NodeContext

Node = Hashable

__all__ = [
    "LocalityViolation",
    "AccessLog",
    "SanitizedContext",
    "MODEL_ALLOWED",
    "allowed_attributes",
    "wrap_contexts",
]

_COMMON = frozenset({"model", "ports", "degree", "globals"})

#: attribute whitelist per model; anything else is an out-of-model read.
MODEL_ALLOWED: Dict[str, FrozenSet[str]] = {
    "EC": _COMMON,
    "PO": _COMMON,
    "OI": _COMMON,
    "ID": _COMMON | {"identifier", "node"},
}


class LocalityViolation(RuntimeError):
    """A node algorithm read context state its model does not grant."""

    def __init__(self, node: Node, model: str, attr: str):
        self.node = node
        self.model = model
        self.attr = attr
        super().__init__(
            f"node {node!r} read ctx.{attr} in the {model} model; allowed: "
            f"{sorted(MODEL_ALLOWED.get(model, _COMMON))} (declare "
            f"sanitizer_allow on the algorithm class to sanction this read)"
        )


@dataclass
class AccessLog:
    """Every context read of a sanitized run, grouped per model.

    Attributes
    ----------
    model:
        The network model the run executed under.
    reads:
        ``attr -> count`` over all nodes and rounds.
    by_node:
        ``node -> attr -> count``.
    violations:
        Out-of-model ``(node, attr)`` reads, in occurrence order.  In
        ``"raise"`` mode the first entry is also raised as a
        :class:`LocalityViolation`; in ``"log"`` mode the run continues and
        the list accumulates.
    """

    model: str
    reads: Counter = field(default_factory=Counter)
    by_node: Dict[Node, Counter] = field(default_factory=dict)
    violations: List[Tuple[Node, str]] = field(default_factory=list)

    def record(self, node: Node, attr: str, *, out_of_model: bool) -> None:
        """Count one read (and remember it if out of model)."""
        self.reads[attr] += 1
        self.by_node.setdefault(node, Counter())[attr] += 1
        if out_of_model:
            self.violations.append((node, attr))

    @property
    def clean(self) -> bool:
        """Whether the run performed no out-of-model read."""
        return not self.violations


class SanitizedContext:
    """Access-tracking proxy around a :class:`NodeContext`.

    Forwards every public attribute read to the wrapped context, recording
    it in the shared :class:`AccessLog`; reads outside ``allowed`` raise a
    :class:`LocalityViolation` (mode ``"raise"``) or are merely recorded
    (mode ``"log"``).  The proxy is read-only like the context it wraps.
    """

    __slots__ = ("_ctx", "_log", "_allowed", "_mode")

    def __init__(
        self,
        ctx: NodeContext,
        log: AccessLog,
        allowed: FrozenSet[str],
        mode: str = "raise",
    ):
        if mode not in ("raise", "log"):
            raise ValueError(f"mode must be 'raise' or 'log', got {mode!r}")
        object.__setattr__(self, "_ctx", ctx)
        object.__setattr__(self, "_log", log)
        object.__setattr__(self, "_allowed", allowed)
        object.__setattr__(self, "_mode", mode)

    def __getattr__(self, name: str) -> Any:
        ctx: NodeContext = object.__getattribute__(self, "_ctx")
        if name.startswith("_"):
            # dunder/protocol lookups are Python machinery, not model reads
            return getattr(ctx, name)
        value = getattr(ctx, name)
        log: AccessLog = object.__getattribute__(self, "_log")
        out = name not in object.__getattribute__(self, "_allowed")
        log.record(ctx.node, name, out_of_model=out)
        if out and object.__getattribute__(self, "_mode") == "raise":
            raise LocalityViolation(ctx.node, ctx.model, name)
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("SanitizedContext is read-only")

    def __repr__(self) -> str:
        ctx = object.__getattribute__(self, "_ctx")
        return f"SanitizedContext({ctx!r})"


def allowed_attributes(model: str, algorithm: Any = None) -> FrozenSet[str]:
    """The read whitelist for ``model`` plus the algorithm's declared allowance."""
    allowed = MODEL_ALLOWED.get(model, _COMMON)
    declared = getattr(algorithm, "sanitizer_allow", None)
    if declared:
        allowed = allowed | frozenset(declared)
    return allowed


def wrap_contexts(
    ctxs: Dict[Node, NodeContext],
    model: str,
    algorithm: Any = None,
    mode: str = "raise",
) -> Tuple[Dict[Node, SanitizedContext], AccessLog]:
    """Wrap a whole context table for a sanitized run; returns the shared log."""
    log = AccessLog(model=model)
    allowed = allowed_attributes(model, algorithm)
    wrapped = {v: SanitizedContext(ctx, log, allowed, mode=mode) for v, ctx in ctxs.items()}
    return wrapped, log
