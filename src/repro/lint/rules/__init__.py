"""Rule registry: rule id -> ``check(module) -> Iterator[Finding]``.

Each rule lives in its own module and enforces one model contract; see
``docs/static_analysis.md`` for the paper/DESIGN justification of each.
"""

from __future__ import annotations

from . import determinism, exact_arith, locality, mutation

ALL_RULES = {
    locality.RULE_ID: locality.check,
    determinism.RULE_ID: determinism.check,
    exact_arith.RULE_ID: exact_arith.check,
    mutation.RULE_ID: mutation.check,
}

__all__ = ["ALL_RULES"]
