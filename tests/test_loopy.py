"""Tests for loopiness (repro.graphs.loopy, paper Definition 1)."""

from __future__ import annotations

from repro.graphs.families import (
    cycle_graph,
    path_graph,
    random_loopy_tree,
    single_node_with_loops,
)
from repro.graphs.lifts import unfold_loop
from repro.graphs.loopy import is_k_loopy, is_loopy, loopiness, min_direct_loops
from repro.graphs.multigraph import ECGraph


class TestLoopiness:
    def test_single_node(self):
        assert loopiness(single_node_with_loops(4)) == 4
        assert is_k_loopy(single_node_with_loops(4), 4)
        assert not is_k_loopy(single_node_with_loops(4), 5)

    def test_loop_free_graph(self):
        assert loopiness(path_graph(3)) == 0
        assert not is_loopy(path_graph(3))

    def test_random_loopy_tree_budget(self):
        g = random_loopy_tree(6, 2, seed=3)
        assert loopiness(g) >= 2

    def test_empty_graph(self):
        assert loopiness(ECGraph()) == 0


class TestFactorLoopiness:
    def test_symmetric_structure_counts_as_loops(self):
        """A 2-lift of a loopy graph is still loopy: the unfolded loop edge
        collapses back to a loop in the factor graph, so loopiness sees it."""
        g = single_node_with_loops(2)
        gg, _, _ = unfold_loop(g, g.loops_at(0)[0].eid)
        # each node of GG has only 1 direct loop, but the factor has 2
        assert min_direct_loops(gg) == 1
        assert loopiness(gg) == 2

    def test_min_direct_loops_lower_bounds_loopiness(self):
        for seed in range(4):
            g = random_loopy_tree(5, 1, seed=seed)
            assert min_direct_loops(g) <= loopiness(g)

    def test_even_cycle_is_loopy_via_factor(self):
        """An alternating 2-coloured even cycle factors to loops: anonymous
        algorithms cannot break its symmetry, exactly what loopiness measures."""
        g = cycle_graph(4)
        assert min_direct_loops(g) == 0
        assert loopiness(g) >= 1
