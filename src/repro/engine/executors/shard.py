"""The backend-independent shard runtime every executor drives.

A *shard* is the unit of work a :class:`~repro.engine.executors.base.
SweepExecutor` ships somewhere: a JSON-ready payload dict naming the cells
to run, the result store and cache to use, and the fault/watchdog/retry
discipline to apply.  :func:`run_shard` is the one function that executes
it — in this process (inline backend), in a spawned pool worker (process
backend) or inside a shard server reached over a socket (socket backend).
Because every backend funnels through the same runtime, the byte-identity
and fault-tolerance invariants are properties of the *payload*, not of any
particular backend.

The runtime installs the ambient tracer/fault-injector/cache hooks for the
duration of a shard.  Those hooks are deliberately plain module globals
(:mod:`repro.obs.tracer`, :mod:`repro.engine.faults`), so two shards must
never execute concurrently *inside one process*: :data:`_AMBIENT_LOCK`
serialises them.  Process workers are unaffected (one shard per process);
the lock is what makes in-process backends — inline rounds, loopback shard
servers — safe without contextvar plumbing.

``time.sleep`` here implements only the deterministic retry backoff and
the watchdog join timeout and never feeds any model output; the module is
a sanctioned clock user (``LintConfig.clock_modules``) for exactly those
lines, and a sanctioned worker module for the watchdog thread.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from typing import List, Optional, Tuple

from ...graphs.isomorphism import use_canonical_cache
from ...obs.export import trace_document
from ...obs.tracer import Tracer, use_tracer
from ..cache import CanonicalFormCache
from ..faults import FaultInjector, FaultPlan, InjectedWorkerError, use_faults
from ..grid import Cell, run_cell
from ..store import ResultStore

__all__ = [
    "CellExecutionError",
    "CellTimeout",
    "run_shard",
    "shard_cells",
    "shard_payloads",
]

#: deterministic retry backoff: attempt k sleeps k * _BACKOFF_BASE seconds
_BACKOFF_BASE = 0.02

#: serialises in-process shard execution: the ambient tracer/fault/cache
#: hooks are process-global, so only one shard may own them at a time
_AMBIENT_LOCK = threading.Lock()


class CellExecutionError(RuntimeError):
    """A cell failed after every retry; names the failing grid point."""

    def __init__(self, key: str, algorithm: str = "?", delta: int = -1,
                 chain: str = "?", seed: int = -1, cause: str = ""):
        self.key = key
        self.algorithm = algorithm
        self.delta = delta
        self.chain = chain
        self.seed = seed
        self.cause = cause
        super().__init__(
            f"cell {key} (algorithm={algorithm}, delta={delta}, chain={chain}, "
            f"seed={seed}) failed: {cause}"
        )

    def __reduce__(self):  # exceptions cross the process boundary pickled
        return (type(self), (self.key, self.algorithm, self.delta, self.chain, self.seed, self.cause))

    @classmethod
    def for_cell(cls, cell: Cell, cause: BaseException) -> "CellExecutionError":
        return cls(
            cell.key, cell.algorithm, cell.delta, cell.chain, cell.seed,
            f"{type(cause).__name__}: {cause}",
        )

    def as_record(self) -> dict:
        """The JSON-ready account recorded in ``summary.json``'s ``failed``."""
        return {
            "key": self.key,
            "algorithm": self.algorithm,
            "delta": self.delta,
            "chain": self.chain,
            "seed": self.seed,
            "error": self.cause,
        }


class CellTimeout(RuntimeError):
    """The per-cell watchdog fired before the cell finished."""

    def __init__(self, key: str, timeout: float):
        self.key = key
        self.timeout = timeout
        super().__init__(f"cell {key} exceeded its {timeout:g}s watchdog")

    def __reduce__(self):
        return (type(self), (self.key, self.timeout))


def shard_cells(cells: List[Cell], shards: int) -> List[List[Cell]]:
    """Deterministic round-robin split; empty shards are dropped."""
    buckets: List[List[Cell]] = [[] for _ in range(max(shards, 1))]
    for index, cell in enumerate(cells):
        buckets[index % len(buckets)].append(cell)
    return [bucket for bucket in buckets if bucket]


def _execute_cell(
    cell: Cell,
    tracer: Tracer,
    injector: Optional[FaultInjector],
    cell_timeout: Optional[float],
    retries: int,
) -> dict:
    """One cell under the watchdog and the bounded retry loop.

    Raises :class:`CellExecutionError` when the last attempt still fails;
    :class:`InjectedWorkerError` passes straight through — a simulated
    worker crash is the *coordinator's* problem, not a per-cell retry.
    """
    last: Optional[BaseException] = None
    for attempt in range(retries + 1):
        if attempt:
            tracer.metrics.counter("engine.cell_retry").inc()
            time.sleep(_BACKOFF_BASE * attempt)  # deterministic backoff schedule
        try:
            return _run_cell_watchdogged(cell, tracer, injector, attempt, cell_timeout)
        except InjectedWorkerError:
            raise
        except CellTimeout as exc:
            tracer.metrics.counter("engine.cell_timeout").inc()
            last = exc
        except Exception as exc:  # noqa: BLE001 - every failure is named below
            last = exc
    raise CellExecutionError.for_cell(cell, last if last is not None else RuntimeError("unknown"))


def _run_cell_watchdogged(
    cell: Cell,
    tracer: Tracer,
    injector: Optional[FaultInjector],
    attempt: int,
    cell_timeout: Optional[float],
) -> dict:
    """Run one cell, bounded by ``cell_timeout`` seconds when set.

    The timed path computes on a worker thread against a private tracer;
    on success the finished spans are grafted back under the shard span, on
    timeout the abandoned attempt's spans are discarded with it.  Without a
    timeout the cell runs inline — the exact pre-fault-hardening hot path.
    """

    def body(body_tracer: Tracer) -> dict:
        if injector is not None:
            injector.on_cell_body(cell.key, attempt)
        return run_cell(cell, tracer=body_tracer)

    if cell_timeout is None:
        return body(tracer)

    sub = Tracer()
    outcome: List[dict] = []
    failure: List[BaseException] = []

    def target() -> None:
        try:
            outcome.append(body(sub))
        except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
            failure.append(exc)

    watchdogged = threading.Thread(target=target, daemon=True, name=f"cell-{cell.key}")
    watchdogged.start()
    watchdogged.join(cell_timeout)
    if watchdogged.is_alive():
        raise CellTimeout(cell.key, cell_timeout)
    tracer.graft(sub.roots)
    if failure:
        raise failure[0]
    return outcome[0]


def run_shard(payload: dict, on_row=None) -> Tuple[int, List[dict], dict, dict]:
    """Execute one shard payload; the unit of work every backend submits.

    Returns ``(shard_index, rows, trace_document, cache_stats)``.  Must stay
    a module-level function: the process backend's spawn context pickles it
    by reference, and the socket backend's shard server dispatches to it by
    name.  ``on_row`` is an in-process-only hook — serial rounds pass the
    sweep's progress callback; remote backends always run with the default
    ``None`` (a callback could not cross a process or socket boundary).
    """
    shard_index = payload["shard"]
    cells = [Cell.from_dict(d) for d in payload["cells"]]
    store = ResultStore(payload["out_dir"]) if payload["out_dir"] else None
    plan = FaultPlan.from_dict(payload["plan"]) if payload.get("plan") else None
    injector = (
        FaultInjector(plan, shard=shard_index, in_worker=payload.get("in_worker", False))
        if plan is not None
        else None
    )
    tracer = Tracer()
    # tenancy keys read through .get(): payloads from older coordinators
    # (or replayed fixtures) without them still execute unchanged
    cache = CanonicalFormCache(
        directory=payload["cache_dir"],
        tenant=payload.get("cache_tenant"),
        shared_dir=payload.get("shared_cache_dir"),
        disk_budget=payload.get("cache_disk_budget"),
    )
    rows: List[dict] = []
    with _AMBIENT_LOCK:
        with use_tracer(tracer), use_faults(injector):
            guard = use_canonical_cache(cache) if payload["use_cache"] else nullcontext()
            with guard:
                with tracer.span(
                    "engine.shard",
                    shard=shard_index,
                    cells=len(cells),
                    round=payload.get("round", 0),
                ) as span:
                    for cell in cells:
                        if injector is not None:
                            injector.on_worker_cell(cell.key, payload.get("round", 0))
                        row = _execute_cell(
                            cell, tracer, injector, payload.get("cell_timeout"), payload.get("retries", 1)
                        )
                        rows.append(row)
                        if store is not None:
                            store.append(shard_index, row)
                        if on_row is not None:
                            on_row(row, cache.stats)
                    span.set(
                        cache_hits=cache.stats.hits,
                        cache_misses=cache.stats.misses,
                    )
    doc = trace_document(tracer, command=f"sweep shard {shard_index}")
    return shard_index, rows, doc, cache.stats.as_dict()


def shard_payloads(
    shards: List[List[Cell]],
    store: Optional[ResultStore],
    cache_dir,
    use_cache: bool,
    plan: Optional[FaultPlan],
    round_: int,
    cell_timeout: Optional[float],
    retries: int,
    in_worker: bool,
    cache_tenant: Optional[str] = None,
    shared_cache_dir=None,
    cache_disk_budget: Optional[int] = None,
) -> List[dict]:
    """JSON-ready payload dicts for one round of shards.

    Everything a payload carries survives ``json.dumps`` round-trips, which
    is what lets the socket backend ship shards over the wire unchanged.
    """
    return [
        {
            "shard": index,
            "cells": [cell.as_dict() for cell in bucket],
            "out_dir": str(store.directory) if store else None,
            "cache_dir": str(cache_dir) if cache_dir else None,
            "use_cache": use_cache,
            "plan": plan.as_dict() if plan is not None else None,
            "round": round_,
            "cell_timeout": cell_timeout,
            "retries": retries,
            "in_worker": in_worker,
            "cache_tenant": cache_tenant,
            "shared_cache_dir": str(shared_cache_dir) if shared_cache_dir else None,
            "cache_disk_budget": cache_disk_budget,
        }
        for index, bucket in enumerate(shards)
    ]
