"""Tests for the EC <= PO simulation (repro.core.sim_ec_po, Section 5.1)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.sim_ec_po import ECFromPO, ec_algorithm_from_po
from repro.graphs.families import (
    caterpillar,
    cycle_graph,
    random_loopy_tree,
    single_node_with_loops,
    star_graph,
)
from repro.local.algorithm import POWeightAlgorithm, SimulatedPOWeights
from repro.matching.fm import fm_from_node_outputs
from repro.matching.proposal import ProposalFM


def proposal_po():
    return SimulatedPOWeights(ProposalFM("PO"), name="proposal-po")


class TestCorrectnessTransfer:
    def test_maximal_fm_on_samples(self):
        ec = ECFromPO(proposal_po())
        for g in (
            cycle_graph(6),
            star_graph(4),
            caterpillar(3, 2),
            random_loopy_tree(4, 1, seed=0),
            single_node_with_loops(3),
        ):
            fm = fm_from_node_outputs(g, ec.run_on(g))
            assert fm.is_feasible(), repr(g)
            assert fm.is_maximal(), repr(g)

    def test_loopy_graphs_fully_saturated(self):
        ec = ECFromPO(proposal_po())
        g = random_loopy_tree(5, 2, seed=1)
        fm = fm_from_node_outputs(g, ec.run_on(g))
        assert fm.is_fully_saturated()


class TestWeightMapping:
    def test_edge_weight_is_sum_of_arc_weights(self):
        """y_EC({u,v}) = y(u,v) + y(v,u) (Figure 8)."""
        g = star_graph(1)

        class FixedPO(POWeightAlgorithm):
            name = "fixed"

            def run_on(self, d):
                return {
                    0: {("out", 1): Fraction(1, 3), ("in", 1): Fraction(1, 4)},
                    1: {("in", 1): Fraction(1, 3), ("out", 1): Fraction(1, 4)},
                }

        ec = ECFromPO(FixedPO())
        out = ec.run_on(g)
        assert out[0][1] == Fraction(7, 12)
        assert out[1][1] == Fraction(7, 12)

    def test_loop_weight_doubles(self):
        """An EC loop's weight is twice its directed loop's arc weight: the
        loop occupies both slots of its node."""
        g = single_node_with_loops(1)

        class FixedPO(POWeightAlgorithm):
            name = "fixed-loop"

            def run_on(self, d):
                return {0: {("out", 1): Fraction(1, 2), ("in", 1): Fraction(1, 2)}}

        out = ECFromPO(FixedPO()).run_on(g)
        assert out[0][1] == Fraction(1)

    def test_mismatched_loop_slots_rejected(self):
        g = single_node_with_loops(1)

        class BrokenPO(POWeightAlgorithm):
            name = "broken"

            def run_on(self, d):
                return {0: {("out", 1): Fraction(1, 2), ("in", 1): Fraction(1, 3)}}

        with pytest.raises(ValueError, match="single directed loop"):
            ECFromPO(BrokenPO()).run_on(g)


class TestBookkeeping:
    def test_name_records_chain(self):
        ec = ec_algorithm_from_po(proposal_po())
        assert "ec<=po" in ec.name and "proposal-po" in ec.name

    def test_rounds_forwarded(self):
        ec = ECFromPO(proposal_po())
        g = cycle_graph(6)
        ec.run_on(g)
        assert ec.rounds_used(g) is not None
