"""The in-process backend: shards on an asyncio loop, zero spawn.

``InlineExecutor`` is the serial baseline every other backend must
reproduce byte-identically, and the default backend for smoke grids and
the fault-harness unit tests — no process spawn, no sockets, nothing to
clean up, full per-row progress callbacks.

Each round's shards run as tasks on a private event loop, awaited in
submission order.  The shard runtime itself never awaits, so execution is
strictly sequential and deterministic; the loop buys structure (a place to
hang cancellation and async fault hooks later) rather than concurrency —
the ambient tracer/fault hooks are process-global, so in-process shards
must not overlap anyway (:mod:`repro.engine.executors.shard` serialises
them).

``asyncio`` is not a worker-spawn primitive — the determinism lint's
worker check covers ``multiprocessing``/``concurrent.futures``/
``threading`` — so this module needs no sanction: it cannot leak
interpreter state across any boundary because there is no boundary.
"""

from __future__ import annotations

import asyncio
from typing import List, Tuple

from ..faults import InjectedWorkerError
from .base import ExecutorCapabilities, ExecutorContext, ShardFailure, ShardOutcome, SweepExecutor
from .shard import CellExecutionError, CellTimeout, run_shard

__all__ = ["InlineExecutor"]


class InlineExecutor(SweepExecutor):
    """Run every shard in this process, one after another."""

    name = "inline"
    width = 1
    capabilities = ExecutorCapabilities(
        parallel=False,
        separate_process=False,
        supports_on_row=True,
    )

    def run_round(
        self, payloads: List[dict], ctx: ExecutorContext
    ) -> Tuple[List[ShardOutcome], List[ShardFailure]]:
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(self._drain(payloads, ctx))
        finally:
            loop.close()

    async def _drain(
        self, payloads: List[dict], ctx: ExecutorContext
    ) -> Tuple[List[ShardOutcome], List[ShardFailure]]:
        outcomes: List[ShardOutcome] = []
        failures: List[ShardFailure] = []
        for payload in payloads:
            try:
                outcomes.append(await self._submit(payload, ctx))
            except (InjectedWorkerError, CellExecutionError, CellTimeout) as exc:
                failures.append((payload, exc))
        return outcomes, failures

    async def _submit(self, payload: dict, ctx: ExecutorContext) -> ShardOutcome:
        return self.submit_shard(payload, ctx)

    def submit_shard(self, payload: dict, ctx: ExecutorContext) -> ShardOutcome:
        return run_shard(payload, ctx.on_row)
