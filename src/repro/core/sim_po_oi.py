"""The simulation PO <= OI (paper, Section 5.3 and Figure 9).

A ``t``-time OI-algorithm for a PO-checkable problem yields a ``t``-time
PO-algorithm: given a PO-graph ``G`` and a node ``v``,

1. materialise the radius-``t`` neighbourhood ``tau_t(UG, v)`` of the
   universal cover (:func:`repro.graphs.cover.universal_cover_po`);
2. embed it into the infinite 2d-regular PO-tree ``T``: each cover node's
   step word (edge ids replaced by their colours) is a reduced free-group
   word, and the embedding is forced by the colours;
3. order the cover nodes by the homogeneous order of Appendix A
   (:mod:`repro.core.canonical_order`) — by Lemma 4 the resulting ordered
   structure is independent of where the root lands in ``T``;
4. evaluate the OI-algorithm on the ordered neighbourhood and output what it
   says about the root.

Feasibility on ``G`` follows from feasibility on the canonically ordered
``(UG, <)`` plus PO-checkability — all of which the tests verify on the
produced outputs rather than assume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..graphs.cover import TruncatedCoverPO, universal_cover_po
from ..graphs.digraph import POGraph
from ..local.algorithm import DistributedAlgorithm, POWeightAlgorithm
from ..local.runtime import PONetwork, run_rounds
from .canonical_order import Word, tree_sort_key

Node = Hashable
Slot = Tuple[str, Any]  # ("out", colour) / ("in", colour)

__all__ = ["OIAlgorithm", "POFromOI", "po_algorithm_from_oi", "SymmetricOIAdapter", "cover_words"]


class OIAlgorithm(ABC):
    """A ``t``-time order-invariant algorithm on ordered PO-neighbourhoods.

    ``evaluate`` receives the radius-``t`` cover neighbourhood (a PO-tree),
    its root, and the nodes listed in increasing linear order; it must
    return the root's output — a weight per incident slot.  Order-invariance
    is structural: the only access to identity is the supplied order.
    """

    #: the algorithm's radius (how much of the cover it is shown)
    t: int = 0

    name: str = "oi-algorithm"

    @abstractmethod
    def evaluate(self, tree: POGraph, root: Node, ordered_nodes: List[Node]) -> Dict[Slot, Fraction]:
        """Output of the root on the ordered neighbourhood."""


def cover_words(g: POGraph, cover: TruncatedCoverPO) -> Dict[Node, Word]:
    """The ``T``-embedding of a truncated PO cover.

    A cover node is labelled by its ``(edge id, direction)`` step walk; the
    embedding replaces ids by colours.  Properness makes the result a
    *reduced* word and the map injective, so the homogeneous order of
    :mod:`repro.core.canonical_order` orders the cover nodes.
    """
    words: Dict[Node, Word] = {}
    for label in cover.tree.nodes():
        words[label] = tuple((g.edge(eid).color, d) for (eid, d) in label)
    return words


class POFromOI(POWeightAlgorithm):
    """PO-model wrapper around an OI-algorithm (the Section 5.3 simulation)."""

    def __init__(self, oi_algorithm: OIAlgorithm):
        self.oi_algorithm = oi_algorithm
        self.name = f"po<=oi[{oi_algorithm.name}]"

    def run_on(self, g: POGraph) -> Dict[Node, Dict[Slot, Fraction]]:
        from ..obs.tracer import current_tracer

        t = self.oi_algorithm.t
        outputs: Dict[Node, Dict[Slot, Fraction]] = {}
        tracer = current_tracer()
        tracer.metrics.counter("sim.layer_runs", layer="po_from_oi", algorithm=self.name).inc()
        with tracer.span(
            "sim.po_from_oi",
            algorithm=self.name,
            nodes=g.num_nodes(),
            t=t,
            graph=g.digest[:12],
        ) as span:
            for v in g.nodes():
                cover = universal_cover_po(g, v, t)
                words = cover_words(g, cover)
                ordered = sorted(cover.tree.nodes(), key=lambda n: tree_sort_key(words[n]))
                outputs[v] = dict(
                    self.oi_algorithm.evaluate(cover.tree, cover.root, ordered)
                )
                span.add("covers")
                span.add("cover_nodes", cover.tree.num_nodes())
        return outputs

    def rounds_used(self, g: POGraph) -> Optional[int]:
        """The simulation is run-time preserving: exactly ``t`` rounds."""
        return self.oi_algorithm.t


def po_algorithm_from_oi(oi_algorithm: OIAlgorithm) -> POFromOI:
    """Functional spelling of :class:`POFromOI`."""
    return POFromOI(oi_algorithm)


class SymmetricOIAdapter(OIAlgorithm):
    """Present a port-symmetric PO state machine as an OI-algorithm.

    Order-oblivious algorithms (e.g. the proposal or doubling dynamics) are
    trivially order-invariant; this adapter runs them for ``t`` rounds on the
    cover neighbourhood and reports the root's (possibly snapshotted)
    weights.  It exists to exercise the full PO <= OI plumbing end to end —
    covers, embeddings, canonical order — with algorithms whose correctness
    is independently known.

    ``globals_factory`` supplies the state machine's global knowledge for a
    given tree (e.g. ``delta``).

    Radius convention: the paper's ``tau_t`` excludes even the centre's own
    ports at ``t = 0``, so a state machine whose nodes see their ports at
    initialisation and exchange ``r`` messages computes a function of
    ``tau_{r+1}``.  A ``t``-time OI-algorithm therefore runs its wrapped
    machine for ``t - 1`` rounds on the radius-``t`` cover; the truncation
    boundary (whose nodes have incomplete port information) then lies
    strictly beyond the root's information horizon.
    """

    def __init__(
        self,
        algorithm: DistributedAlgorithm,
        t: int,
        globals_factory: Optional[Callable[[POGraph], Dict[str, Any]]] = None,
        name: Optional[str] = None,
    ):
        if algorithm.model != "PO":
            raise ValueError("SymmetricOIAdapter wraps PO-model state machines")
        if t < 1:
            raise ValueError("state-machine adapters need t >= 1 (tau_0 hides the ports)")
        self.algorithm = algorithm
        self.t = t
        self.globals_factory = globals_factory or (lambda tree: {})
        self.name = name or f"symmetric[{type(algorithm).__name__}]"

    def evaluate(self, tree: POGraph, root: Node, ordered_nodes: List[Node]) -> Dict[Slot, Fraction]:
        network = PONetwork(tree, globals_=self.globals_factory(tree))
        result = run_rounds(network, self.algorithm, rounds=self.t - 1)
        out = result.outputs[root]
        if out is None:
            raise RuntimeError(
                f"{self.name}: the wrapped algorithm offered no output or snapshot "
                f"after {self.t} rounds"
            )
        return dict(out)
