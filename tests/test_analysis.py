"""Tests for shape analysis (repro.analysis) and its application to the
measured complexity curves — the quantitative form of the benches' claims."""

from __future__ import annotations

import math

import pytest

from repro.analysis import classify_growth, fit_linear, fit_log


class TestFits:
    def test_exact_linear(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_log(self):
        xs = [2, 4, 8, 16]
        ys = [3 * math.log2(x) + 1 for x in xs]
        fit = fit_log(xs, ys)
        assert fit.slope == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_constant_series(self):
        fit = fit_linear([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [2])

    def test_log_needs_positive_x(self):
        with pytest.raises(ValueError):
            fit_log([0, 1], [1, 2])

    def test_predict(self):
        fit = fit_linear([0, 1], [1, 3])
        assert fit.predict(2) == pytest.approx(5.0)


class TestClassifier:
    def test_flat(self):
        assert classify_growth([10, 20, 40, 80], [6, 6, 6, 7]) == "flat"

    def test_linear(self):
        assert classify_growth([2, 4, 8, 16], [3, 7, 15, 31]) == "linear"

    def test_logarithmic(self):
        xs = [2, 4, 8, 16, 32]
        ys = [round(math.log2(x)) + 1 for x in xs]
        assert classify_growth(xs, ys) == "logarithmic"


class TestClassifierDegenerateSeries:
    """Edge cases the benches can produce: tiny, constant, or zero series."""

    def test_exactly_constant_data_is_flat(self):
        assert classify_growth([1, 2, 3, 4], [5, 5, 5, 5]) == "flat"

    def test_all_zero_ys_are_flat_not_a_division_error(self):
        # y_scale degenerates to 0; the classifier must not divide by it
        assert classify_growth([1, 2, 3], [0, 0, 0]) == "flat"

    def test_two_point_series_ties_go_to_logarithmic(self):
        # both models fit two points perfectly (r^2 = 1); the tie resolves
        # to the more conservative claim
        assert classify_growth([2, 4], [1, 5]) == "logarithmic"

    def test_two_point_constant_series_is_flat(self):
        assert classify_growth([2, 4], [3, 3]) == "flat"

    def test_single_point_raises(self):
        with pytest.raises(ValueError):
            classify_growth([1], [2])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            classify_growth([1, 2, 3], [1, 2])

    def test_non_positive_x_propagates_fit_log_error(self):
        # a growing series forces the log fit, which rejects x <= 0
        with pytest.raises(ValueError):
            classify_growth([0, 1, 2], [1, 5, 9])

    def test_non_positive_x_still_classifies_flat_without_log_fit(self):
        # the flat short-circuit never consults the log model, so x <= 0
        # is acceptable for constant data
        assert classify_growth([0, 1, 2], [4, 4, 4]) == "flat"

    def test_negative_x_rejected_by_fit_log(self):
        with pytest.raises(ValueError):
            fit_log([-2, 1], [1, 2])

    def test_fit_log_two_points_is_exact(self):
        fit = fit_log([2, 8], [1, 3])
        assert fit.slope == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)


class TestMeasuredShapes:
    """The headline claims, asserted quantitatively on fresh measurements."""

    def test_witness_depth_is_linear_in_delta(self):
        from repro.core.adversary import run_adversary
        from repro.matching.greedy_color import greedy_color_algorithm

        deltas = [3, 4, 5, 6, 7]
        depths = [run_adversary(greedy_color_algorithm(), d).achieved_depth for d in deltas]
        assert classify_growth(deltas, depths) == "linear"
        fit = fit_linear(deltas, depths)
        assert fit.slope == pytest.approx(1.0)  # exactly Delta - 2

    def test_greedy_rounds_linear_doubling_rounds_log(self):
        from repro.graphs.families import random_bounded_degree_graph
        from repro.matching.greedy_color import greedy_color_algorithm
        from repro.matching.kuhn_approx import doubling_algorithm

        requested = [2, 4, 8, 16]
        achieved_deltas, greedy_rounds, doubling_rounds = [], [], []
        for d in requested:
            g = random_bounded_degree_graph(50, d, seed=1)
            # the random construction may stop short of the requested bound;
            # the claims are about the graph's *actual* maximum degree
            achieved_deltas.append(g.max_degree())
            greedy = greedy_color_algorithm()
            greedy.run_on(g)
            greedy_rounds.append(greedy.rounds_used(g))
            doubling = doubling_algorithm()
            doubling.run_on(g)
            doubling_rounds.append(doubling.rounds_used(g))
        assert classify_growth(achieved_deltas, greedy_rounds) == "linear"
        assert classify_growth(achieved_deltas, doubling_rounds) in ("logarithmic", "flat")
        # and the separation itself: greedy's slope dwarfs doubling's
        assert (
            fit_linear(achieved_deltas, greedy_rounds).slope
            > 3 * fit_linear(achieved_deltas, doubling_rounds).slope
        )

    def test_rounds_flat_in_n(self):
        from repro.graphs.families import random_regular_graph
        from repro.matching.greedy_color import greedy_color_algorithm

        ns = [20, 40, 80, 160]
        rounds = []
        for n in ns:
            g = random_regular_graph(n, 4, seed=2)
            alg = greedy_color_algorithm()
            alg.run_on(g)
            rounds.append(alg.rounds_used(g))
        assert classify_growth(ns, rounds) == "flat"
