"""The propagation principle (paper, Fact 3 and Fact 8).

If two fractional matchings both saturate a node ``v`` and disagree on some
edge incident to ``v``, the saturation equations force them to disagree on
*another* edge incident to ``v`` — disagreements cannot stop at a saturated
node.  On a tree (ignoring loops) a chain of disagreements therefore walks a
simple path until it is resolved at a **loop**, which is where the adversary
of Section 4 finds its next witness (Figure 7), and where Lemma 7's
relabelling argument derives its contradiction.

Outputs are compared in the problem's native encoding — per-node mappings
``{incident colour: weight}`` — because the unfold-and-mix construction
relates graphs that share a node set but not an edge-id space (a loop of
``G`` and the fresh mixing edge of ``GH`` occupy the same colour slot).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..graphs.multigraph import ECGraph

Node = Hashable
Color = Hashable
NodeOutputs = Mapping[Node, Mapping[Color, Fraction]]

__all__ = [
    "PropagationError",
    "disagreeing_colors",
    "node_load_of_output",
    "next_disagreement",
    "disagreement_walk",
]

ONE = Fraction(1)


class PropagationError(RuntimeError):
    """Raised when the propagation preconditions fail (a correctness bug in
    the algorithm under test, or a misuse of the walk)."""


def node_load_of_output(g: ECGraph, outputs: NodeOutputs, v: Node) -> Fraction:
    """``y[v]`` computed from a per-node colour->weight output map.

    Iterates the node's colour slots directly (:meth:`ECGraph.incident_colors`)
    rather than materialising sorted edge records — exact :class:`Fraction`
    addition is order-independent, so the slot order is irrelevant.
    """
    out = outputs[v]
    return sum(
        (
            w if type(w) is Fraction else Fraction(w)
            for w in (out[c] for c in g.incident_colors(v))
        ),
        Fraction(0),
    )


def disagreeing_colors(outputs1: NodeOutputs, outputs2: NodeOutputs, v: Node) -> List[Color]:
    """Colours incident to ``v`` on which the two outputs differ (sorted)."""
    o1, o2 = outputs1[v], outputs2[v]
    colors = set(o1.keys()) | set(o2.keys())
    # numeric != is exact across int/Fraction/float operands, so the
    # defensive Fraction() wraps would not change the comparison
    diff = [c for c in colors if o1.get(c, 0) != o2.get(c, 0)]
    return sorted(diff, key=repr)


def next_disagreement(
    g: ECGraph,
    outputs1: NodeOutputs,
    outputs2: NodeOutputs,
    v: Node,
    incoming: Color,
) -> Color:
    """Apply Fact 3 at ``v``: find a disagreeing colour other than ``incoming``.

    Requires ``v`` saturated in both outputs and a disagreement on
    ``incoming``; the saturation equations then guarantee a second
    disagreeing colour, which is returned (smallest by ``repr`` for
    determinism).  Raises :class:`PropagationError` if the preconditions do
    not hold — that always indicates the algorithm under test produced an
    infeasible or non-saturating solution.
    """
    if node_load_of_output(g, outputs1, v) != ONE:
        raise PropagationError(f"node {v!r} is not saturated in the first output")
    if node_load_of_output(g, outputs2, v) != ONE:
        raise PropagationError(f"node {v!r} is not saturated in the second output")
    diff = disagreeing_colors(outputs1, outputs2, v)
    if incoming not in diff:
        raise PropagationError(
            f"no disagreement on colour {incoming!r} at node {v!r}"
        )
    others = [c for c in diff if c != incoming]
    if not others:
        raise PropagationError(
            f"propagation principle violated at {v!r}: saturated in both outputs "
            f"yet the only disagreement is on {incoming!r}"
        )
    return others[0]


def disagreement_walk(
    g: ECGraph,
    outputs1: NodeOutputs,
    outputs2: NodeOutputs,
    start: Node,
    start_color: Color,
) -> Tuple[Node, Color, List[Tuple[Node, Color]]]:
    """Chase disagreements from ``start`` until they resolve at a loop.

    ``g`` must be a tree once loops are ignored (property (P3)); every node
    visited must be saturated in both outputs (guaranteed on loopy graphs by
    Lemma 2).  Starting from the known disagreement on ``start_color`` at
    ``start``, repeatedly apply :func:`next_disagreement`; because the
    non-loop structure is a tree and the walk never backtracks, it is a
    simple path and must terminate at a node whose disagreeing edge is a
    loop.

    Returns ``(g_star, loop_color, trail)`` where ``trail`` lists the
    ``(node, colour)`` steps taken (excluding the initial colour).
    """
    if not g.is_tree_ignoring_loops():
        raise PropagationError("disagreement_walk requires a tree-with-loops")
    v = start
    incoming = start_color
    trail: List[Tuple[Node, Color]] = []
    for _ in range(g.num_nodes() + 1):
        c = next_disagreement(g, outputs1, outputs2, v, incoming)
        edge = g.edge_at(v, c)
        if edge is None:
            raise PropagationError(f"node {v!r} has no edge of colour {c!r}")
        trail.append((v, c))
        if edge.is_loop:
            return v, c, trail
        v = edge.other(v)
        incoming = c
    raise PropagationError(
        "walk failed to terminate; the graph is not a tree-with-loops"
    )  # pragma: no cover - guarded by the tree check above
