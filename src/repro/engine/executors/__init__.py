"""Pluggable sweep execution backends.

The :class:`~repro.engine.executors.base.SweepExecutor` protocol separates
*what a sweep means* (owned by :func:`repro.engine.run_sweep`: sharding,
the result store, progress, recovery policy) from *where shards run*
(owned by a backend).  Shipped backends:

======== ============================================== ==================
name     where shards run                               selects with
======== ============================================== ==================
inline   this process, on an asyncio loop (zero spawn)  default, workers<2
process  a spawn-context ``ProcessPoolExecutor``        default, workers>=2
socket   shard servers over JSON/socket framing         ``backend="socket"``
======== ============================================== ==================

All of them drive the same shard runtime
(:mod:`repro.engine.executors.shard`), and all of them must pass the same
conformance suite: byte-identical rows vs the serial baseline, under every
fault kind their :class:`~repro.engine.executors.base.ExecutorCapabilities`
declare.  ``docs/engine.md`` documents how to write a new backend.
"""

from .base import (
    BACKENDS,
    ExecutionOptions,
    ExecutorCapabilities,
    ExecutorContext,
    SweepExecutor,
    as_executor,
)
from .inline import InlineExecutor
from .process import ProcessExecutor
from .shard import run_shard, shard_cells, shard_payloads
from .sockets import (
    DEFAULT_MEMORY_BUDGET,
    ShardServer,
    SocketExecutor,
    batch_cells_by_volume,
    estimated_ball_volume,
    estimated_cell_volume,
    parse_hosts,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_MEMORY_BUDGET",
    "ExecutionOptions",
    "ExecutorCapabilities",
    "ExecutorContext",
    "InlineExecutor",
    "ProcessExecutor",
    "ShardServer",
    "SocketExecutor",
    "SweepExecutor",
    "as_executor",
    "batch_cells_by_volume",
    "estimated_ball_volume",
    "estimated_cell_volume",
    "parse_hosts",
    "run_shard",
    "shard_cells",
    "shard_payloads",
]
