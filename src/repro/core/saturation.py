"""Saturation on loopy graphs (paper, Lemma 2 and Figure 4) and the
saturation indicator ``A*`` (Section 5.4, step (i)).

Lemma 2: any EC-algorithm that solves maximal FM fully saturates every node
of a loopy EC-graph.  The reason is constructive — if a node ``v`` stayed
unsaturated, unfolding one of its loops produces a lift in which two
*adjacent* copies of ``v`` are both unsaturated, so the output is not
maximal there.  :func:`figure4_certificate` builds that refuting lift
explicitly, and :func:`simple_unfolding` goes further and produces a fully
*simple* lift (no loops, no parallel edges) by crossing the loops one colour
class at a time — so a failure is always witnessed on a legal simple input
graph, exactly as Figure 4 demands.

The module also hosts the generic lift-invariance checker used to validate
that algorithms presented to the adversary really are anonymous.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..graphs.lifts import is_covering_map_ec, random_two_lift, unfold_loop
from ..graphs.loopy import is_loopy
from ..graphs.multigraph import ECGraph
from ..local.algorithm import ECWeightAlgorithm
from ..matching.fm import FractionalMatching, fm_from_node_outputs
from .propagation import node_load_of_output

Node = Hashable
Color = Hashable

__all__ = [
    "unsaturated_nodes",
    "saturation_indicator",
    "figure4_certificate",
    "simple_unfolding",
    "check_lift_invariance",
]

ONE = Fraction(1)


def unsaturated_nodes(g: ECGraph, outputs: Mapping[Node, Mapping[Color, Fraction]]) -> List[Node]:
    """Nodes whose announced incident weights sum to less than 1."""
    return [v for v in g.nodes() if node_load_of_output(g, outputs, v) != ONE]


def saturation_indicator(
    g: ECGraph, outputs: Mapping[Node, Mapping[Color, Fraction]]
) -> Dict[Node, int]:
    """The binary indicator ``A*`` derived from an FM algorithm's output.

    ``A*(G, v) = 1`` iff the algorithm saturates ``v`` (Section 5.4).  Its
    outputs come from a finite set — the property that unlocks the
    Naor-Stockmeyer Ramsey technique for an otherwise unbounded-output
    problem.
    """
    return {
        v: 1 if node_load_of_output(g, outputs, v) == ONE else 0 for v in g.nodes()
    }


def figure4_certificate(
    g: ECGraph, v: Node, algorithm: ECWeightAlgorithm
) -> Optional[Tuple[ECGraph, Node, Node]]:
    """Refute an algorithm that left ``v`` unsaturated on a loopy graph.

    Unfolds one loop at ``v`` (the Figure 4 move) and re-runs the algorithm
    on the 2-lift; if the algorithm is lift-invariant the two adjacent copies
    of ``v`` are both unsaturated, violating maximality on the lift.  Returns
    ``(lift, v1, v2)`` — the two unsaturated adjacent copies — or ``None``
    if ``v`` has no loop to unfold (then ``v``'s factor image does, and the
    certificate can be sought there).
    """
    loops = g.loops_at(v)
    if not loops:
        return None
    lifted, _, new_eid = unfold_loop(g, loops[0].eid)
    outputs = algorithm.run_on(lifted)
    e = lifted.edge(new_eid)
    v1, v2 = e.u, e.v
    if (
        node_load_of_output(lifted, outputs, v1) != ONE
        and node_load_of_output(lifted, outputs, v2) != ONE
    ):
        return (lifted, v1, v2)
    return None


def simple_unfolding(g: ECGraph) -> Tuple[ECGraph, Dict[Node, Node]]:
    """A finite *simple* lift of ``g``: cross the loops colour class by colour class.

    Iteratively takes 2-lifts in which all loops of one colour are crossed
    (becoming honest edges between the two sides) while every other edge is
    straight.  Properness guarantees no parallel edges appear, and after one
    pass per loop colour no loops remain.  The result has
    ``2**(#loop colours) * n`` nodes and is a lift of ``g`` via the composed
    covering map.
    """
    current = g.copy()
    alpha: Dict[Node, Node] = {v: v for v in g.nodes()}
    loop_colors = sorted({e.color for e in g.edges() if e.is_loop}, key=repr)
    for color in loop_colors:
        lifted = ECGraph()
        step_map: Dict[Node, Node] = {}
        for side in (0, 1):
            for v in current.nodes():
                lifted.add_node((side, v))
                step_map[(side, v)] = v
        for e in current.edges():
            if e.is_loop and e.color == color:
                lifted.add_edge((0, e.u), (1, e.u), e.color)
            elif e.is_loop:
                lifted.add_edge((0, e.u), (0, e.u), e.color)
                lifted.add_edge((1, e.u), (1, e.u), e.color)
            else:
                lifted.add_edge((0, e.u), (0, e.v), e.color)
                lifted.add_edge((1, e.u), (1, e.v), e.color)
        alpha = {w: alpha[step_map[w]] for w in lifted.nodes()}
        current = lifted
    return current, alpha


def check_lift_invariance(
    algorithm: ECWeightAlgorithm,
    g: ECGraph,
    rng: random.Random,
    trials: int = 3,
) -> List[str]:
    """Empirically test lift invariance (paper condition (2)).

    Runs the algorithm on ``g`` and on ``trials`` random 2-lifts and compares
    each lifted node's output with its base image's.  Returns a list of
    discrepancy descriptions (empty when the algorithm passed).
    """
    problems: List[str] = []
    base_outputs = algorithm.run_on(g)
    for trial in range(trials):
        lifted, alpha = random_two_lift(g, rng)
        assert is_covering_map_ec(lifted, g, alpha)
        lifted_outputs = algorithm.run_on(lifted)
        for w, out in lifted_outputs.items():
            expected = base_outputs[alpha[w]]
            if {repr(k): v for k, v in out.items()} != {
                repr(k): v for k, v in expected.items()
            }:
                problems.append(
                    f"trial {trial}: node {w!r} outputs {out} but its base "
                    f"image {alpha[w]!r} outputs {expected}"
                )
    return problems
