"""Tests for the unfold-and-mix adversary (repro.core.adversary, Section 4).

These are the load-bearing tests of the whole reproduction: the adversary
must reach witness depth Delta-2 against every correct EC algorithm, with
every paper property (P1)-(P3) machine-verified, and must catch incorrect
algorithms with certificates.
"""

from __future__ import annotations

import pytest

from repro.core.adversary import checked_run, run_adversary
from repro.core.witness import AlgorithmFailure
from repro.graphs.families import random_loopy_tree, single_node_with_loops
from repro.graphs.isomorphism import balls_isomorphic
from repro.graphs.loopy import loopiness, min_direct_loops
from repro.graphs.neighborhoods import ball
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.naive import DegreeSplitFM, SelfishFM, ZeroFM
from repro.matching.proposal import proposal_algorithm


class TestCheckedRun:
    def test_accepts_correct_output(self):
        g = random_loopy_tree(4, 1, seed=0)
        outputs = checked_run(greedy_color_algorithm(), g)
        assert set(outputs.keys()) == set(g.nodes())

    def test_rejects_non_maximal(self):
        g = single_node_with_loops(2)
        with pytest.raises(AlgorithmFailure, match="non-maximal|unsaturated"):
            checked_run(ZeroFM(), g)

    def test_rejects_inconsistent(self):
        from repro.graphs.families import path_graph

        g = path_graph(3)
        with pytest.raises(AlgorithmFailure, match="inconsistent"):
            checked_run(SelfishFM(), g, require_saturation=False)

    def test_saturation_optional(self):
        from repro.graphs.families import path_graph

        # greedy on a path leaves the ends unsaturated but is maximal: fine
        g = path_graph(4)
        checked_run(greedy_color_algorithm(), g, require_saturation=False)


class TestAdversaryDepth:
    @pytest.mark.parametrize("delta", [2, 3, 4, 5, 6, 7])
    def test_greedy_reaches_delta_minus_2(self, delta):
        witness = run_adversary(greedy_color_algorithm(), delta)
        assert witness.achieved_depth == delta - 2
        assert witness.all_valid
        assert len(witness.steps) == delta - 1  # steps 0 .. delta-2

    @pytest.mark.parametrize("delta", [3, 4, 5])
    def test_proposal_reaches_delta_minus_2(self, delta):
        witness = run_adversary(proposal_algorithm(), delta)
        assert witness.achieved_depth == delta - 2
        assert witness.all_valid

    def test_delta_too_small_rejected(self):
        with pytest.raises(ValueError):
            run_adversary(greedy_color_algorithm(), 1)


class TestWitnessProperties:
    """Re-verify the paper's invariants directly on a produced witness."""

    @pytest.fixture(scope="class")
    def witness(self):
        return run_adversary(greedy_color_algorithm(), 6)

    def test_p1_ball_isomorphism(self, witness):
        for step in witness.steps:
            b1 = ball(step.graph_g, step.node_g, step.index)
            b2 = ball(step.graph_h, step.node_h, step.index)
            assert balls_isomorphic(b1, b2)

    def test_p1_outputs_differ(self, witness):
        for step in witness.steps:
            assert step.weight_g != step.weight_h
            # the colour is a loop at both witness nodes
            assert step.graph_g.edge_at(step.node_g, step.color).is_loop
            assert step.graph_h.edge_at(step.node_h, step.color).is_loop

    def test_p2_loop_budget(self, witness):
        for step in witness.steps:
            needed = witness.delta - 1 - step.index
            assert min_direct_loops(step.graph_g) >= needed
            assert min_direct_loops(step.graph_h) >= needed
            assert loopiness(step.graph_h) >= needed

    def test_p3_trees(self, witness):
        for step in witness.steps:
            assert step.graph_g.is_tree_ignoring_loops()
            assert step.graph_h.is_tree_ignoring_loops()

    def test_max_degree_never_exceeds_delta(self, witness):
        for step in witness.steps:
            assert step.graph_g.max_degree() <= witness.delta
            assert step.graph_h.max_degree() <= witness.delta

    def test_graph_sizes_double(self, witness):
        sizes = [s.graph_g.num_nodes() for s in witness.steps]
        assert sizes == [2**i for i in range(len(sizes))]

    def test_conclusion_mentions_depth(self, witness):
        assert f"> {witness.delta - 2} rounds" in witness.conclusion()


class TestAdversaryCatchesFlaws:
    def test_zero_caught(self):
        with pytest.raises(AlgorithmFailure):
            run_adversary(ZeroFM(), 4)

    def test_degree_split_caught(self):
        """A genuine 1-round algorithm, correct on regular graphs, still
        cannot survive: the mixed pair has nodes of degree Delta and
        Delta-1, and degree-splitting leaves the low-degree side short."""
        with pytest.raises(AlgorithmFailure) as info:
            run_adversary(DegreeSplitFM(), 5)
        assert "non-maximal" in str(info.value) or "unsaturated" in str(info.value)

    def test_selfish_caught_as_inconsistent(self):
        with pytest.raises(AlgorithmFailure, match="inconsistent"):
            run_adversary(SelfishFM(), 4)


class TestDeepVerify:
    def test_deep_verify_passes_for_honest_algorithms(self):
        witness = run_adversary(greedy_color_algorithm(), 4, deep_verify=True)
        assert witness.achieved_depth == 2

    def test_deep_verify_catches_lift_cheater(self):
        """An algorithm that peeks at graph size is not lift-invariant and
        deep verification exposes it on the unfolded 2-lift."""
        from fractions import Fraction
        from repro.local.algorithm import ECWeightAlgorithm

        class SizeCheater(ECWeightAlgorithm):
            name = "size-cheater"

            def run_on(self, g):
                n = g.num_nodes()
                out = {}
                for v in g.nodes():
                    colors = sorted(g.incident_colors(v), key=repr)
                    weights = {}
                    remaining = Fraction(1)
                    # saturate, but skew by parity of n so lifts disagree
                    skew = Fraction(1, 2 + (n % 2))
                    for i, c in enumerate(colors):
                        if i == len(colors) - 1:
                            weights[c] = remaining
                        else:
                            weights[c] = remaining * skew
                            remaining -= weights[c]
                    out[v] = weights
                return out

        with pytest.raises(AlgorithmFailure):
            run_adversary(SizeCheater(), 5, deep_verify=True)


class TestDeterminism:
    def test_adversary_is_deterministic(self):
        """Two runs against the same deterministic algorithm produce
        identical witness ladders (weights, colours, graph sizes)."""
        a = run_adversary(greedy_color_algorithm(), 5)
        b = run_adversary(greedy_color_algorithm(), 5)
        assert len(a.steps) == len(b.steps)
        for sa, sb in zip(a.steps, b.steps):
            assert sa.color == sb.color
            assert sa.side == sb.side
            assert (sa.weight_g, sa.weight_h) == (sb.weight_g, sb.weight_h)
            assert sa.graph_g.num_nodes() == sb.graph_g.num_nodes()

    def test_hard_instance_pair_export(self):
        from repro.core.adversary import hard_instance_pair

        G, H, g, h, c = hard_instance_pair(4)
        assert G.max_degree() <= 4 and H.max_degree() <= 4
        assert G.edge_at(g, c).is_loop and H.edge_at(h, c).is_loop
        assert G.is_tree_ignoring_loops() and H.is_tree_ignoring_loops()


class TestMessageAccounting:
    def test_message_totals_tracked(self):
        g = single_node_with_loops(4)
        alg = greedy_color_algorithm()
        alg.run_on(g)
        assert alg.last_message_total is not None
        assert alg.last_message_total >= 4  # one residual per loop colour
