"""Metrics registry: counters, gauges and histograms with labels.

A metric is identified by its name plus a (sorted) label set, e.g.
``registry.counter("adversary.checked_runs", algorithm="greedy", delta=6)``.
Repeated calls with the same name and labels return the same instrument, so
instrumented code can re-fetch instead of threading instrument handles
around.  :meth:`MetricsRegistry.snapshot` renders everything as plain
JSON-able dictionaries for the exporters.

The registry is deterministic given a deterministic workload: it never
reads clocks or entropy; histograms store exact sums of whatever numbers
are observed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "NULL_METRICS"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        self.value += n


class Gauge:
    """A value that can move both ways (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values: count / sum / min / max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0


class MetricsRegistry:
    """Get-or-create store of instruments keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        return self._counters.setdefault((name, _label_key(labels)), Counter())

    def gauge(self, name: str, **labels) -> Gauge:
        return self._gauges.setdefault((name, _label_key(labels)), Gauge())

    def histogram(self, name: str, **labels) -> Histogram:
        return self._histograms.setdefault((name, _label_key(labels)), Histogram())

    def snapshot(self) -> Dict[str, List[dict]]:
        """All instruments as JSON-able rows, sorted by (name, labels)."""

        def rows(store, render):
            return [
                {"name": name, "labels": dict(labels), **render(metric)}
                for (name, labels), metric in sorted(store.items())
            ]

        return {
            "counters": rows(self._counters, lambda c: {"value": c.value}),
            "gauges": rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": rows(
                self._histograms,
                lambda h: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                },
            ),
        }


class _NullInstrument:
    """One object that absorbs every instrument method, costlessly."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetricsRegistry:
    """Registry façade returned by the no-op tracer: records nothing."""

    __slots__ = ()

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, List[dict]]:
        return {"counters": [], "gauges": [], "histograms": []}


NULL_METRICS = _NullMetricsRegistry()
