"""Synchronous LOCAL runtime (paper, Section 1.4).

Executes a :class:`repro.local.algorithm.DistributedAlgorithm` on a network
in lock-step rounds: every node sends a message on each port, the network
delivers them, every node updates its state; nodes announce outputs and the
run stops once all have.  Message size and local computation are unbounded,
exactly as in the LOCAL model.

Three network adapters realise the models:

* :class:`ECNetwork` — ports are edge colours of an :class:`ECGraph`.  A
  message sent on a *loop* port is delivered back to the sender on the same
  port: this is precisely the universal-cover semantics (the neighbour across
  a loop is a symmetric copy of the sender), making every simulator run on a
  multigraph equal to the corresponding run on any simple lift.
* :class:`PONetwork` — ports are ``("out", c)`` / ``("in", c)`` slots of a
  :class:`POGraph`; a message sent out on colour ``c`` over arc ``(u, v)``
  arrives at ``v``'s ``("in", c)`` port, and vice versa.  A directed loop
  wires the node's own out-slot to its in-slot.
* :class:`IDNetwork` — a simple networkx graph whose integer node labels are
  the unique identifiers; ports are neighbour identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Tuple

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sanitize import AccessLog

from ..graphs.digraph import POGraph
from ..graphs.multigraph import ECGraph
from ..obs.tracer import current_tracer
from .algorithm import DistributedAlgorithm
from .context import NodeContext, Port

Node = Hashable

__all__ = ["Network", "ECNetwork", "PONetwork", "IDNetwork", "RunResult", "run", "run_rounds"]


class Network:
    """Abstract network: contexts plus message routing."""

    model: str

    def nodes(self) -> List[Node]:
        """All nodes of the network."""
        raise NotImplementedError

    def context(self, v: Node) -> NodeContext:
        """The local context node ``v`` executes under."""
        raise NotImplementedError

    def route(self, v: Node, port: Port, message: Any) -> Tuple[Node, Port]:
        """Destination ``(node, port)`` of a message sent by ``v`` on ``port``."""
        raise NotImplementedError


class ECNetwork(Network):
    """Network over an :class:`ECGraph`; ports are incident edge colours."""

    model = "EC"

    def __init__(self, g: ECGraph, globals_: Optional[Dict[str, Any]] = None):
        self.graph = g
        # Routing reads go to a frozen kernel snapshot taken here: later
        # mutations of the view cannot skew an in-flight run, and the hot
        # per-message lookups bypass the mutable-view layer entirely.
        self.kernel = g.kernel
        self.globals_ = dict(globals_ or {})
        self._contexts = {
            v: NodeContext(
                node=v,
                model="EC",
                ports=tuple(sorted(self.kernel.incident_colors(v), key=repr)),
                globals=self.globals_,
            )
            for v in self.kernel.nodes()
        }

    def nodes(self) -> List[Node]:
        return list(self._contexts.keys())

    def context(self, v: Node) -> NodeContext:
        return self._contexts[v]

    def route(self, v: Node, port: Port, message: Any) -> Tuple[Node, Port]:
        edge = self.kernel.edge_at(v, port)
        if edge is None:
            raise KeyError(f"node {v!r} has no port {port!r}")
        if edge.is_loop:
            return (v, port)  # the echo: a loop's neighbour is a copy of oneself
        return (edge.other(v), port)


class PONetwork(Network):
    """Network over a :class:`POGraph`; ports are directed colour slots."""

    model = "PO"

    def __init__(self, g: POGraph, globals_: Optional[Dict[str, Any]] = None):
        self.graph = g
        # Frozen routing snapshot; see ECNetwork.__init__.
        self.kernel = g.kernel
        self.globals_ = dict(globals_ or {})
        self._contexts = {}
        for v in self.kernel.nodes():
            ports = tuple(
                [("out", c) for c in sorted(self.kernel.out_colors(v), key=repr)]
                + [("in", c) for c in sorted(self.kernel.in_colors(v), key=repr)]
            )
            self._contexts[v] = NodeContext(node=v, model="PO", ports=ports, globals=self.globals_)

    def nodes(self) -> List[Node]:
        return list(self._contexts.keys())

    def context(self, v: Node) -> NodeContext:
        return self._contexts[v]

    def route(self, v: Node, port: Port, message: Any) -> Tuple[Node, Port]:
        kind, color = port
        if kind == "out":
            arc = self.kernel.out_edge(v, color)
            if arc is None:
                raise KeyError(f"node {v!r} has no out-port {color!r}")
            return (arc.head, ("in", color))
        if kind == "in":
            arc = self.kernel.in_edge(v, color)
            if arc is None:
                raise KeyError(f"node {v!r} has no in-port {color!r}")
            return (arc.tail, ("out", color))
        raise KeyError(f"bad PO port {port!r}")


class IDNetwork(Network):
    """Network over a simple networkx graph; node labels are identifiers."""

    model = "ID"

    def __init__(self, g: "nx.Graph", globals_: Optional[Dict[str, Any]] = None):
        if any(u == v for u, v in g.edges()):
            raise ValueError("ID-graphs are simple: no self-loops allowed")
        self.graph = g
        self.globals_ = dict(globals_ or {})
        self._contexts = {
            v: NodeContext(
                node=v,
                model="ID",
                ports=tuple(sorted(g.neighbors(v))),
                identifier=v,
                globals=self.globals_,
            )
            for v in g.nodes()
        }

    def nodes(self) -> List[Node]:
        return list(self._contexts.keys())

    def context(self, v: Node) -> NodeContext:
        return self._contexts[v]

    def route(self, v: Node, port: Port, message: Any) -> Tuple[Node, Port]:
        if not self.graph.has_edge(v, port):
            raise KeyError(f"node {v!r} has no neighbour {port!r}")
        return (port, v)


@dataclass
class RunResult:
    """Outcome of a simulator run.

    Attributes
    ----------
    outputs:
        Local output of each node (``None`` for nodes that never halted).
    rounds:
        Number of communication rounds executed.
    halted:
        Whether every node announced an output.
    states:
        Final internal state of each node (useful for debugging/tests).
    message_counts:
        Messages delivered per round.
    """

    outputs: Dict[Node, Any]
    rounds: int
    halted: bool
    states: Dict[Node, Any] = field(default_factory=dict)
    message_counts: List[int] = field(default_factory=list)
    #: access log of a sanitized run (``None`` unless ``sanitize=True``)
    access_log: Optional["AccessLog"] = None


def _contexts_for(
    network: Network,
    algorithm: DistributedAlgorithm,
    nodes: List[Node],
    sanitize: bool,
    sanitize_mode: str,
):
    """Context table for a run, optionally wrapped in the locality sanitizer."""
    ctxs = {v: network.context(v) for v in nodes}
    if not sanitize:
        return ctxs, None
    from .sanitize import wrap_contexts

    return wrap_contexts(ctxs, network.model, algorithm, mode=sanitize_mode)


def _state_size_estimate(states: Dict[Node, Any]) -> int:
    """Crude size proxy: total ``repr`` length of all node states.

    Only computed when a real tracer is attached (``tracer.enabled``); the
    repr walk is far too expensive for the untraced hot path.
    """
    return sum(len(repr(s)) for s in states.values())


def run(
    network: Network,
    algorithm: DistributedAlgorithm,
    *,
    max_rounds: int = 10_000,
    sanitize: bool = False,
    sanitize_mode: str = "raise",
    tracer=None,
) -> RunResult:
    """Execute ``algorithm`` on ``network`` until all nodes output or the cap.

    Outputs are polled *before* the first round (a 0-round algorithm halts
    immediately with only its context) and after every round.  The returned
    ``rounds`` is the number of communication rounds actually performed —
    the quantity the paper's lower bound is about.

    With ``sanitize=True`` every context is wrapped in the locality
    sanitizer (:mod:`repro.local.sanitize`): out-of-model reads raise a
    ``LocalityViolation`` (or are recorded when ``sanitize_mode="log"``)
    and the returned result carries the full ``access_log``.

    ``tracer`` (a :class:`repro.obs.Tracer`) records one ``local.run`` span
    with nested per-round ``local.round`` spans (message counts, state-size
    estimates) and ``local.poll`` spans timing the output polls; it defaults
    to the ambient tracer, a no-op unless installed via
    :func:`repro.obs.use_tracer`.

    All options are keyword-only; the deprecated positional spellings from
    the pre-keyword API were removed after two majors of soak — passing
    them now raises :class:`TypeError` like any other excess positional.
    """
    if algorithm.model != network.model:
        raise ValueError(
            f"algorithm model {algorithm.model!r} does not match network model {network.model!r}"
        )
    tracer = tracer if tracer is not None else current_tracer()
    nodes = network.nodes()
    ctxs, access_log = _contexts_for(network, algorithm, nodes, sanitize, sanitize_mode)
    with tracer.span(
        "local.run",
        model=network.model,
        algorithm=type(algorithm).__name__,
        nodes=len(nodes),
    ) as run_span:
        states = {v: algorithm.initial_state(ctxs[v]) for v in nodes}
        message_counts: List[int] = []

        def poll() -> Dict[Node, Any]:
            with tracer.span("local.poll") as poll_span:
                polled = {v: algorithm.output(states[v], ctxs[v]) for v in nodes}
                poll_span.set(pending=sum(1 for o in polled.values() if o is None))
            return polled

        outputs = poll()
        rounds = 0
        while any(o is None for o in outputs.values()) and rounds < max_rounds:
            with tracer.span("local.round", round=rounds) as round_span:
                inboxes: Dict[Node, Dict[Port, Any]] = {v: {} for v in nodes}
                count = 0
                for v in nodes:
                    sent = algorithm.send(states[v], ctxs[v])
                    for port, message in sent.items():
                        target, tport = network.route(v, port, message)
                        inboxes[target][tport] = message
                        count += 1
                message_counts.append(count)
                for v in nodes:
                    states[v] = algorithm.receive(states[v], ctxs[v], inboxes[v])
                rounds += 1
                if tracer.enabled:
                    round_span.set(
                        messages=count, state_size=_state_size_estimate(states)
                    )
            outputs = poll()

        halted = all(o is not None for o in outputs.values())
        run_span.set(rounds=rounds, halted=halted, messages=sum(message_counts))
        tracer.metrics.counter("local.runs", model=network.model).inc()
        tracer.metrics.counter("local.rounds", model=network.model).inc(rounds)
        tracer.metrics.counter("local.messages", model=network.model).inc(
            sum(message_counts)
        )
    return RunResult(
        outputs=outputs,
        rounds=rounds,
        halted=halted,
        states=states,
        message_counts=message_counts,
        access_log=access_log,
    )


def run_rounds(
    network: Network,
    algorithm: DistributedAlgorithm,
    rounds: int,
    *,
    sanitize: bool = False,
    sanitize_mode: str = "raise",
    tracer=None,
) -> RunResult:
    """Execute exactly ``rounds`` communication rounds (or fewer if all halt).

    Unlike :func:`run`, nodes that have not announced an output by the end
    are *snapshotted*: their entry in ``outputs`` is whatever
    ``algorithm.snapshot(state, ctx)`` reports (``None`` if the algorithm
    offers no snapshot).  This realises evaluating a ``t``-time algorithm on
    a radius-``t`` view: whatever the node's state holds after ``t`` rounds
    is, by locality, its final answer on any graph agreeing on that view.

    Per-round message delivery counts are recorded in
    ``RunResult.message_counts`` exactly as in :func:`run`, and ``tracer``
    behaves identically (``local.run_rounds`` / ``local.round`` spans).

    All options after ``rounds`` are keyword-only; the deprecated
    positional spellings were removed after two majors of soak — passing
    them now raises :class:`TypeError` like any other excess positional.
    """
    if algorithm.model != network.model:
        raise ValueError(
            f"algorithm model {algorithm.model!r} does not match network model {network.model!r}"
        )
    tracer = tracer if tracer is not None else current_tracer()
    nodes = network.nodes()
    ctxs, access_log = _contexts_for(network, algorithm, nodes, sanitize, sanitize_mode)
    with tracer.span(
        "local.run_rounds",
        model=network.model,
        algorithm=type(algorithm).__name__,
        nodes=len(nodes),
        budget=rounds,
    ) as run_span:
        states = {v: algorithm.initial_state(ctxs[v]) for v in nodes}
        message_counts: List[int] = []
        executed = 0
        for _ in range(rounds):
            if all(algorithm.output(states[v], ctxs[v]) is not None for v in nodes):
                break
            with tracer.span("local.round", round=executed) as round_span:
                inboxes: Dict[Node, Dict[Port, Any]] = {v: {} for v in nodes}
                count = 0
                for v in nodes:
                    for port, message in algorithm.send(states[v], ctxs[v]).items():
                        target, tport = network.route(v, port, message)
                        inboxes[target][tport] = message
                        count += 1
                message_counts.append(count)
                for v in nodes:
                    states[v] = algorithm.receive(states[v], ctxs[v], inboxes[v])
                executed += 1
                if tracer.enabled:
                    round_span.set(
                        messages=count, state_size=_state_size_estimate(states)
                    )
        outputs: Dict[Node, Any] = {}
        for v in nodes:
            out = algorithm.output(states[v], ctxs[v])
            if out is None:
                out = algorithm.snapshot(states[v], ctxs[v])
            outputs[v] = out
        halted = all(o is not None for o in outputs.values())
        run_span.set(rounds=executed, halted=halted, messages=sum(message_counts))
        tracer.metrics.counter("local.runs", model=network.model).inc()
        tracer.metrics.counter("local.rounds", model=network.model).inc(executed)
        tracer.metrics.counter("local.messages", model=network.model).inc(
            sum(message_counts)
        )
    return RunResult(
        outputs=outputs,
        rounds=executed,
        halted=halted,
        states=states,
        message_counts=message_counts,
        access_log=access_log,
    )
