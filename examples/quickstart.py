"""Quickstart: compute and verify maximal fractional matchings.

Builds a few edge-coloured graphs, runs the two distributed O(Delta)-round
maximal-FM algorithms (greedy-by-colour and the proposal dynamics), verifies
the outputs both centrally and with the 1-round distributed checker, and
compares total weights against the maximum-weight LP optimum — illustrating
the classical fact that a maximal FM is a 1/2-approximation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.graphs.families import caterpillar, cycle_graph, random_bounded_degree_graph
from repro.matching import (
    fm_from_node_outputs,
    greedy_color_algorithm,
    max_weight_fm_lp,
    proposal_algorithm,
    verify_distributed,
)


def main() -> None:
    graphs = {
        "cycle C10": cycle_graph(10),
        "caterpillar(5 spine, 3 legs)": caterpillar(5, 3),
        "random (n=30, max deg 5)": random_bounded_degree_graph(30, 5, seed=42),
    }
    algorithms = [greedy_color_algorithm(), proposal_algorithm()]

    header = f"{'graph':32} {'algorithm':18} {'rounds':>6} {'weight':>8} {'LP opt':>8} {'ratio':>6}"
    print(header)
    print("-" * len(header))
    for gname, g in graphs.items():
        lp_opt, _ = max_weight_fm_lp(g)
        for alg in algorithms:
            outputs = alg.run_on(g)
            fm = fm_from_node_outputs(g, outputs)
            assert fm.is_feasible(), "distributed output must be a feasible FM"
            assert fm.is_maximal(), "distributed output must be maximal"
            ok, _verdicts, check_rounds = verify_distributed(g, outputs)
            assert ok and check_rounds == 1, "the 1-round local checker must accept"
            w = float(fm.total_weight())
            ratio = w / lp_opt if lp_opt else 1.0
            print(
                f"{gname:32} {alg.name:18} {alg.rounds_used(g) or '-':>6} "
                f"{w:8.3f} {lp_opt:8.3f} {ratio:6.3f}"
            )
    print()
    print("All outputs verified: feasible, maximal, accepted by the 1-round")
    print("distributed checker, and within the guaranteed 1/2 of the LP optimum.")


if __name__ == "__main__":
    main()
