"""Algorithm interfaces for the LOCAL simulator.

Two complementary presentations of a distributed algorithm are used in the
paper and mirrored here:

* **State machines** (:class:`DistributedAlgorithm`) — the operational view
  of Section 1.4: per round every node sends a message on each port, receives
  one on each port, and updates its state; eventually it announces an output.
* **Functions of views** (paper, Eq. (1)) — a ``t``-time algorithm is just a
  map ``A(tau_t(G, v))``.  For the lower-bound machinery the only thing that
  matters is an algorithm's input/output behaviour on whole graphs, captured
  by :class:`ECWeightAlgorithm`: a deterministic, lift-invariant assignment
  of a weight to every incident colour of every node.

:class:`SimulatedECWeights` adapts the former to the latter by running the
simulator.  Message-passing algorithms that consult only ports, messages and
declared globals are automatically lift-invariant — a loop's echo semantics
equals running on any simple lift (the neighbour across a loop is a
symmetric copy of oneself); the property-based tests verify this against
random 2-lifts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Any, Dict, Hashable, Optional

from ..graphs.multigraph import ECGraph
from .context import NodeContext, Port

Node = Hashable
Color = Hashable

__all__ = [
    "DistributedAlgorithm",
    "ECWeightAlgorithm",
    "SimulatedECWeights",
    "POWeightAlgorithm",
    "SimulatedPOWeights",
]


class DistributedAlgorithm(ABC):
    """A synchronous message-passing node algorithm.

    Subclasses define the per-node behaviour; the runtime in
    :mod:`repro.local.runtime` executes it on every node of a network in
    lock step.  ``model`` declares which network kinds the algorithm expects
    (``"EC"``, ``"PO"`` or ``"ID"``).
    """

    model: str = "EC"

    @abstractmethod
    def initial_state(self, ctx: NodeContext) -> Any:
        """State of a node before the first round."""

    @abstractmethod
    def send(self, state: Any, ctx: NodeContext) -> Dict[Port, Any]:
        """Messages for this round keyed by port; omitted ports send nothing."""

    @abstractmethod
    def receive(self, state: Any, ctx: NodeContext, inbox: Dict[Port, Any]) -> Any:
        """Consume this round's inbox (port -> message) and return the new state."""

    @abstractmethod
    def output(self, state: Any, ctx: NodeContext) -> Optional[Any]:
        """The node's local output, or ``None`` while still running."""

    def snapshot(self, state: Any, ctx: NodeContext) -> Optional[Any]:
        """Provisional output for a node cut off mid-run (see ``run_rounds``).

        Algorithms whose state carries a meaningful partial answer (e.g. the
        current edge weights of the proposal dynamics) override this; the
        default reports nothing.
        """
        return self.output(state, ctx)


class ECWeightAlgorithm(ABC):
    """A deterministic EC-model algorithm producing per-colour edge weights.

    This is the interface the Section 4 adversary consumes: evaluating the
    algorithm on a whole EC-graph yields, for every node, a mapping from each
    incident edge colour to the weight the node announces for that edge.
    (A node's local output in the maximal-FM problem is exactly "the weight
    ``y(e)`` of each incident edge ``e``" — Section 1.4.)

    Implementations must be *lift-invariant* (paper condition (2)): the
    output at a node depends only on its view, never on node labels.  Every
    algorithm that is honestly local satisfies this by construction; the
    helper :func:`repro.core.saturation.check_lift_invariance` tests it.
    """

    #: the algorithm's declared run-time as a function of the graph; purely
    #: informational (used by benches to report round counts).
    name: str = "ec-algorithm"

    #: content-addressing opt-in: a stable string identifying the algorithm's
    #: input/output *behaviour* (bump it when the behaviour changes).  When
    #: set, verified runs may be memoized process-wide keyed by
    #: ``(fingerprint, graph digest)`` — sound exactly because implementations
    #: are deterministic functions of the labelled graph.  ``None`` (the
    #: default) disables run memoization; leave it unset for algorithms whose
    #: behaviour depends on anything besides the input graph.
    fingerprint: Optional[str] = None

    @abstractmethod
    def run_on(self, g: ECGraph) -> Dict[Node, Dict[Color, Fraction]]:
        """Evaluate on ``g``; returns ``{node: {incident colour: weight}}``."""

    def rounds_used(self, g: ECGraph) -> Optional[int]:
        """Communication rounds the last/typical run takes, if known."""
        return None


class SimulatedECWeights(ECWeightAlgorithm):
    """Adapter: run a :class:`DistributedAlgorithm` in the simulator.

    Parameters
    ----------
    algorithm:
        An EC-model state-machine algorithm whose node outputs are mappings
        ``{colour: weight}``.
    globals_factory:
        Optional callable ``g -> dict`` producing the globally known
        parameters for a run (e.g. the number of edge colours).
    max_rounds_factory:
        Optional callable ``g -> int`` bounding the run length.
    """

    def __init__(self, algorithm: DistributedAlgorithm, globals_factory=None, max_rounds_factory=None, name: Optional[str] = None):
        if algorithm.model != "EC":
            raise ValueError("SimulatedECWeights requires an EC-model algorithm")
        self.algorithm = algorithm
        self.globals_factory = globals_factory or (lambda g: {})
        self.max_rounds_factory = max_rounds_factory or (lambda g: 4 * (len(g.colors()) + g.num_nodes() + 1))
        self.name = name or type(algorithm).__name__
        self._last_rounds: Optional[int] = None
        #: total messages delivered in the most recent run (all rounds)
        self.last_message_total: Optional[int] = None

    def run_on(self, g: ECGraph) -> Dict[Node, Dict[Color, Fraction]]:
        from ..obs.tracer import current_tracer
        from .runtime import ECNetwork, run

        with current_tracer().span(
            "algorithm.run_on", algorithm=self.name, model="EC", nodes=g.num_nodes()
        ) as span:
            network = ECNetwork(g, globals_=self.globals_factory(g))
            result = run(network, self.algorithm, max_rounds=self.max_rounds_factory(g))
            if not result.halted:
                raise RuntimeError(
                    f"{self.name} did not halt within {self.max_rounds_factory(g)} rounds"
                )
            self._last_rounds = result.rounds
            self.last_message_total = sum(result.message_counts)
            span.set(rounds=result.rounds, messages=self.last_message_total)
        return {v: dict(out) for v, out in result.outputs.items()}

    def rounds_used(self, g: ECGraph) -> Optional[int]:
        """Rounds consumed by the most recent :meth:`run_on` call."""
        return self._last_rounds


class POWeightAlgorithm(ABC):
    """A deterministic PO-model algorithm producing per-slot arc weights.

    The PO analogue of :class:`ECWeightAlgorithm`: evaluating on a PO-graph
    yields, for every node, a mapping from each incident slot —
    ``("out", c)`` or ``("in", c)`` — to the weight announced for the arc in
    that slot.  A directed loop occupies both slots and the two announced
    values must agree (it is a single arc).  Implementations must be
    lift-invariant.
    """

    name: str = "po-algorithm"

    @abstractmethod
    def run_on(self, g) -> Dict[Node, Dict[Any, Fraction]]:
        """Evaluate on a :class:`~repro.graphs.digraph.POGraph`."""

    def rounds_used(self, g) -> Optional[int]:
        """Communication rounds of the last/typical run, if known."""
        return None


class SimulatedPOWeights(POWeightAlgorithm):
    """Adapter: run a PO-model :class:`DistributedAlgorithm` in the simulator."""

    def __init__(self, algorithm: DistributedAlgorithm, globals_factory=None, max_rounds_factory=None, name: Optional[str] = None):
        if algorithm.model != "PO":
            raise ValueError("SimulatedPOWeights requires a PO-model algorithm")
        self.algorithm = algorithm
        self.globals_factory = globals_factory or (lambda g: {})
        self.max_rounds_factory = max_rounds_factory or (lambda g: 4 * (len(g.colors()) + g.num_nodes() + 1))
        self.name = name or type(algorithm).__name__
        self._last_rounds: Optional[int] = None

    def run_on(self, g) -> Dict[Node, Dict[Any, Fraction]]:
        from ..obs.tracer import current_tracer
        from .runtime import PONetwork, run

        with current_tracer().span(
            "algorithm.run_on", algorithm=self.name, model="PO", nodes=g.num_nodes()
        ) as span:
            network = PONetwork(g, globals_=self.globals_factory(g))
            result = run(network, self.algorithm, max_rounds=self.max_rounds_factory(g))
            if not result.halted:
                raise RuntimeError(
                    f"{self.name} did not halt within {self.max_rounds_factory(g)} rounds"
                )
            self._last_rounds = result.rounds
            span.set(rounds=result.rounds)
        return {v: dict(out) for v, out in result.outputs.items()}

    def rounds_used(self, g) -> Optional[int]:
        """Rounds consumed by the most recent :meth:`run_on` call."""
        return self._last_rounds
