"""Tests for live sweep progress telemetry (repro.obs.progress + engine wiring)."""

from __future__ import annotations

import io
import json

import pytest

from repro.engine import CellExecutionError, Fault, FaultPlan, GridSpec, run_sweep
from repro.obs import NULL_PROGRESS, ProgressEmitter
from repro.obs.progress import (
    PROGRESS_SCHEMA_VERSION,
    NullProgressEmitter,
    read_progress_events,
)


class FakeClock:
    """Deterministic monotonic clock: every read advances by ``step``."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class FakeTTY(io.StringIO):
    def isatty(self) -> bool:
        return True


class TestProgressEmitter:
    def test_start_and_final_events_bracket_the_run(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, clock=FakeClock())
        emitter.start(total=4)
        emitter.finish(done=4, cache_hits=3, cache_lookups=4)
        events = read_progress_events(path)
        assert [e["event"] for e in events] == ["start", "final"]
        final = events[-1]
        assert final["schema"] == PROGRESS_SCHEMA_VERSION
        assert final["done"] == 4 and final["pending"] == 0
        assert final["cache_hit_rate"] == 0.75

    def test_heartbeats_are_throttled_by_the_injected_clock(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=10.0, clock=FakeClock(step=1.0))
        emitter.start(total=100)
        for done in range(1, 30):
            emitter.update(done)
        emitter.finish(done=100)
        events = read_progress_events(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "start" and kinds[-1] == "final"
        heartbeats = [e for e in events if e["event"] == "heartbeat"]
        # 29 update calls, one clock tick each, 10s throttle: far fewer emits
        assert 1 <= len(heartbeats) < 10

    def test_force_bypasses_the_throttle(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=1e9, clock=FakeClock())
        emitter.start(total=10)
        emitter.update(1)  # throttled away
        emitter.update(2, force=True)
        emitter.finish(done=10)
        kinds = [e["event"] for e in read_progress_events(path)]
        assert kinds == ["start", "heartbeat", "final"]

    def test_close_without_finish_emits_aborted_with_last_counts(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=0.0, clock=FakeClock())
        emitter.start(total=10)
        emitter.update(3, failed=1)
        emitter.close()
        events = read_progress_events(path)
        assert events[-1]["event"] == "aborted"
        assert events[-1]["done"] == 3 and events[-1]["failed"] == 1

    def test_updates_after_finish_are_ignored(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, clock=FakeClock())
        emitter.start(total=2)
        emitter.finish(done=2)
        emitter.update(99, force=True)
        emitter.close()
        events = read_progress_events(path)
        assert [e["event"] for e in events] == ["start", "final"]

    def test_done_is_clamped_to_total(self, tmp_path):
        # parallel heartbeats over-count transiently (store rows are an
        # upper bound); the emitted event must never claim done > total
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=0.0, clock=FakeClock())
        emitter.start(total=4)
        emitter.update(7, force=True)
        emitter.finish(done=4)
        heartbeat = read_progress_events(path)[1]
        assert heartbeat["done"] == 4 and heartbeat["pending"] == 0

    def test_eta_and_rate_come_from_computed_cells_only(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=0.0, clock=FakeClock(step=1.0))
        emitter.start(total=10, resumed=4)
        emitter.update(6, force=True)
        heartbeat = read_progress_events(path)[1]
        # 2 computed cells (6 done - 4 resumed) over >0 elapsed seconds
        assert heartbeat["resumed"] == 4
        assert heartbeat["rows_per_s"] is not None and heartbeat["rows_per_s"] > 0
        assert heartbeat["eta_s"] is not None and heartbeat["eta_s"] > 0

    def test_plain_stream_gets_one_line_per_event(self):
        stream = io.StringIO()
        emitter = ProgressEmitter(stream=stream, clock=FakeClock())
        emitter.start(total=3)
        emitter.finish(done=3)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "sweep 3/3 done" in lines[-1]
        assert "\r" not in stream.getvalue()

    def test_tty_stream_rewrites_a_single_status_line(self):
        stream = FakeTTY()
        emitter = ProgressEmitter(stream=stream, clock=FakeClock())
        emitter.start(total=3)
        emitter.finish(done=3)
        rendered = stream.getvalue()
        assert rendered.count("\r") == 2  # one rewrite per event
        assert rendered.endswith("\n")  # close() leaves the cursor clean

    def test_events_are_flushed_per_line_as_json(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, clock=FakeClock())
        emitter.start(total=5)
        # readable before close: a killed sweep still leaves its event log
        (line,) = path.read_text().splitlines()
        event = json.loads(line)
        assert event["event"] == "start" and event["total"] == 5
        emitter.finish(done=5)

    def test_read_progress_events_skips_a_torn_line(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        path.write_text('{"event": "start", "total": 2}\n{"event": "hear')
        events = read_progress_events(path)
        assert len(events) == 1 and events[0]["event"] == "start"

    def test_null_emitter_is_inert(self):
        assert isinstance(NULL_PROGRESS, NullProgressEmitter)
        NULL_PROGRESS.start(total=5)
        NULL_PROGRESS.update(1, force=True)
        NULL_PROGRESS.finish(done=5)
        NULL_PROGRESS.close()
        assert NULL_PROGRESS.events == 0


def tiny_grid() -> GridSpec:
    return GridSpec(algorithms=("greedy", "proposal"), deltas=(3, 4))


class TestSweepProgress:
    def test_serial_final_event_matches_summary_exactly(self, tmp_path):
        out = tmp_path / "out"
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=0.0)
        result = run_sweep(tiny_grid(), out_dir=out, progress=emitter)
        events = read_progress_events(path)
        assert events[0]["event"] == "start"
        final = events[-1]
        assert final["event"] == "final"
        summary = json.loads((out / "summary.json").read_text())
        assert final["done"] == summary["cells"] == len(result.rows)
        assert final["pending"] == 0 and final["failed"] == 0
        # serial heartbeats fire as each row lands
        assert sum(1 for e in events if e["event"] == "heartbeat") >= len(result.rows)

    def test_rows_are_byte_identical_with_and_without_progress(self, tmp_path):
        plain = run_sweep(tiny_grid())
        emitter = ProgressEmitter(path=tmp_path / "p.jsonl", interval=0.0)
        observed = run_sweep(tiny_grid(), progress=emitter)
        assert (
            json.dumps(plain.rows, sort_keys=True).encode()
            == json.dumps(observed.rows, sort_keys=True).encode()
        )

    def test_parallel_final_event_matches_summary_exactly(self, tmp_path):
        out = tmp_path / "out"
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=0.05)
        result = run_sweep(tiny_grid(), workers=2, out_dir=out, progress=emitter)
        final = read_progress_events(path)[-1]
        summary = json.loads((out / "summary.json").read_text())
        assert final["event"] == "final"
        assert final["done"] == summary["cells"] == len(result.rows)

    def test_resumed_cells_are_reported_on_the_start_event(self, tmp_path):
        out = tmp_path / "out"
        run_sweep(tiny_grid(), out_dir=out)
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=0.0)
        result = run_sweep(tiny_grid(), out_dir=out, resume=True, progress=emitter)
        events = read_progress_events(path)
        assert events[0]["resumed"] == len(result.rows)
        assert events[-1]["done"] == len(result.rows)

    def test_all_cells_failed_sweep_closes_with_exact_final_event(self, tmp_path):
        # a raise-worker fault matching every cell in every round exhausts
        # the restart budget with nothing computed: the lifecycle must end
        # in a `final` event (done == 0, failed == cells), not a bare
        # `aborted` — and exactly one terminal event overall
        plan = FaultPlan(
            faults=(Fault(kind="raise-worker", cell="*", attempt=None, times=10_000),)
        )
        path = tmp_path / "progress.jsonl"
        emitter = ProgressEmitter(path=path, interval=0.0)
        with pytest.raises(CellExecutionError):
            run_sweep(
                tiny_grid(),
                out_dir=tmp_path / "out",
                faults=plan,
                use_cache=False,
                progress=emitter,
            )
        events = read_progress_events(path)
        final = events[-1]
        assert final["event"] == "final"
        assert final["done"] == 0
        assert final["failed"] == final["total"] == 4
        terminal = [e for e in events if e["event"] in ("final", "aborted")]
        assert len(terminal) == 1


class TestProgressMonitorClamp:
    def test_monitor_clamps_forged_duplicate_shard_line(self, tmp_path):
        # count_rows() counts raw non-empty lines, so a duplicated shard
        # line (a recovered worker double-flushing a cell) once inflated
        # heartbeats past the grid's cell total; the monitor now clamps
        from repro.engine import ResultStore
        from repro.engine.pool import _ProgressMonitor

        out = tmp_path / "out"
        result = run_sweep(tiny_grid(), out_dir=out)
        total = len(result.rows)
        shard = next(out.glob("shard-*.jsonl"))
        lines = shard.read_text(encoding="utf-8").splitlines()
        with shard.open("a", encoding="utf-8") as fh:
            fh.write(lines[0] + "\n")  # the forged duplicate
        store = ResultStore(out)
        assert store.count_rows() == total + 1  # the raw count over-reports

        class RecordingEmitter:
            interval = 0.05

            def __init__(self):
                self.seen = []

            def update(self, done, **kwargs):
                self.seen.append(done)

        recorder = RecordingEmitter()
        _ProgressMonitor(recorder, store, total=total).tick()
        assert recorder.seen == [total]


class TestSweepProgressCLI:
    def test_bare_progress_flag_writes_into_out_dir(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "out"
        assert main(["sweep", "--smoke", "--out", str(out), "--progress"]) == 0
        events = read_progress_events(out / "progress.jsonl")
        summary = json.loads((out / "summary.json").read_text())
        assert events[-1]["event"] == "final"
        assert events[-1]["done"] == summary["cells"]
        assert "progress events:" in capsys.readouterr().out

    def test_explicit_progress_path_is_honoured(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "live.jsonl"
        code = main(
            ["sweep", "--algorithms", "greedy", "--deltas", "3", "--progress", str(path)]
        )
        assert code == 0
        events = read_progress_events(path)
        assert [events[0]["event"], events[-1]["event"]] == ["start", "final"]
        assert events[-1]["done"] == events[-1]["total"] == 1
