"""Shared AST helpers for the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

__all__ = [
    "attribute_chain",
    "root_name",
    "ctx_param_names",
    "iter_class_functions",
    "class_level_model",
    "base_names",
]


def attribute_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain rooted at a Name, else ``None``.

    ``random.Random`` -> ``"random.Random"``; ``a.b().c`` -> ``None`` (the
    chain is broken by a call, so it is not a plain module reference).
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The Name at the root of an attribute/subscript chain, else ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def ctx_param_names(func: ast.AST) -> Set[str]:
    """Parameter names of ``func`` that carry a node context.

    A parameter counts if it is literally named ``ctx`` or is annotated
    ``NodeContext`` (possibly qualified, e.g. ``context.NodeContext``).
    """
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is None:
        return names
    all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for arg in all_args:
        if arg.arg == "ctx":
            names.add(arg.arg)
            continue
        annotation = arg.annotation
        dotted = attribute_chain(annotation) if annotation is not None else None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            dotted = annotation.value  # string annotation
        if dotted and dotted.split(".")[-1] == "NodeContext":
            names.add(arg.arg)
    return names


def iter_class_functions(cls: ast.ClassDef) -> Iterator[ast.AST]:
    """All function defs lexically inside ``cls`` (methods and helpers)."""
    for node in ast.walk(cls):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def class_level_model(cls: ast.ClassDef) -> Optional[str]:
    """The value of a class-body ``model = "..."`` assignment, if any."""
    for stmt in cls.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "model":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value
    return None


def base_names(cls: ast.ClassDef) -> Set[str]:
    """Unqualified names of the class's bases."""
    names: Set[str] = set()
    for base in cls.bases:
        dotted = attribute_chain(base)
        if dotted:
            names.add(dotted.split(".")[-1])
    return names
