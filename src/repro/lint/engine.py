"""Rule engine: parse modules, run rules, honour suppressions.

The engine is deliberately small: a *rule* is a function
``check(module) -> Iterator[Finding]`` registered in
:data:`repro.lint.rules.ALL_RULES`; the engine parses each file once into a
:class:`ModuleUnderLint` (path, dotted module name, source lines, AST,
config), feeds it to every selected rule, and drops findings whose physical
line carries a matching ``# repro: noqa[rule-id]`` comment.

Suppression syntax (checked on the line the finding points at):

* ``# repro: noqa[exact-arith]``          — silence one rule;
* ``# repro: noqa[locality, exact-arith]`` — silence several;
* ``# repro: noqa``                        — silence every rule.

A module-level ``# repro: randomized`` marker line declares the whole
module randomized (equivalent to listing it in
:attr:`LintConfig.randomized_modules`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleUnderLint",
    "DEFAULT_CONFIG",
    "lint_source",
    "lint_paths",
    "module_name_for",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([a-zA-Z0-9_\-,\s]+)\])?")
_RANDOMIZED_MARKER_RE = re.compile(r"^\s*#\s*repro:\s*randomized\s*$")
_CLOCK_MARKER_RE = re.compile(r"^\s*#\s*repro:\s*clock\s*$")
_WORKER_MARKER_RE = re.compile(r"^\s*#\s*repro:\s*workers\s*$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: [rule] message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """What the rules treat as in/out of scope.

    Attributes
    ----------
    randomized_modules:
        Dotted module names explicitly declared randomized; the
        ``determinism`` rule skips them entirely.
    clock_modules:
        Modules sanctioned to read wall clocks (``time``).  The
        observability tracer must time spans, but nothing the *model*
        computes may depend on a clock — so the exemption is surgical:
        clock reads are permitted in exactly these modules (or under a
        module-level ``# repro: clock`` marker) and every other
        ``determinism`` check still applies to them.
    worker_modules:
        Modules sanctioned to spawn worker processes/threads
        (``multiprocessing``, ``concurrent.futures``, ``threading``).  The
        experiment engine shards sweeps across a process pool, but model
        code must stay single-threaded and deterministic — so, like the
        clock exemption, this one is surgical: process spawning is
        permitted in exactly these modules (or under a module-level
        ``# repro: workers`` marker) and the randomness/clock checks still
        apply to them.
    exact_scopes:
        Dotted prefixes inside which ``exact-arith`` applies.
    exact_exempt:
        Modules inside an exact scope that are explicitly floating
        (the LP baseline interfaces with scipy and speaks float natively).
    """

    randomized_modules: frozenset = frozenset(
        {
            "repro.local.randomized",
            "repro.matching.random_priority",
            "repro.matching.integral",
        }
    )
    clock_modules: frozenset = frozenset(
        {
            "repro.obs.tracer",
            # pool: retry backoff + watchdog joins; faults: stall injection.
            # Both sleep, neither feeds a clock value into model output.
            "repro.engine.pool",
            "repro.engine.faults",
        }
    )
    worker_modules: frozenset = frozenset({"repro.engine.pool"})
    exact_scopes: Tuple[str, ...] = ("repro.matching", "repro.core")
    exact_exempt: frozenset = frozenset({"repro.matching.lp", "repro.analysis"})


DEFAULT_CONFIG = LintConfig()


@dataclass
class ModuleUnderLint:
    """Everything a rule needs to inspect one module."""

    path: str
    module: str
    source: str
    lines: List[str]
    tree: ast.AST
    config: LintConfig = field(default_factory=lambda: DEFAULT_CONFIG)

    @property
    def declared_randomized(self) -> bool:
        """Whether the module may use randomness (config list or marker)."""
        if self.module in self.config.randomized_modules:
            return True
        return any(_RANDOMIZED_MARKER_RE.match(line) for line in self.lines)

    @property
    def declared_clock(self) -> bool:
        """Whether the module is a sanctioned clock reader (list or marker).

        Unlike ``declared_randomized`` this only relaxes the ``time``
        checks of the ``determinism`` rule; ambient entropy stays flagged.
        """
        if self.module in self.config.clock_modules:
            return True
        return any(_CLOCK_MARKER_RE.match(line) for line in self.lines)

    @property
    def declared_workers(self) -> bool:
        """Whether the module may spawn worker processes (list or marker).

        Only relaxes the worker-pool import checks of the ``determinism``
        rule; ambient entropy and clock reads stay flagged.
        """
        if self.module in self.config.worker_modules:
            return True
        return any(_WORKER_MARKER_RE.match(line) for line in self.lines)

    @property
    def in_exact_scope(self) -> bool:
        """Whether the ``exact-arith`` rule applies to this module."""
        if self.module in self.config.exact_exempt:
            return False
        return any(
            self.module == scope or self.module.startswith(scope + ".")
            for scope in self.config.exact_scopes
        )

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """A finding anchored at ``node``'s source position."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def module_name_for(path: Path) -> str:
    """The dotted module name of ``path``, walking up through packages.

    Climbs parent directories for as long as they contain an
    ``__init__.py``; a file outside any package is just its stem.
    """
    path = Path(path)
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    """Whether the finding's physical line carries a matching noqa."""
    if not (1 <= finding.line <= len(lines)):
        return False
    match = _NOQA_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    listed = match.group(1)
    if listed is None:  # bare ``# repro: noqa`` silences everything
        return True
    rules = {item.strip() for item in listed.split(",")}
    return finding.rule in rules


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source text; returns the unsuppressed findings, sorted.

    ``module`` is the dotted module name used for scope decisions (rules
    like ``exact-arith`` are scoped by package) — pass e.g.
    ``"repro.matching.fixture"`` to lint a snippet *as if* it lived there.
    """
    from .rules import ALL_RULES

    config = config or DEFAULT_CONFIG
    module = module if module is not None else Path(path).stem
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="syntax",
                message=f"could not parse: {exc.msg}",
            )
        ]
    mod = ModuleUnderLint(
        path=path, module=module, source=source, lines=lines, tree=tree, config=config
    )
    wanted = set(select) if select is not None else set(ALL_RULES)
    findings: List[Finding] = []
    for rule_id, check in ALL_RULES.items():
        if rule_id not in wanted:
            continue
        for finding in check(mod):
            if not _suppressed(finding, lines):
                findings.append(finding)
    return sorted(findings)


def _iter_py_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        path = Path(path)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part.startswith(".") or part == "__pycache__" for part in sub.parts):
                    continue
                yield sub


def lint_paths(
    paths: Iterable,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file in _iter_py_files(Path(p) for p in paths):
        source = file.read_text(encoding="utf-8")
        findings.extend(
            lint_source(
                source,
                path=str(file),
                module=module_name_for(file),
                config=config,
                select=select,
            )
        )
    return sorted(findings)
