"""E1 — Theorem 1 / Section 4 (Figures 5-7): the unfold-and-mix adversary.

Paper claim: for every Delta there are witness pairs ``(G_i, H_i)``,
``i = 0 .. Delta-2``, certifying that no EC-algorithm computes maximal FM in
``o(Delta)`` rounds.  Measured: the adversary's achieved witness depth is
exactly ``Delta - 2`` against real algorithms (linear in Delta), with all
machine checks (P1)-(P3) passing, and the construction's cost.
"""

from __future__ import annotations

import pytest

from repro.core.adversary import run_adversary
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.proposal import proposal_algorithm

DELTAS = [3, 4, 5, 6, 7, 8, 10]


@pytest.mark.parametrize("delta", DELTAS)
def test_adversary_depth_vs_delta_greedy(benchmark, record, delta):
    witness = benchmark.pedantic(
        lambda: run_adversary(greedy_color_algorithm(), delta), rounds=1, iterations=1
    )
    assert witness.all_valid
    assert witness.achieved_depth == delta - 2
    top = witness.steps[-1]
    record(
        "E1 lower-bound witness depth (linear in Delta)",
        algorithm="greedy-by-colour",
        delta=delta,
        witness_depth=witness.achieved_depth,
        expected=delta - 2,
        final_graph_nodes=top.graph_g.num_nodes() + top.graph_h.num_nodes(),
        checks="P1+P2+P3 ok",
    )


def test_engine_sweep_e1_grid(benchmark, record, engine_sweep):
    """The whole E1 grid through the experiment engine, one benched sweep.

    Covers the same (algorithm, Delta) cells as the per-cell benches above
    but exercises the production path — sharding, canonical-form caching,
    merged tracing — and records the engine's own series row.
    """
    from repro.engine import e1_grid

    result = benchmark.pedantic(lambda: engine_sweep(e1_grid()), rounds=1, iterations=1)
    assert all(row["status"] == "ok" for row in result.rows)
    assert all(row["witness_depth"] == row["expected_depth"] for row in result.rows)
    record(
        "E1 engine sweep (sharded + cached)",
        cells=len(result.rows),
        workers=result.workers,
        cache_hits=result.cache.hits,
        cache_misses=result.cache.misses,
        hit_rate=f"{result.cache_hit_rate:.0%}",
        all_depths_linear="yes",
    )


@pytest.mark.parametrize("delta", [3, 4, 5, 6])
def test_adversary_depth_vs_delta_proposal(benchmark, record, delta):
    witness = benchmark.pedantic(
        lambda: run_adversary(proposal_algorithm(), delta), rounds=1, iterations=1
    )
    assert witness.all_valid
    assert witness.achieved_depth == delta - 2
    record(
        "E1 lower-bound witness depth (linear in Delta)",
        algorithm="proposal-dynamics",
        delta=delta,
        witness_depth=witness.achieved_depth,
        expected=delta - 2,
        final_graph_nodes=witness.steps[-1].graph_g.num_nodes()
        + witness.steps[-1].graph_h.num_nodes(),
        checks="P1+P2+P3 ok",
    )
