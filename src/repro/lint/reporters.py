"""Render lint findings for terminals, CI and machine consumers."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from .engine import Finding

__all__ = ["render_text", "render_json", "summarize"]


def summarize(findings: Sequence[Finding]) -> Dict[str, object]:
    """A JSON-ready summary: clean flag, totals, per-rule counts, findings."""
    per_rule = Counter(f.rule for f in findings)
    return {
        "clean": not findings,
        "total": len(findings),
        "by_rule": dict(sorted(per_rule.items())),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
    }


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: [rule] message`` line per finding plus a tally."""
    lines: List[str] = [f.render() for f in findings]
    if findings:
        per_rule = Counter(f.rule for f in findings)
        tally = ", ".join(f"{rule}: {n}" for rule, n in sorted(per_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({tally})")
    else:
        lines.append("model contracts: clean (0 findings)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], indent: int = 2) -> str:
    """The :func:`summarize` dict as JSON text."""
    return json.dumps(summarize(findings), indent=indent)
