"""Lifts and covering maps (paper, Section 3.4) and the unfold/mix moves
of the lower-bound construction (Section 4.3, Figure 6).

A graph ``H`` is a *lift* of ``G`` when there is an onto, colour- and
degree-preserving graph homomorphism (covering map) ``alpha: V(H) -> V(G)``.
Anonymous algorithms cannot distinguish a graph from its lifts — condition
(2) of the paper — which is the leverage the whole Section 4 argument uses.

This module provides:

* :func:`is_covering_map_ec` / :func:`is_covering_map_po` — machine checks
  that a candidate map really is a covering map;
* :func:`unfold_loop` — the 2-lift ``GG`` of ``G`` obtained by opening a loop
  ``e`` into an edge joining two copies of ``G - e``;
* :func:`mix` — the graph ``GH`` made of ``G - e``, ``H - f`` and a fresh
  edge joining the two distinguished nodes;
* :func:`random_two_lift` — a random 2-lift, used in property-based tests of
  lift invariance;
* :func:`bipartite_double_cover` — the classical 2-lift along all edges.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Tuple

from .digraph import POGraph
from .kernel import GraphBuilder
from .multigraph import ECGraph

Node = Hashable

__all__ = [
    "is_covering_map_ec",
    "is_covering_map_po",
    "unfold_loop",
    "mix",
    "random_two_lift",
    "bipartite_double_cover",
]


class _LiftMemo:
    """Process-global memo of unfold/mix results, keyed by content digest.

    ``unfold_loop`` and ``mix`` are pure functions of their input graphs'
    labelled structure plus the chosen loop ids, and loop ids are stable
    across rebuilds of the same graph — so ``(digest, eid)`` keys are sound.
    Values hold the *frozen kernel* of the result; every lookup wraps it in
    a fresh copy-on-write :class:`ECGraph` view, so callers may mutate their
    copy without ever reaching the shared snapshot.  This is what makes the
    adversary's ladder construction O(lookup) on repeated inputs (sweep
    repeats, the G/H symmetry) instead of O(re-merge).

    All mutation happens through methods on this instance, mirroring the
    SoA plan cache's containment pattern.
    """

    __slots__ = ("limit", "_entries")

    def __init__(self, limit: int = 4096) -> None:
        self.limit = limit
        self._entries: Dict[tuple, tuple] = {}

    def get(self, key: tuple):
        return self._entries.get(key)

    def put(self, key: tuple, value: tuple) -> None:
        if len(self._entries) >= self.limit:
            self._entries.clear()
        self._entries[key] = value


#: the singletons behind the unfold/mix fast paths
_UNFOLDS = _LiftMemo()
_MIXES = _LiftMemo()


def is_covering_map_ec(h: ECGraph, g: ECGraph, alpha: Dict[Node, Node]) -> bool:
    """Check that ``alpha`` is a covering map from EC-graph ``h`` onto ``g``.

    Requirements (paper, Section 3.4): ``alpha`` is onto; it preserves edge
    colours and node degrees; and locally it is a bijection between the edges
    incident to ``v`` and those incident to ``alpha(v)``.  With proper
    colourings the local bijection is forced colour-by-colour, so it suffices
    to check that colour slots match and endpoints are consistent.
    """
    if set(alpha.keys()) != set(h.nodes()):
        return False
    if set(alpha.values()) != set(g.nodes()):
        return False  # not onto (or maps unknown nodes)
    for v in h.nodes():
        gv = alpha[v]
        if sorted(map(repr, h.incident_colors(v))) != sorted(map(repr, g.incident_colors(gv))):
            return False
        for e in h.incident_edges(v):
            ge = g.edge_at(gv, e.color)
            if ge is None:
                return False
            if alpha[e.other(v)] != ge.other(gv):
                return False
    return True


def is_covering_map_po(h: POGraph, g: POGraph, alpha: Dict[Node, Node]) -> bool:
    """Check that ``alpha`` is a covering map from PO-graph ``h`` onto ``g``.

    Preserves out-colour and in-colour slots separately and maps arc heads and
    tails consistently.
    """
    if set(alpha.keys()) != set(h.nodes()):
        return False
    if set(alpha.values()) != set(g.nodes()):
        return False
    for v in h.nodes():
        gv = alpha[v]
        if sorted(map(repr, h.out_colors(v))) != sorted(map(repr, g.out_colors(gv))):
            return False
        if sorted(map(repr, h.in_colors(v))) != sorted(map(repr, g.in_colors(gv))):
            return False
        for e in h.out_edges(v):
            ge = g.out_edge(gv, e.color)
            if ge is None or alpha[e.head] != ge.head:
                return False
        for e in h.in_edges(v):
            ge = g.in_edge(gv, e.color)
            if ge is None or alpha[e.tail] != ge.tail:
                return False
    return True


def unfold_loop(g: ECGraph, loop_eid: int) -> Tuple[ECGraph, Dict[Node, Node], int]:
    """Unfold loop ``e`` of ``g``: build the 2-lift ``GG`` (Section 4.3).

    ``GG`` consists of two disjoint copies of ``g - e`` — nodes labelled
    ``(0, v)`` and ``(1, v)`` — plus a fresh edge of ``e``'s colour joining
    the two copies of ``e``'s endpoint.

    Returns ``(GG, alpha, new_eid)`` where ``alpha`` is the covering map
    ``GG -> g`` (verified property; see tests) and ``new_eid`` is the id of
    the fresh joining edge (the paper keeps calling it ``e``).
    """
    e = g.edge(loop_eid)
    if not e.is_loop:
        raise ValueError(f"edge {loop_eid} is not a loop")
    key = (g.kernel.digest, loop_eid)
    hit = _UNFOLDS.get(key)
    if hit is not None:
        kernel, alpha, new_eid = hit
        return ECGraph.from_kernel(kernel), dict(alpha), new_eid
    anchor = e.u
    builder = GraphBuilder(directed=False)
    mappings = builder.double(g, tags=(0, 1), skip_eids=(loop_eid,))
    alpha: Dict[Node, Node] = {
        tagged: v for mapping in mappings for v, tagged in mapping.items()
    }
    new_eid = builder.add_edge((0, anchor), (1, anchor), e.color)
    lifted = ECGraph._wrap(builder)
    _UNFOLDS.put(key, (lifted.kernel, dict(alpha), new_eid))
    return lifted, alpha, new_eid


def mix(
    g: ECGraph,
    g_loop_eid: int,
    h: ECGraph,
    h_loop_eid: int,
) -> Tuple[ECGraph, int]:
    """Mix ``g`` and ``h``: build ``GH`` (Section 4.3, Figure 6).

    ``GH`` contains a copy of ``g - e`` (nodes ``(0, v)``), a copy of
    ``h - f`` (nodes ``(1, v)``), and a fresh edge of the common colour
    joining the two anchor nodes.  Both loops must carry the same colour.

    Returns ``(GH, new_eid)``.
    """
    e = g.edge(g_loop_eid)
    f = h.edge(h_loop_eid)
    if not (e.is_loop and f.is_loop):
        raise ValueError("both edges must be loops")
    if e.color != f.color:
        raise ValueError(f"loop colours differ: {e.color!r} vs {f.color!r}")
    key = (g.kernel.digest, g_loop_eid, h.kernel.digest, h_loop_eid)
    hit = _MIXES.get(key)
    if hit is not None:
        kernel, new_eid = hit
        return ECGraph.from_kernel(kernel), new_eid
    builder = GraphBuilder(directed=False)
    builder.merge(g, tag=0, skip_eids=(g_loop_eid,))
    builder.merge(h, tag=1, skip_eids=(h_loop_eid,))
    new_eid = builder.add_edge((0, e.u), (1, f.u), e.color)
    mixed = ECGraph._wrap(builder)
    _MIXES.put(key, (mixed.kernel, new_eid))
    return mixed, new_eid


def random_two_lift(g: ECGraph, rng: random.Random) -> Tuple[ECGraph, Dict[Node, Node]]:
    """A uniformly random 2-lift of ``g``.

    Every edge independently is either *straight* (two parallel copies) or
    *crossed* (the copies swap sides); a crossed loop unfolds into an edge
    between the two copies of its endpoint, a straight loop stays a loop on
    each side.  Returns the lift and its covering map.
    """
    lifted, alpha = _doubled_node_scaffold(g)
    for e in g.edges():
        crossed = rng.random() < 0.5
        if e.is_loop:
            if crossed:
                lifted.add_edge((0, e.u), (1, e.u), e.color)
            else:
                lifted.add_edge((0, e.u), (0, e.u), e.color)
                lifted.add_edge((1, e.u), (1, e.u), e.color)
        else:
            if crossed:
                lifted.add_edge((0, e.u), (1, e.v), e.color)
                lifted.add_edge((1, e.u), (0, e.v), e.color)
            else:
                lifted.add_edge((0, e.u), (0, e.v), e.color)
                lifted.add_edge((1, e.u), (1, e.v), e.color)
    return lifted, alpha


def bipartite_double_cover(g: ECGraph) -> Tuple[ECGraph, Dict[Node, Node]]:
    """The bipartite double cover: the 2-lift with *every* edge crossed."""
    lifted, alpha = _doubled_node_scaffold(g)
    for e in g.edges():
        if e.is_loop:
            lifted.add_edge((0, e.u), (1, e.u), e.color)
        else:
            lifted.add_edge((0, e.u), (1, e.v), e.color)
            lifted.add_edge((1, e.u), (0, e.v), e.color)
    return lifted, alpha


def _doubled_node_scaffold(g: ECGraph) -> Tuple[ECGraph, Dict[Node, Node]]:
    """Two tagged copies of ``g``'s node set with no edges, plus the covering
    map — the shared scaffold every explicit 2-lift starts from."""
    builder = GraphBuilder(directed=False)
    skip = [e.eid for e in g.edges()]
    mappings = builder.double(g, tags=(0, 1), skip_eids=skip)
    alpha = {tagged: v for mapping in mappings for v, tagged in mapping.items()}
    return ECGraph._wrap(builder), alpha
