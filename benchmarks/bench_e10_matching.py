"""E10 — Section 1.1: the maximal (integral) matching landscape.

Paper context: deterministic maximal matching runs in ``O(Delta + log* n)``
(Panconesi-Rizzi) and the paper's open question asks whether the ``Delta``
term is necessary; randomised algorithms achieve ``O(log n)``.  Measured:
round counts of both against Delta and n, plus Luby MIS as the randomised
symmetry-breaking core.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.coloring.mis import luby_mis, validate_mis
from repro.matching.integral import (
    panconesi_rizzi_matching,
    randomized_matching,
    validate_maximal_matching,
)


@pytest.mark.parametrize("delta", [2, 4, 6, 8, 12])
def test_pr_rounds_vs_delta(benchmark, record, delta):
    n = 40 if (40 * delta) % 2 == 0 else 41
    g = nx.random_regular_graph(delta, n, seed=1)
    matching, rounds = benchmark.pedantic(
        lambda: panconesi_rizzi_matching(g), rounds=1, iterations=1
    )
    assert validate_maximal_matching(g, matching)
    record(
        "E10 Panconesi-Rizzi rounds vs Delta (O(Delta + log* n))",
        delta=delta,
        n=n,
        pr_rounds=rounds,
    )


@pytest.mark.parametrize("n", [32, 128, 512])
def test_pr_and_randomized_vs_n(benchmark, record, n):
    delta = 4
    g = nx.random_regular_graph(delta, n, seed=2)
    matching, pr_rounds = benchmark.pedantic(
        lambda: panconesi_rizzi_matching(g), rounds=1, iterations=1
    )
    assert validate_maximal_matching(g, matching)
    rng = random.Random(3)
    m2, rnd_rounds = randomized_matching(g, rng)
    assert validate_maximal_matching(g, m2)
    record(
        "E10 deterministic vs randomised matching vs n",
        n=n,
        delta=delta,
        pr_rounds=pr_rounds,
        randomized_rounds=rnd_rounds,
    )


@pytest.mark.parametrize("n", [64, 256])
def test_luby_mis(benchmark, record, n):
    g = nx.random_regular_graph(4, n, seed=4)
    rng = random.Random(5)
    mis, rounds = benchmark.pedantic(lambda: luby_mis(g, rng), rounds=1, iterations=1)
    assert validate_mis(g, mis)
    record(
        "E10 Luby MIS (randomised symmetry breaking, O(log n))",
        n=n,
        mis_size=len(mis),
        rounds=rounds,
    )
