"""E3 — Section 1.2 (Kuhn et al. context): approximate vs maximal FM.

Paper claim: near-maximum FMs are computable in ``O(eps^-1 log Delta)``
rounds, exponentially faster than the ``Theta(Delta)`` maximal-FM cost that
Theorem 1 establishes.  Measured: the doubling dynamics' rounds grow
logarithmically in Delta while greedy's grow linearly — the separation the
paper closes from the other side — plus achieved approximation ratios
against the LP optimum.
"""

from __future__ import annotations

import pytest

from repro.graphs.families import random_regular_graph
from repro.matching.fm import fm_from_node_outputs
from repro.matching.greedy_color import greedy_color_algorithm
from repro.matching.kuhn_approx import doubling_algorithm
from repro.matching.lp import max_weight_fm_lp


def even_n(n: int, d: int) -> int:
    return n if (n * d) % 2 == 0 else n + 1


@pytest.mark.parametrize("delta", [2, 4, 8, 16, 24])
def test_approx_rounds_and_ratio(benchmark, record, delta):
    """Irregular bounded-degree inputs (low-degree nodes must double up
    ~log2(Delta) times before freezing; on regular graphs everyone starts
    frozen and the shape degenerates)."""
    from repro.graphs.families import random_bounded_degree_graph

    g = random_bounded_degree_graph(60, delta, seed=3)
    doubling = doubling_algorithm()
    outputs = benchmark.pedantic(lambda: doubling.run_on(g), rounds=1, iterations=1)
    fm = fm_from_node_outputs(g, outputs)
    assert fm.is_feasible()
    greedy = greedy_color_algorithm()
    fm_max = fm_from_node_outputs(g, greedy.run_on(g))
    opt, _ = max_weight_fm_lp(g)
    record(
        "E3 approximate (O(log Delta)) vs maximal (Theta(Delta)) FM",
        delta=delta,
        doubling_rounds=doubling.rounds_used(g),
        greedy_rounds=greedy.rounds_used(g),
        doubling_ratio=round(float(fm.total_weight()) / opt, 3),
        maximal_ratio=round(float(fm_max.total_weight()) / opt, 3),
    )
