"""Tests for rooted/colour-preserving isomorphism (repro.graphs.isomorphism)."""

from __future__ import annotations

import pytest

from repro.graphs.families import path_graph, single_node_with_loops, star_graph
from repro.graphs.isomorphism import (
    balls_isomorphic,
    canonical_rooted_form,
    ec_isomorphic,
    rooted_isomorphic,
)
from repro.graphs.multigraph import ECGraph
from repro.graphs.neighborhoods import ball


def loopy_tree_a() -> ECGraph:
    g = ECGraph()
    g.add_edge("r", "x", 1)
    g.add_edge("r", "r", 2)
    g.add_edge("x", "x", 2)
    return g


class TestCanonicalForm:
    def test_equal_for_relabelled_graphs(self):
        g = loopy_tree_a()
        h = g.relabel({"r": "R", "x": "X"})
        assert canonical_rooted_form(g, "r") == canonical_rooted_form(h, "R")

    def test_distinguishes_roots(self):
        g = path_graph(3)  # colours 1, 2 alternate
        assert canonical_rooted_form(g, 0) != canonical_rooted_form(g, 2)

    def test_distinguishes_colors(self):
        g = ECGraph()
        g.add_edge("a", "b", 1)
        h = ECGraph()
        h.add_edge("a", "b", 2)
        assert canonical_rooted_form(g, "a") != canonical_rooted_form(h, "a")

    def test_loop_vs_pendant_edge_distinguished(self):
        g = ECGraph()
        g.add_edge("a", "a", 1)
        h = ECGraph()
        h.add_edge("a", "b", 1)
        assert canonical_rooted_form(g, "a") != canonical_rooted_form(h, "a")


class TestRootedIsomorphic:
    def test_identical_graphs(self):
        g = loopy_tree_a()
        assert rooted_isomorphic(g, "r", g.copy(), "r")

    def test_symmetric_path_ends(self):
        g = path_graph(3)  # 0 -1- 1 -2- 2; ends both see (their colour, ...)
        # ends have different incident colours (1 vs 2), so NOT isomorphic
        assert not rooted_isomorphic(g, 0, g, 2)

    def test_star_leaves_same_color_iso(self):
        g = star_graph(3)
        h = star_graph(3)
        assert rooted_isomorphic(g, 1, h, 1)
        assert not rooted_isomorphic(g, 1, h, 2)  # different spoke colours

    def test_vf2_fallback_on_cyclic_graphs(self):
        from repro.graphs.families import cycle_graph

        g = cycle_graph(4)
        h = cycle_graph(4)
        assert rooted_isomorphic(g, 0, h, 0)

    def test_vf2_fallback_detects_difference(self):
        from repro.graphs.families import cycle_graph

        g = cycle_graph(4)
        h = cycle_graph(6)
        assert not rooted_isomorphic(g, 0, h, 0)


class TestBallsIsomorphic:
    def test_base_case_of_adversary(self):
        """tau_0 of G0 and H0 are isomorphic (Figure 5)."""
        g0 = single_node_with_loops(4)
        h0 = single_node_with_loops(3)
        assert balls_isomorphic(ball(g0, 0, 0), ball(h0, 0, 0))
        assert not balls_isomorphic(ball(g0, 0, 1), ball(h0, 0, 1))

    def test_radius_mismatch(self):
        g = path_graph(4)
        assert not balls_isomorphic(ball(g, 0, 1), ball(g, 0, 2))

    def test_deep_path_interiors(self):
        g = path_graph(7)
        # interior nodes 2 and 4 have isomorphic radius-1 views iff the
        # colour pattern around them matches (alternating 1,2: both see {1,2})
        assert balls_isomorphic(ball(g, 2, 1), ball(g, 4, 1))


class TestUnrooted:
    def test_ec_isomorphic_relabels(self):
        g = loopy_tree_a()
        h = g.relabel({"r": 0, "x": 1})
        assert ec_isomorphic(g, h)

    def test_ec_isomorphic_rejects(self):
        assert not ec_isomorphic(single_node_with_loops(2), single_node_with_loops(3))
