"""Rule engine: parse modules, run rules, honour suppressions.

The engine runs two kinds of rules over a set of parsed modules:

* *module rules* — ``check(module) -> Iterator[Finding]`` registered in
  :data:`repro.lint.rules.MODULE_RULES`; each sees one
  :class:`ModuleUnderLint` (path, dotted module name, source lines, AST,
  config) at a time — the v1 per-line contract checks;
* *project rules* — ``check(project) -> Iterator[Finding]`` registered in
  :data:`repro.lint.rules.PROJECT_RULES`; each sees the whole
  :class:`ProjectUnderLint`, which lazily builds the project call graph
  (:mod:`repro.lint.callgraph`) and the interprocedural effect analysis
  (:mod:`repro.lint.effects`) on demand — the v2 whole-program checks.

Suppression syntax (a real comment token, anywhere on any physical line of
the statement the finding anchors inside):

* ``# repro: noqa[exact-arith]``          — silence one rule;
* ``# repro: noqa[locality, exact-arith]`` — silence several;
* ``# repro: noqa``                        — silence every rule.

Comments are found with :mod:`tokenize`, so a docstring that merely *talks
about* ``# repro: noqa`` neither suppresses nor counts as a suppression.
Findings of the ``suppression-hygiene`` rule are exempt from noqa
suppression (a stale noqa must not be able to silence its own staleness
report); capture them in the lint baseline instead.

Module-level marker comments declare a whole module's sanctioned effects,
equivalent to listing it in the matching :class:`LintConfig` set:

* ``# repro: randomized`` — may use ambient randomness;
* ``# repro: clock``      — may read wall clocks;
* ``# repro: workers``    — may spawn worker processes/threads;
* ``# repro: state``      — may hold mutable process-global state.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleUnderLint",
    "NoqaComment",
    "ProjectUnderLint",
    "DEFAULT_CONFIG",
    "MARKER_KINDS",
    "lint_source",
    "lint_paths",
    "module_name_for",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([a-zA-Z0-9_\-,\s]+)\])?")

#: marker kind -> regex matching a standalone marker comment's text.
MARKER_KINDS = ("randomized", "clock", "workers", "state")
_MARKER_RES = {
    kind: re.compile(rf"^#\s*repro:\s*{kind}\s*$") for kind in MARKER_KINDS
}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: [rule] message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """What the rules treat as in/out of scope.

    Attributes
    ----------
    randomized_modules:
        Dotted module names explicitly declared randomized; the
        ``determinism`` rule skips them entirely, and the effect analysis
        treats them as a containment boundary for the ``entropy`` effect.
    clock_modules:
        Modules sanctioned to read wall clocks (``time``).  The
        observability tracer must time spans, but nothing the *model*
        computes may depend on a clock — so the exemption is surgical:
        clock reads are permitted in exactly these modules (or under a
        module-level ``# repro: clock`` marker) and every other
        ``determinism`` check still applies to them.  The effect analysis
        masks the ``clock`` effect at these modules' boundaries.
    worker_modules:
        Modules sanctioned to spawn worker processes/threads
        (``multiprocessing``, ``concurrent.futures``, ``threading``).  The
        experiment engine shards sweeps across a process pool, but model
        code must stay single-threaded and deterministic — so, like the
        clock exemption, this one is surgical: process spawning is
        permitted in exactly these modules (or under a module-level
        ``# repro: workers`` marker) and the randomness/clock checks still
        apply to them.  Boundary for the ``worker-spawn`` effect.
    exact_scopes:
        Dotted prefixes inside which ``exact-arith`` applies.
    exact_exempt:
        Modules inside an exact scope that are explicitly floating
        (the LP baseline interfaces with scipy and speaks float natively).
    model_packages:
        Dotted prefixes of *model code* — everything whose output the
        paper's byte-identical determinism invariant covers.  The
        ``effect-escape`` rule flags any function here whose transitive
        effect set reaches an unsanctioned ambient effect.
    state_modules:
        Modules sanctioned to hold mutable process-global state (ambient
        tracer/fault/cache installers).  Boundary for the
        ``global-mutation`` effect; declare new ones with a module-level
        ``# repro: state`` marker.
    kernel_modules:
        Modules sanctioned to touch :class:`~repro.graphs.kernel.GraphKernel`
        internals (the kernel/builder implementation itself).  Boundary for
        the ``kernel-mutation`` effect; the ``kernel-escape`` rule flags
        every reach-in anywhere else.
    """

    randomized_modules: frozenset = frozenset(
        {
            "repro.local.randomized",
            "repro.matching.random_priority",
            "repro.matching.integral",
        }
    )
    clock_modules: frozenset = frozenset(
        {
            "repro.obs.tracer",
            # shard runtime: retry backoff + watchdog joins; faults: stall
            # injection.  Both sleep, neither feeds a clock value into
            # model output.
            "repro.engine.executors.shard",
            "repro.engine.faults",
            # progress: heartbeat throttling/ETAs; bench runner: the
            # warmup/repeat timing harness.  Both inject the clock
            # (defaulting to perf_counter) and only ever report durations.
            "repro.obs.progress",
            "repro.obs.bench.runner",
            # service jobs: the token-bucket rate limiter's injected clock
            # (defaulting to monotonic) feeds only admission control
            "repro.service.jobs",
        }
    )
    worker_modules: frozenset = frozenset(
        {
            # the driver's progress-monitor thread
            "repro.engine.pool",
            # the shard runtime's watchdog thread + ambient lock
            "repro.engine.executors.shard",
            # the spawn-context pool backend
            "repro.engine.executors.process",
            # loopback server threads + the per-host client fan-out
            "repro.engine.executors.sockets",
            # the sweep service's queue-drain worker threads
            "repro.service.jobs",
            # the threading HTTP front-end over the sweep service
            "repro.service.server",
        }
    )
    exact_scopes: Tuple[str, ...] = ("repro.matching", "repro.core")
    exact_exempt: frozenset = frozenset({"repro.matching.lp", "repro.analysis"})
    model_packages: Tuple[str, ...] = (
        "repro.core",
        "repro.local",
        "repro.coloring",
        "repro.matching",
        "repro.graphs",
    )
    state_modules: frozenset = frozenset(
        {
            # the ambient canonical-form cache, tracer and fault installers:
            # process-global by design, swapped only through their install
            # functions and restored by the paired context managers
            "repro.graphs.isomorphism",
            "repro.obs.tracer",
            "repro.engine.faults",
        }
    )
    kernel_modules: frozenset = frozenset(
        {
            # the kernel/builder implementation itself
            "repro.graphs.kernel",
            # the SoA snapshot layer: memoizes columnar snapshots on the
            # frozen kernel's dedicated ``_soa`` slot (digest-neutral)
            "repro.graphs.soa",
            # the interned-label table backing the kernel's digest tokens
            "repro.graphs.labels",
        }
    )


DEFAULT_CONFIG = LintConfig()


@dataclass(frozen=True)
class NoqaComment:
    """One ``# repro: noqa[...]`` comment: its line and the rules it names.

    ``rules`` is ``None`` for a bare ``# repro: noqa`` (silences everything).
    """

    line: int
    rules: Optional[FrozenSet[str]]


@dataclass
class ModuleUnderLint:
    """Everything a rule needs to inspect one module."""

    path: str
    module: str
    source: str
    lines: List[str]
    tree: ast.AST
    config: LintConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    _comments: Optional[List[Tuple[int, int, str]]] = field(
        default=None, repr=False, compare=False
    )
    _spans: Optional[List[Tuple[int, int]]] = field(
        default=None, repr=False, compare=False
    )
    _noqas: Optional[List[NoqaComment]] = field(
        default=None, repr=False, compare=False
    )
    _markers: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False
    )

    # -- comments, markers, suppressions ---------------------------------

    def comments(self) -> List[Tuple[int, int, str]]:
        """All real comment tokens as ``(line, col, text)``, cached.

        Uses :mod:`tokenize` so string literals that merely contain a ``#``
        are not mistaken for comments; on a tokenization error (the AST
        parsed, so this is rare) falls back to a line-based scan.
        """
        if self._comments is None:
            found: List[Tuple[int, int, str]] = []
            try:
                for tok in tokenize.generate_tokens(io.StringIO(self.source).readline):
                    if tok.type == tokenize.COMMENT:
                        found.append((tok.start[0], tok.start[1], tok.string))
            except (tokenize.TokenError, IndentationError, SyntaxError):
                for number, line in enumerate(self.lines, start=1):
                    marker = line.find("#")
                    if marker >= 0:
                        found.append((number, marker, line[marker:]))
            self._comments = found
        return self._comments

    def markers(self) -> Dict[str, int]:
        """Marker kind -> line of the first standalone marker comment."""
        if self._markers is None:
            found: Dict[str, int] = {}
            for line, col, text in self.comments():
                prefix = self.lines[line - 1][:col] if line <= len(self.lines) else ""
                if prefix.strip():
                    continue  # markers must be standalone comment lines
                for kind, regex in _MARKER_RES.items():
                    if kind not in found and regex.match(text):
                        found[kind] = line
            self._markers = found
        return self._markers

    def has_marker(self, kind: str) -> bool:
        """Whether the module carries a standalone ``# repro: <kind>`` line."""
        return kind in self.markers()

    def noqa_comments(self) -> List[NoqaComment]:
        """Every ``# repro: noqa[...]`` comment in the module, cached."""
        if self._noqas is None:
            found: List[NoqaComment] = []
            for line, _col, text in self.comments():
                # anchored at the comment's start: prose that merely
                # mentions the noqa syntax mid-comment is not a suppression
                match = _NOQA_RE.match(text)
                if match is None:
                    continue
                listed = match.group(1)
                rules = (
                    None
                    if listed is None
                    else frozenset(item.strip() for item in listed.split(",") if item.strip())
                )
                found.append(NoqaComment(line=line, rules=rules))
            self._noqas = found
        return self._noqas

    def statement_spans(self) -> List[Tuple[int, int]]:
        """``(start, end)`` line spans of every statement, innermost-first.

        Compound statements (``def``, ``if``, ``for``, ...) contribute only
        their *header* lines — a noqa inside a function body must not
        silence a finding anchored on the ``def`` line.
        """
        if self._spans is None:
            spans: List[Tuple[int, int]] = []
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.stmt):
                    continue
                start = node.lineno
                end = getattr(node, "end_lineno", None) or start
                body = getattr(node, "body", None)
                if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                    end = min(end, body[0].lineno - 1)
                spans.append((start, max(end, start)))
            spans.sort(key=lambda span: (span[1] - span[0], span[0]))
            self._spans = spans
        return self._spans

    def suppression_lines(self, line: int) -> range:
        """The physical lines whose noqa comments govern a finding at ``line``.

        The innermost statement span containing the line — so a suppression
        on any physical line of a wrapped, multi-line statement applies to
        findings anchored anywhere inside it.
        """
        for start, end in self.statement_spans():
            if start <= line <= end:
                return range(start, end + 1)
        return range(line, line + 1)

    def line_suppressed(self, line: int, rule: str) -> bool:
        """Whether a finding of ``rule`` anchored at ``line`` is noqa'd."""
        covered = self.suppression_lines(line)
        for noqa in self.noqa_comments():
            if noqa.line in covered and (noqa.rules is None or rule in noqa.rules):
                return True
        return False

    def suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a noqa on its statement."""
        return self.line_suppressed(finding.line, finding.rule)

    # -- declared exemptions ---------------------------------------------

    @property
    def declared_randomized(self) -> bool:
        """Whether the module may use randomness (config list or marker)."""
        return self.module in self.config.randomized_modules or self.has_marker("randomized")

    @property
    def declared_clock(self) -> bool:
        """Whether the module is a sanctioned clock reader (list or marker).

        Unlike ``declared_randomized`` this only relaxes the ``time``
        checks of the ``determinism`` rule; ambient entropy stays flagged.
        """
        return self.module in self.config.clock_modules or self.has_marker("clock")

    @property
    def declared_workers(self) -> bool:
        """Whether the module may spawn worker processes (list or marker).

        Only relaxes the worker-pool import checks of the ``determinism``
        rule; ambient entropy and clock reads stay flagged.
        """
        return self.module in self.config.worker_modules or self.has_marker("workers")

    @property
    def declared_state(self) -> bool:
        """Whether the module may hold mutable process-global state."""
        return self.module in self.config.state_modules or self.has_marker("state")

    @property
    def in_exact_scope(self) -> bool:
        """Whether the ``exact-arith`` rule applies to this module."""
        if self.module in self.config.exact_exempt:
            return False
        return any(
            self.module == scope or self.module.startswith(scope + ".")
            for scope in self.config.exact_scopes
        )

    @property
    def in_model_packages(self) -> bool:
        """Whether the module is model code (``LintConfig.model_packages``)."""
        return any(
            self.module == scope or self.module.startswith(scope + ".")
            for scope in self.config.model_packages
        )

    @property
    def is_package_init(self) -> bool:
        """Whether this module is a package ``__init__.py``."""
        return Path(self.path).name == "__init__.py"

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """A finding anchored at ``node``'s source position."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


@dataclass
class ProjectUnderLint:
    """Every module of one lint run plus the lazily-built whole-program
    analyses the project rules share.

    ``raw_findings`` accumulates every *pre-suppression* finding produced
    so far (module rules first, then each project rule in registry order);
    the ``suppression-hygiene`` rule — registered last — audits it to tell
    used suppressions from stale ones.
    """

    modules: List[ModuleUnderLint]
    config: LintConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    selected: FrozenSet[str] = frozenset()
    raw_findings: List[Finding] = field(default_factory=list)
    _callgraph: object = field(default=None, repr=False, compare=False)
    _effects: object = field(default=None, repr=False, compare=False)

    def module_named(self, name: str) -> Optional[ModuleUnderLint]:
        """The module with dotted name ``name``, if this run linted it."""
        for mod in self.modules:
            if mod.module == name:
                return mod
        return None

    @property
    def callgraph(self):
        """The project-wide call graph (built on first use)."""
        if self._callgraph is None:
            from .callgraph import CallGraph

            self._callgraph = CallGraph(self.modules)
        return self._callgraph

    @property
    def effects(self):
        """The interprocedural effect analysis (built on first use)."""
        if self._effects is None:
            from .effects import EffectAnalysis

            self._effects = EffectAnalysis(self.callgraph, self.config)
        return self._effects


def module_name_for(path: Path) -> str:
    """The dotted module name of ``path``, walking up through packages.

    Climbs parent directories for as long as they contain an
    ``__init__.py``; a file outside any package is just its stem.
    """
    path = Path(path)
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _selected_rules(select: Optional[Iterable[str]]) -> FrozenSet[str]:
    """Validate a rule selection; unknown rule ids raise ``ValueError``."""
    from .rules import ALL_RULES

    if select is None:
        return frozenset(ALL_RULES)
    wanted = frozenset(select)
    unknown = sorted(wanted - set(ALL_RULES))
    if unknown:
        raise ValueError(
            f"unknown lint rule id(s): {', '.join(unknown)}; "
            f"valid rules: {', '.join(sorted(ALL_RULES))}"
        )
    return wanted


def _lint_modules(
    modules: Sequence[ModuleUnderLint],
    config: LintConfig,
    wanted: FrozenSet[str],
) -> List[Finding]:
    """Run module rules, then project rules, then apply suppressions."""
    from .rules import MODULE_RULES, PROJECT_RULES

    raw: List[Finding] = []
    for mod in modules:
        for rule_id, check in MODULE_RULES.items():
            if rule_id in wanted:
                raw.extend(check(mod))
    project = ProjectUnderLint(
        modules=list(modules), config=config, selected=wanted, raw_findings=raw
    )
    for rule_id, check in PROJECT_RULES.items():
        if rule_id in wanted:
            raw.extend(list(check(project)))

    by_path = {mod.path: mod for mod in modules}
    kept: List[Finding] = []
    for finding in raw:
        mod = by_path.get(finding.path)
        # stale-noqa reports must not be silenceable by the noqa they flag
        if finding.rule == "suppression-hygiene" or mod is None or not mod.suppressed(finding):
            kept.append(finding)
    return sorted(kept)


def _parse_module(
    source: str, path: str, module: str, config: LintConfig
) -> Tuple[Optional[ModuleUnderLint], Optional[Finding]]:
    """Parse one source text into a module-under-lint or a syntax finding."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule="syntax",
            message=f"could not parse: {exc.msg}",
        )
    mod = ModuleUnderLint(
        path=path,
        module=module,
        source=source,
        lines=source.splitlines(),
        tree=tree,
        config=config,
    )
    return mod, None


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source text; returns the unsuppressed findings, sorted.

    ``module`` is the dotted module name used for scope decisions (rules
    like ``exact-arith`` are scoped by package) — pass e.g.
    ``"repro.matching.fixture"`` to lint a snippet *as if* it lived there.
    Project rules run over the single-module project.  ``select`` must name
    known rule ids; an unknown id raises :class:`ValueError` instead of
    silently selecting nothing.
    """
    config = config or DEFAULT_CONFIG
    module = module if module is not None else Path(path).stem
    wanted = _selected_rules(select)
    mod, syntax = _parse_module(source, path, module, config)
    if syntax is not None:
        return [syntax]
    assert mod is not None
    return _lint_modules([mod], config, wanted)


def _iter_py_files(paths: Iterable[Path]) -> Iterable[Path]:
    """Yield each ``*.py`` exactly once, however many paths reach it."""
    seen = set()
    for path in paths:
        path = Path(path)
        candidates: Iterable[Path]
        if path.is_file() and path.suffix == ".py":
            candidates = [path]
        elif path.is_dir():
            candidates = (
                sub
                for sub in sorted(path.rglob("*.py"))
                if not any(
                    part.startswith(".") or part == "__pycache__" for part in sub.parts
                )
            )
        else:
            continue
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def lint_paths(
    paths: Iterable,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every ``*.py`` under ``paths`` (files or directories).

    All parseable modules form one :class:`ProjectUnderLint`, so the
    interprocedural rules see every cross-module call path; a file passed
    both directly and via a parent directory is linted once.
    """
    config = config or DEFAULT_CONFIG
    wanted = _selected_rules(select)
    modules: List[ModuleUnderLint] = []
    findings: List[Finding] = []
    for file in _iter_py_files(Path(p) for p in paths):
        source = file.read_text(encoding="utf-8")
        mod, syntax = _parse_module(source, str(file), module_name_for(file), config)
        if syntax is not None:
            findings.append(syntax)
        else:
            assert mod is not None
            modules.append(mod)
    findings.extend(_lint_modules(modules, config, wanted))
    return sorted(findings)
