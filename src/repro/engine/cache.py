"""Content-addressed memoization of canonical rooted forms.

The hot path of every adversary run is canonicalising witness balls
(:func:`repro.graphs.isomorphism.canonical_rooted_form`): each inductive
step canonicalises two rooted trees-with-loops that double in size as the
ladder climbs.  Many of those balls recur — the two radius-0 balls of every
base case are the same labelled single-node graph, the G- and H-side balls
of a step frequently coincide as labelled graphs, and a resumed or repeated
sweep re-canonicalises everything it already saw.

:class:`CanonicalFormCache` memoizes the *top-level* canonical form keyed by
:func:`graph_digest` — the rooted digest of the graph's frozen
:class:`~repro.graphs.kernel.GraphKernel`, maintained incrementally by the
builders so a lookup no longer re-walks the graph.  The digest is a pure
function of the labelled rooted graph (node labels, ``(u, v, colour)`` edge
multiset, root), so a hit can only ever return the form the recursion would
have computed; edge ids (which vary across copies) are deliberately
excluded.

Two tiers:

* an in-memory LRU (``maxsize`` entries, least-recently-used eviction);
* an optional on-disk JSON store (one tagged file per key) shared between
  worker processes and across sweep invocations.  The directory defaults to
  ``$REPRO_CACHE_DIR`` when set.  Corrupt or alien files are treated as
  misses: the form is recomputed and the entry rewritten.

Hits and misses are counted both in :class:`CacheStats` and on the ambient
:mod:`repro.obs` tracer (``engine.canonical_cache`` counter, ``outcome``
label), so a merged sweep trace reports the realised hit-rate.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Hashable, Optional, Tuple

from ..graphs.kernel import GraphKernel
from ..graphs.multigraph import ECGraph
from ..graphs.serialize import decode_label, encode_label
from ..graphs.soa import plan_hit_count
from ..obs.tracer import current_tracer
from .faults import active_injector

Node = Hashable

__all__ = [
    "CACHE_FORMAT",
    "ENV_CACHE_DIR",
    "CacheStats",
    "CanonicalFormCache",
    "graph_digest",
    "encode_form",
    "decode_form",
    "validate_tenant",
]

CACHE_FORMAT = "repro-canonical-cache-v1"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: tenant names become directory components; keep them boring on purpose
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_tenant(name: str) -> str:
    """Return ``name`` if it is a safe tenant identifier, else raise.

    Tenant names become cache directory components, so the alphabet is a
    conservative filename subset (no separators, no leading dot).
    """
    if not _TENANT_RE.match(name):
        raise ValueError(
            f"invalid cache tenant {name!r}: want {_TENANT_RE.pattern}"
        )
    return name

#: process-local id sequence making concurrent temp-file names unique even
#: when a watchdog-abandoned thread and its retry write the same key
_TMP_IDS = itertools.count()


def graph_digest(g: ECGraph, root: Optional[Node] = None) -> str:
    """Stable content digest of a (rooted) EC-graph.

    Delegates to the graph's frozen :class:`~repro.graphs.kernel.GraphKernel`
    snapshot, whose digest is maintained *incrementally* as edges are added —
    after the first freeze each lookup is O(1) instead of re-walking the
    whole graph.  Two graphs share a digest iff they have identical labelled
    structure (node labels, ``(u, v, colour)`` edge multiset, root) — exactly
    the condition under which their canonical rooted forms agree.  Edge ids
    are excluded: they differ between otherwise identical copies.

    A legacy JSON-walk path handles foreign graph-likes without a kernel.
    """
    if isinstance(g, GraphKernel):
        return g.rooted_digest(root)
    kernel = getattr(g, "kernel", None)
    if isinstance(kernel, GraphKernel):
        return kernel.rooted_digest(root)
    edges = sorted(
        tuple(sorted((repr(e.u), repr(e.v)))) + (repr(e.color),) for e in g.edges()
    )
    payload = json.dumps(
        {
            "nodes": sorted(repr(v) for v in g.nodes()),
            "edges": edges,
            "root": repr(root),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# Canonical forms are nested tuples of int/str leaves — the exact shape the
# graph serializer's tagged label codec handles, so the two layers share one
# implementation (repro.graphs.serialize).
encode_form = encode_label
decode_form = decode_label


@dataclass
class CacheStats:
    """Counters describing one cache's life so far.

    ``plan_hits`` counts *interned-plan reuse*: misses of the digest-keyed
    tiers whose form was nonetheless answered by the SoA canonicaliser's
    shape-plan cache (:mod:`repro.graphs.soa`) instead of a fresh tuple
    construction.  It is reported separately from ``hits``/``disk_hits``
    and never enters ``hit_rate`` — a plan hit is a cheap *compute*, not a
    cache lookup that succeeded.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_corrupt: int = 0
    disk_errors: int = 0
    plan_hits: int = 0
    shared_hits: int = 0
    disk_evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["lookups"] = self.lookups
        payload["hit_rate"] = self.hit_rate
        return payload

    @classmethod
    def merged(cls, dicts) -> "CacheStats":
        """Aggregate several ``as_dict`` payloads (one per worker).

        The merge iterates the dataclass's *declared* fields rather than a
        hand-maintained key list: adding a counter can no longer silently
        drop it from merged totals (``plan_hits`` once was).  Counters a
        payload lacks — snapshots written by older workers — default to 0,
        so the merge is total-preserving and associative: merging partial
        merges equals merging the underlying payloads in one pass.
        """
        total = cls()
        for d in dicts:
            if isinstance(d, CacheStats):
                d = d.as_dict()
            for f in fields(cls):
                setattr(total, f.name, getattr(total, f.name) + d.get(f.name, 0))
        return total


@dataclass
class CanonicalFormCache:
    """Two-tier (LRU + optional disk) memo table for canonical rooted forms.

    Parameters
    ----------
    maxsize:
        In-memory LRU capacity; the least-recently-used entry is evicted
        on overflow.
    directory:
        On-disk store location; ``None`` consults ``$REPRO_CACHE_DIR`` and
        disables the disk tier when that is unset too.
    use_disk:
        Set to ``False`` to force a memory-only cache even when a directory
        (or ``$REPRO_CACHE_DIR``) is available.
    tenant:
        Namespaces the disk tier: with a tenant name the entries live under
        ``directory/tenants/<tenant>/`` so co-hosted clients cannot read or
        evict each other's private entries.  Names are restricted to a safe
        directory-component alphabet.
    shared_dir:
        Optional read-through shared tier.  Lookups that miss the tenant
        tier consult it (counted as ``shared_hits``) and promote the entry
        into the tenant tier; every write also populates it, so concurrent
        tenants dedupe canonicalisation globally while eviction pressure
        stays per-tenant.
    disk_budget:
        Per-directory byte budget for the disk tiers.  After every write
        the oldest-used entries (disk hits refresh recency) are evicted
        until the directory fits, counted in ``disk_evictions``.  ``None``
        keeps the historical never-evict behaviour.
    """

    maxsize: int = 4096
    directory: Optional[Path] = None
    use_disk: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    tenant: Optional[str] = None
    shared_dir: Optional[Path] = None
    disk_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.directory is None:
            env = os.environ.get(ENV_CACHE_DIR)
            self.directory = Path(env) if env else None
        else:
            self.directory = Path(self.directory)
        if self.tenant is not None:
            validate_tenant(self.tenant)
        if self.disk_budget is not None and self.disk_budget <= 0:
            raise ValueError(f"disk_budget must be positive, got {self.disk_budget}")
        if self.directory and self.tenant:
            self.directory = self.directory / "tenants" / self.tenant
        self.shared_dir = Path(self.shared_dir) if self.shared_dir else None
        if not self.use_disk:
            self.directory = None
            self.shared_dir = None
        if self.directory:
            self.directory.mkdir(parents=True, exist_ok=True)
        if self.shared_dir:
            self.shared_dir.mkdir(parents=True, exist_ok=True)
        self._lru: "OrderedDict[str, Any]" = OrderedDict()

    # ------------------------------------------------------------------
    # the public entry point installed into repro.graphs.isomorphism
    # ------------------------------------------------------------------
    def canonical_form(
        self, g: ECGraph, root: Node, compute: Callable[[ECGraph, Node], Tuple]
    ) -> Tuple:
        """The canonical rooted form of ``(g, root)``, memoized.

        ``compute`` is the real canonicaliser
        (:func:`repro.graphs.isomorphism.canonical_rooted_form`), called on
        a miss.
        """
        key = graph_digest(g, root)
        hit, form = self._get(key)
        metrics = current_tracer().metrics
        if hit:
            self.stats.hits += 1
            metrics.counter("engine.canonical_cache", outcome="hit").inc()
            return form
        self.stats.misses += 1
        metrics.counter("engine.canonical_cache", outcome="miss").inc()
        # the compute path runs the SoA array kernel (via the installed
        # ``compute``); when its shape-plan cache answers the root shape,
        # credit the reuse separately from the digest-keyed tiers
        before_plan = plan_hit_count()
        form = compute(g, root)
        gained = plan_hit_count() - before_plan
        if gained:
            self.stats.plan_hits += gained
            metrics.counter("engine.canonical_cache", outcome="plan_hit").inc(gained)
        self._put(key, form)
        return form

    # ------------------------------------------------------------------
    # tiers
    # ------------------------------------------------------------------
    def _get(self, key: str) -> Tuple[bool, Any]:
        if key in self._lru:
            self._lru.move_to_end(key)
            return True, self._lru[key]
        form = self._disk_get(self.directory, key)
        if form is not None:
            self.stats.disk_hits += 1
            self._lru_store(key, form)
            return True, form
        if self.shared_dir is not None:
            form = self._disk_get(self.shared_dir, key)
            if form is not None:
                # read-through: a hit on the shared tier is promoted into
                # the tenant tier (and the LRU) so this tenant's next
                # process answers locally
                self.stats.shared_hits += 1
                current_tracer().metrics.counter(
                    "engine.canonical_cache", outcome="shared_hit"
                ).inc()
                self._lru_store(key, form)
                self._disk_put(self.directory, key, form)
                return True, form
        return False, None

    def _put(self, key: str, form: Any) -> None:
        self._lru_store(key, form)
        self._disk_put(self.directory, key, form)
        self._disk_put(self.shared_dir, key, form)

    def _lru_store(self, key: str, form: Any) -> None:
        self._lru[key] = form
        self._lru.move_to_end(key)
        while len(self._lru) > self.maxsize:
            self._lru.popitem(last=False)
            self.stats.evictions += 1

    def _disk_get(self, directory: Optional[Path], key: str) -> Optional[Any]:
        if not directory:
            return None
        path = directory / f"{key}.json"
        try:
            injector = active_injector()
            if injector is not None:
                injector.check_cache_io("read", key)
            # read bytes + lossy decode: a corrupt entry need not be UTF-8
            payload = json.loads(path.read_bytes().decode("utf-8", errors="replace"))
            if not isinstance(payload, dict):
                raise ValueError("malformed cache entry")
            if payload.get("format") != CACHE_FORMAT or payload.get("key") != key:
                raise ValueError("foreign or stale cache entry")
            form = decode_form(payload["form"])
            if self.disk_budget is not None:
                # budgeted tiers evict by recency of *use*, not of write:
                # refresh the entry's timestamp so a hot key survives
                try:
                    os.utime(path)
                except OSError:
                    pass
            return form
        except FileNotFoundError:
            return None
        except OSError:
            # transient I/O failure: a miss, never an abort; the recompute
            # path rewrites the entry on its next healthy write
            self.stats.disk_errors += 1
            current_tracer().metrics.counter("engine.cache_fault", outcome="io_error").inc()
            return None
        except (ValueError, KeyError, TypeError):
            # corrupt entry: fall back to recomputation (the fresh _put
            # below atomically overwrites the bad file)
            self.stats.disk_corrupt += 1
            current_tracer().metrics.counter("engine.cache_fault", outcome="corrupt").inc()
            return None

    def _disk_put(self, directory: Optional[Path], key: str, form: Any) -> None:
        if not directory:
            return
        path = directory / f"{key}.json"
        # a per-writer temp name: two processes (or a watchdog-abandoned
        # thread) rewriting the same entry must never share a temp file, or
        # their writes interleave before the replace
        tmp = path.with_name(f".{key}.{os.getpid()}.{next(_TMP_IDS)}.tmp")
        try:
            injector = active_injector()
            if injector is not None:
                injector.check_cache_io("write", key)
            tmp.write_text(
                json.dumps(
                    {"format": CACHE_FORMAT, "key": key, "form": encode_form(form)},
                    sort_keys=True,
                ),
                encoding="utf-8",
            )
            os.replace(tmp, path)  # atomic: concurrent workers never see partial writes
            if injector is not None:
                injector.on_cache_write(key, path)
        except OSError:  # a full or read-only disk never fails the computation
            self.stats.disk_errors += 1
            current_tracer().metrics.counter("engine.cache_fault", outcome="io_error").inc()
            tmp.unlink(missing_ok=True)
            return
        self._enforce_budget(directory, keep=path.name)

    def _enforce_budget(self, directory: Path, keep: str) -> None:
        """Evict oldest-used entries until ``directory`` fits the budget.

        The entry named ``keep`` (the one just written) is never evicted:
        a budget smaller than a single form must not make the cache churn
        its own write.  Eviction races between concurrent writers are
        benign — losing a file mid-scan is just an already-evicted entry.
        """
        if self.disk_budget is None:
            return
        try:
            entries = []
            for path in directory.glob("*.json"):
                try:
                    status = path.stat()
                except OSError:
                    continue
                entries.append((status.st_mtime, path.name, path, status.st_size))
        except OSError:
            return
        total = sum(size for _, _, _, size in entries)
        entries.sort()
        for _, name, path, size in entries:
            if total <= self.disk_budget:
                break
            if name == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.stats.disk_evictions += 1
            current_tracer().metrics.counter(
                "engine.canonical_cache", outcome="disk_evict"
            ).inc()

    def __len__(self) -> int:
        return len(self._lru)
