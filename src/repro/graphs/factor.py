"""Factor graphs via colour refinement (paper, Section 3.4, Figure 3).

The factor graph ``FG`` of ``G`` is the smallest graph of which ``G`` is a
lift — the most concise representation of the global symmetry-breaking
information in ``G``.  For properly edge-coloured graphs it is computed by
*colour refinement*: iteratively partition the nodes by the multiset of
(edge colour, class of the other endpoint) of their incident edges until
the partition stabilises, then take the quotient multigraph.  A loop is
treated exactly like an edge whose other endpoint lies in one's own class
(they are indistinguishable under covering maps).

Nodes of the quotient are frozensets of original nodes (the stable classes).
An original loop, or a non-loop edge joining two nodes of the same class,
becomes a loop of the quotient (degree +1, EC convention); pairs of classes
joined by a colour become single quotient edges.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Tuple

from .multigraph import ECGraph

Node = Hashable

__all__ = ["stable_partition", "factor_graph", "stable_partition_po", "factor_graph_po"]


def stable_partition(g: ECGraph) -> Dict[Node, int]:
    """Coarsest stable colour-refinement partition of an EC-graph.

    Two nodes end in the same class iff no sequence of local colour
    observations distinguishes them; equivalently they have a common image in
    every quotient.  Returns a map node -> class index (indices are dense and
    deterministic for a fixed iteration order).
    """
    nodes = g.nodes()
    # Initial partition: by sorted incident colour multiset.  Crucially the
    # signature must NOT distinguish a loop from an ordinary edge whose
    # other endpoint lies in the same class: under covering maps the two
    # are indistinguishable (a loop lifts to edges between copies), and
    # separating them would make the quotient larger than the true factor
    # graph — e.g. the 2-lift of a loopy node that crosses one loop would
    # wrongly refine into two classes.
    cls: Dict[Node, int] = {}
    sig0 = {
        v: tuple(sorted(repr(e.color) for e in g.incident_edges(v))) for v in nodes
    }
    cls = _reindex({v: sig0[v] for v in nodes})
    while True:
        sig = {}
        for v in nodes:
            entries = []
            for e in g.incident_edges(v):
                other_cls = cls[e.other(v)]  # a loop contributes cls[v] itself
                entries.append((repr(e.color), other_cls))
            sig[v] = (cls[v], tuple(sorted(entries)))
        new_cls = _reindex(sig)
        if _same_partition(cls, new_cls):
            return new_cls
        cls = new_cls


def _reindex(signature: Dict[Node, object]) -> Dict[Node, int]:
    """Map arbitrary signatures to dense integer class indices."""
    order = sorted({repr(s) for s in signature.values()})
    index = {s: i for i, s in enumerate(order)}
    return {v: index[repr(s)] for v, s in signature.items()}


def _same_partition(a: Dict[Node, int], b: Dict[Node, int]) -> bool:
    """Whether two class maps induce the same partition."""
    pairing: Dict[int, int] = {}
    for v in a:
        if pairing.setdefault(a[v], b[v]) != b[v]:
            return False
    return len(set(a.values())) == len(set(b.values()))


def factor_graph(g: ECGraph) -> Tuple[ECGraph, Dict[Node, FrozenSet[Node]]]:
    """Compute the factor graph ``FG`` and the covering map ``G -> FG``.

    Returns ``(fg, alpha)`` where ``fg``'s nodes are frozensets of original
    nodes and ``alpha[v]`` is the class containing ``v``.  The construction
    guarantees (and the tests verify via
    :func:`repro.graphs.lifts.is_covering_map_ec`) that ``alpha`` is a
    covering map.
    """
    cls = stable_partition(g)
    classes: Dict[int, List[Node]] = {}
    for v, c in cls.items():
        classes.setdefault(c, []).append(v)
    label: Dict[int, FrozenSet[Node]] = {c: frozenset(vs) for c, vs in classes.items()}
    fg = ECGraph()
    for c in classes:
        fg.add_node(label[c])
    for c, members in classes.items():
        rep = members[0]
        for e in g.incident_edges(rep):
            color = e.color
            existing = fg.edge_at(label[c], color)
            other_c = cls[e.other(rep)]
            if existing is not None:
                # slot already filled when the other class was processed;
                # consistency is checked rather than silently trusted.
                if existing.other(label[c]) != label[other_c]:
                    raise AssertionError(
                        "colour refinement produced an inconsistent quotient"
                    )
                continue
            if other_c == c:
                fg.add_edge(label[c], label[c], color)  # quotient loop
            else:
                fg.add_edge(label[c], label[other_c], color)
    alpha = {v: label[cls[v]] for v in g.nodes()}
    return fg, alpha


def stable_partition_po(g) -> Dict[Node, int]:
    """Coarsest stable partition of a PO-graph (directed colour refinement).

    Signatures track outgoing and incoming slots separately — the PO
    analogue of :func:`stable_partition`, with the same loop caveat: a
    directed loop is just an out-slot and an in-slot pointing to one's own
    class, indistinguishable from arcs into the class.
    """
    nodes = g.nodes()
    sig0 = {
        v: (
            tuple(sorted(repr(c) for c in g.out_colors(v))),
            tuple(sorted(repr(c) for c in g.in_colors(v))),
        )
        for v in nodes
    }
    cls = _reindex({v: sig0[v] for v in nodes})
    while True:
        sig = {}
        for v in nodes:
            outs = sorted((repr(e.color), cls[e.head]) for e in g.out_edges(v))
            ins = sorted((repr(e.color), cls[e.tail]) for e in g.in_edges(v))
            sig[v] = (cls[v], tuple(outs), tuple(ins))
        new_cls = _reindex(sig)
        if _same_partition(cls, new_cls):
            return new_cls
        cls = new_cls


def factor_graph_po(g):
    """Factor graph of a PO-graph (Figure 3's right-hand example).

    Returns ``(fg, alpha)`` where ``fg`` is a :class:`~repro.graphs.digraph.
    POGraph` on frozenset classes and ``alpha`` the covering map; an arc
    between two nodes of one class becomes a directed loop (degree +2, PO
    convention).
    """
    from .digraph import POGraph

    cls = stable_partition_po(g)
    classes: Dict[int, List[Node]] = {}
    for v, c in cls.items():
        classes.setdefault(c, []).append(v)
    label = {c: frozenset(vs) for c, vs in classes.items()}
    fg = POGraph()
    for c in classes:
        fg.add_node(label[c])
    for c, members in classes.items():
        rep = members[0]
        for e in g.out_edges(rep):
            existing = fg.out_edge(label[c], e.color)
            target = label[cls[e.head]]
            if existing is not None:
                if existing.head != target:
                    raise AssertionError("inconsistent PO quotient (out-slot)")
                continue
            fg.add_edge(label[c], target, e.color)
    # incoming slots of every class must now be consistent; verify.
    for c, members in classes.items():
        rep = members[0]
        for e in g.in_edges(rep):
            base = fg.in_edge(label[c], e.color)
            if base is None or base.tail != label[cls[e.tail]]:
                raise AssertionError("inconsistent PO quotient (in-slot)")
    alpha = {v: label[cls[v]] for v in g.nodes()}
    return fg, alpha
