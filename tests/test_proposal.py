"""Tests for the proposal dynamics (repro.matching.proposal)."""

from __future__ import annotations

import random
from fractions import Fraction

import networkx as nx
import pytest

from repro.core.saturation import check_lift_invariance
from repro.graphs.families import (
    caterpillar,
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_loopy_tree,
    random_regular_graph,
    single_node_with_loops,
    star_graph,
)
from repro.graphs.ports import po_double_from_ec
from repro.local.algorithm import SimulatedPOWeights
from repro.local.runtime import IDNetwork, run
from repro.matching.fm import fm_from_node_outputs, po_node_load
from repro.matching.proposal import ProposalFM, proposal_algorithm


class TestECCorrectness:
    def test_feasible_and_maximal(self):
        graphs = [
            path_graph(6),
            cycle_graph(7),
            star_graph(5),
            caterpillar(4, 3),
            random_bounded_degree_graph(20, 5, seed=1),
            random_loopy_tree(6, 2, seed=1),
        ]
        for g in graphs:
            alg = proposal_algorithm()
            fm = fm_from_node_outputs(g, alg.run_on(g))
            assert fm.is_feasible(), repr(g)
            assert fm.is_maximal(), repr(g)

    def test_star_saturates_centre_in_one_round(self):
        g = star_graph(5)
        alg = proposal_algorithm()
        fm = fm_from_node_outputs(g, alg.run_on(g))
        assert fm.is_saturated(0)
        assert alg.rounds_used(g) <= 2

    def test_loops_saturate(self):
        g = single_node_with_loops(3)
        alg = proposal_algorithm()
        outputs = alg.run_on(g)
        assert sum(outputs[0].values()) == Fraction(1)

    def test_regular_graphs_finish_fast(self):
        """On d-regular graphs all proposals tie: done in one round."""
        g = random_regular_graph(14, 4, seed=2)
        alg = proposal_algorithm()
        fm = fm_from_node_outputs(g, alg.run_on(g))
        assert fm.is_fully_saturated()
        assert alg.rounds_used(g) <= 2


class TestRoundsBound:
    def test_rounds_at_most_n(self):
        for seed in range(3):
            g = random_bounded_degree_graph(25, 5, seed=seed)
            alg = proposal_algorithm()
            alg.run_on(g)
            assert alg.rounds_used(g) <= g.num_nodes() + 2


class TestOtherModels:
    def test_po_model(self):
        d = po_double_from_ec(cycle_graph(6))
        alg = SimulatedPOWeights(ProposalFM("PO"))
        outputs = alg.run_on(d)
        for v in d.nodes():
            weights = {}
            for slot, w in outputs[v].items():
                kind, c = slot
                arc = d.out_edge(v, c) if kind == "out" else d.in_edge(v, c)
                weights[arc.eid] = w
            assert po_node_load(d, weights, v) == Fraction(1)

    def test_id_model(self):
        g = nx.path_graph(5)
        result = run(IDNetwork(g), ProposalFM("ID"))
        assert result.halted
        # assemble and check pairwise consistency + maximality
        loads = {}
        for v in g.nodes():
            loads[v] = sum(result.outputs[v].values())
        for u, v in g.edges():
            assert result.outputs[u][v] == result.outputs[v][u]
            assert loads[u] == 1 or loads[v] == 1

    def test_bad_model_rejected(self):
        with pytest.raises(ValueError):
            ProposalFM("OI")


class TestAnonymity:
    def test_lift_invariance(self):
        rng = random.Random(11)
        for g in (cycle_graph(4), random_loopy_tree(4, 1, seed=7)):
            assert check_lift_invariance(proposal_algorithm(), g, rng, trials=2) == []

    def test_snapshot_returns_current_weights(self):
        from repro.local.context import NodeContext

        alg = ProposalFM("EC")
        ctx = NodeContext(node=0, model="EC", ports=(1, 2))
        state = alg.initial_state(ctx)
        snap = alg.snapshot(state, ctx)
        assert snap == {1: Fraction(0), 2: Fraction(0)}
