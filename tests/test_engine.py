"""Tests for the parallel experiment engine (repro.engine)."""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    CacheStats,
    CanonicalFormCache,
    Cell,
    GridSpec,
    ResultStore,
    e1_grid,
    expand,
    graph_digest,
    run_cell,
    run_sweep,
    smoke_grid,
)
from repro.engine.cache import CACHE_FORMAT, decode_form, encode_form, validate_tenant
from repro.graphs.families import path_graph
from repro.graphs.isomorphism import canonical_rooted_form, use_canonical_cache
from repro.graphs.multigraph import ECGraph
from repro.obs import Tracer, merge_trace_documents, use_tracer


def loopy_pair():
    """Two structurally identical rooted graphs built with different edge ids."""
    g1 = ECGraph()
    g1.add_edge("a", "b", 1)
    g1.add_edge("b", "b", 2)
    g2 = ECGraph()
    g2.add_edge("b", "b", 2, eid=77)
    g2.add_edge("a", "b", 1, eid=99)
    return g1, g2


class TestGraphDigest:
    def test_identical_structure_same_digest(self):
        g1, g2 = loopy_pair()
        assert graph_digest(g1, "a") == graph_digest(g2, "a")

    def test_root_changes_digest(self):
        g1, _ = loopy_pair()
        assert graph_digest(g1, "a") != graph_digest(g1, "b")

    def test_edge_color_changes_digest(self):
        g1, _ = loopy_pair()
        g3 = ECGraph()
        g3.add_edge("a", "b", 5)
        g3.add_edge("b", "b", 2)
        assert graph_digest(g1, "a") != graph_digest(g3, "a")

    def test_form_roundtrip(self):
        g1, _ = loopy_pair()
        form = canonical_rooted_form(g1, "a")
        assert decode_form(json.loads(json.dumps(encode_form(form)))) == form


class TestCanonicalFormCache:
    def test_hit_and_miss_counting(self):
        g1, g2 = loopy_pair()
        cache = CanonicalFormCache(use_disk=False)
        f1 = cache.canonical_form(g1, "a", canonical_rooted_form)
        f2 = cache.canonical_form(g2, "a", canonical_rooted_form)
        assert f1 == f2 == canonical_rooted_form(g1, "a")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = CanonicalFormCache(maxsize=2, use_disk=False)
        for n in (2, 3, 4):
            cache.canonical_form(path_graph(n), 0, canonical_rooted_form)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # the evicted entry (n=2, least recently used) misses again
        cache.canonical_form(path_graph(2), 0, canonical_rooted_form)
        assert cache.stats.misses == 4
        assert cache.stats.hits == 0

    def test_disk_roundtrip_across_instances(self, tmp_path):
        g1, _ = loopy_pair()
        first = CanonicalFormCache(directory=tmp_path)
        first.canonical_form(g1, "a", canonical_rooted_form)
        second = CanonicalFormCache(directory=tmp_path)
        second.canonical_form(g1, "a", canonical_rooted_form)
        assert second.stats.hits == 1
        assert second.stats.disk_hits == 1

    def test_corrupt_disk_entry_recomputed(self, tmp_path):
        g1, _ = loopy_pair()
        cache = CanonicalFormCache(directory=tmp_path)
        key = graph_digest(g1, "a")
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        form = cache.canonical_form(g1, "a", canonical_rooted_form)
        assert form == canonical_rooted_form(g1, "a")
        assert cache.stats.disk_corrupt == 1
        assert cache.stats.misses == 1
        # the recomputation rewrote a valid entry
        payload = json.loads((tmp_path / f"{key}.json").read_text(encoding="utf-8"))
        assert payload["format"] == CACHE_FORMAT

    def test_foreign_format_treated_as_corrupt(self, tmp_path):
        g1, _ = loopy_pair()
        cache = CanonicalFormCache(directory=tmp_path)
        key = graph_digest(g1, "a")
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"format": "something-else", "key": key, "form": None}),
            encoding="utf-8",
        )
        cache.canonical_form(g1, "a", canonical_rooted_form)
        assert cache.stats.disk_corrupt == 1

    def test_env_dir_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = CanonicalFormCache()
        assert cache.directory == tmp_path / "envcache"
        memory_only = CanonicalFormCache(use_disk=False)
        assert memory_only.directory is None

    def test_installed_cache_serves_isomorphism(self):
        g1, g2 = loopy_pair()
        cache = CanonicalFormCache(use_disk=False)
        with use_canonical_cache(cache):
            from repro.graphs.isomorphism import canonical_form_of

            canonical_form_of(g1, "a")
            canonical_form_of(g2, "a")
        assert cache.stats.hits == 1


class TestMultiTenantCache:
    """Tenant namespacing, the read-through shared tier, disk budgets."""

    def test_tenant_namespaces_the_disk_tier(self, tmp_path):
        g1, _ = loopy_pair()
        cache = CanonicalFormCache(directory=tmp_path, tenant="alice")
        cache.canonical_form(g1, "a", canonical_rooted_form)
        key = graph_digest(g1, "a")
        assert (tmp_path / "tenants" / "alice" / f"{key}.json").exists()
        assert not (tmp_path / f"{key}.json").exists()

    def test_tenants_do_not_see_each_other(self, tmp_path):
        g1, _ = loopy_pair()
        alice = CanonicalFormCache(directory=tmp_path, tenant="alice")
        alice.canonical_form(g1, "a", canonical_rooted_form)
        bob = CanonicalFormCache(directory=tmp_path, tenant="bob")
        bob.canonical_form(g1, "a", canonical_rooted_form)
        assert bob.stats.misses == 1
        assert bob.stats.disk_hits == 0 and bob.stats.shared_hits == 0

    def test_bad_tenant_name_rejected(self, tmp_path):
        for name in ("", "../escape", "a/b", ".hidden", "x" * 65):
            with pytest.raises(ValueError):
                validate_tenant(name)
            with pytest.raises(ValueError):
                CanonicalFormCache(directory=tmp_path, tenant=name)

    def test_shared_tier_read_through(self, tmp_path):
        g1, _ = loopy_pair()
        shared = tmp_path / "shared"
        alice = CanonicalFormCache(directory=tmp_path, tenant="alice", shared_dir=shared)
        alice.canonical_form(g1, "a", canonical_rooted_form)
        key = graph_digest(g1, "a")
        # alice's miss populated both her tier and the shared tier
        assert (shared / f"{key}.json").exists()
        bob = CanonicalFormCache(directory=tmp_path, tenant="bob", shared_dir=shared)
        bob.canonical_form(g1, "a", canonical_rooted_form)
        assert bob.stats.hits == 1 and bob.stats.shared_hits == 1
        # read-through: the shared hit was promoted into bob's tenant tier
        assert (tmp_path / "tenants" / "bob" / f"{key}.json").exists()
        third = CanonicalFormCache(directory=tmp_path, tenant="bob", shared_dir=shared)
        third.canonical_form(g1, "a", canonical_rooted_form)
        assert third.stats.disk_hits == 1 and third.stats.shared_hits == 0

    def test_disk_budget_evicts_oldest_used(self, tmp_path):
        import os

        cache = CanonicalFormCache(directory=tmp_path, disk_budget=1)
        for n in (2, 3, 4):
            cache.canonical_form(path_graph(n), 0, canonical_rooted_form)
            # distinct mtimes even on coarse-grained filesystems
            for index, path in enumerate(sorted(tmp_path.glob("*.json"))):
                os.utime(path, (index, index))
        # a 1-byte budget keeps only the just-written entry per put
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert cache.stats.disk_evictions == 2
        stats = cache.stats.as_dict()
        assert stats["disk_evictions"] == 2 and "shared_hits" in stats

    def test_disk_budget_never_evicts_the_fresh_write(self, tmp_path):
        g1, _ = loopy_pair()
        cache = CanonicalFormCache(directory=tmp_path, disk_budget=1)
        cache.canonical_form(g1, "a", canonical_rooted_form)
        key = graph_digest(g1, "a")
        # the single entry exceeds the budget yet survives
        assert (tmp_path / f"{key}.json").exists()
        assert cache.stats.disk_evictions == 0

    def test_budget_requires_positive_bytes(self, tmp_path):
        with pytest.raises(ValueError):
            CanonicalFormCache(directory=tmp_path, disk_budget=0)

    def test_sweep_second_tenant_hits_shared_tier(self, tmp_path):
        grid = GridSpec(algorithms=("greedy",), deltas=(3,))
        base = tmp_path / "cache"
        shared = base / "shared"
        first = run_sweep(
            grid, cache_dir=base, cache_tenant="alice", cache_shared_dir=shared
        )
        second = run_sweep(
            grid, cache_dir=base, cache_tenant="bob", cache_shared_dir=shared
        )
        assert first.cache.shared_hits == 0
        assert second.cache.shared_hits > 0
        assert json.dumps(first.rows, sort_keys=True) == json.dumps(
            second.rows, sort_keys=True
        )


class TestCacheStatsMerge:
    """The total-preserving merge over declared dataclass fields."""

    def test_merge_defaults_missing_counters_to_zero(self):
        # a pre-plan_hits worker snapshot must not poison the totals
        old_snapshot = {"hits": 3, "misses": 1}
        merged = CacheStats.merged([old_snapshot, CacheStats(plan_hits=2).as_dict()])
        assert merged.hits == 3 and merged.misses == 1 and merged.plan_hits == 2

    def test_merge_preserves_every_declared_counter(self):
        from dataclasses import fields

        one = CacheStats(**{f.name: i + 1 for i, f in enumerate(fields(CacheStats))})
        two = CacheStats(**{f.name: 10 * (i + 1) for i, f in enumerate(fields(CacheStats))})
        merged = CacheStats.merged([one.as_dict(), two.as_dict()])
        for f in fields(CacheStats):
            assert getattr(merged, f.name) == getattr(one, f.name) + getattr(two, f.name)

    def test_merge_is_associative(self):
        a = CacheStats(hits=5, misses=2, plan_hits=1, shared_hits=4)
        b = {"hits": 1, "misses": 7}  # an older snapshot without new counters
        c = CacheStats(disk_hits=3, disk_evictions=2, evictions=1)
        left = CacheStats.merged([CacheStats.merged([a.as_dict(), b]).as_dict(), c.as_dict()])
        right = CacheStats.merged([a.as_dict(), CacheStats.merged([b, c.as_dict()]).as_dict()])
        flat = CacheStats.merged([a.as_dict(), b, c.as_dict()])
        assert left.as_dict() == right.as_dict() == flat.as_dict()

    def test_merge_accepts_stats_instances(self):
        merged = CacheStats.merged([CacheStats(hits=2), {"hits": 3}])
        assert merged.hits == 5


class TestGrid:
    def test_expand_is_sorted_and_complete(self):
        cells = expand(e1_grid())
        assert len(cells) == 12  # 2 algorithms x 6 deltas
        assert cells == sorted(cells)
        assert all(cell.chain == "ec" for cell in cells)

    def test_cell_key_roundtrip(self):
        cell = Cell("greedy", 5, "ec", 0)
        assert cell.key == "greedy/d5/ec/s0"
        assert Cell.from_dict(cell.as_dict()) == cell

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            expand(GridSpec(algorithms=("oracle",)))

    def test_rejects_deep_chain_for_non_proposal(self):
        with pytest.raises(ValueError, match="proposal"):
            expand(GridSpec(algorithms=("greedy",), chains=("po",)))

    def test_from_mapping_accepts_scalars(self):
        spec = GridSpec.from_mapping({"algorithms": "greedy", "deltas": 4})
        assert spec.algorithms == ("greedy",)
        assert spec.deltas == (4,)

    def test_run_cell_row_is_deterministic(self):
        cell = Cell("greedy", 3)
        row1 = run_cell(cell)
        row2 = run_cell(cell)
        assert row1 == row2
        assert row1["status"] == "ok"
        assert row1["witness_depth"] == row1["expected_depth"] == 1


class TestResultStore:
    def test_rows_tolerate_torn_trailing_line(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(0, {"key": "a", "status": "ok"})
        with store.shard_path(0).open("a", encoding="utf-8") as fh:
            fh.write('{"key": "b", "status"')  # the killed writer's torn line
        assert [row["key"] for row in store.rows()] == ["a"]

    def test_duplicate_keys_keep_first(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(0, {"key": "a", "status": "ok"})
        store.append(1, {"key": "a", "status": "refuted"})
        assert store.completed()["a"]["status"] == "ok"
        assert store.last_scan["duplicates"] == 1

    def test_torn_final_line_is_silent(self, tmp_path):
        import warnings

        store = ResultStore(tmp_path)
        store.append(0, {"key": "a", "status": "ok"})
        with store.shard_path(0).open("a", encoding="utf-8") as fh:
            fh.write('{"key": "b", "status"')
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail the test
            rows = store.rows()
        assert [row["key"] for row in rows] == ["a"]
        assert store.last_scan == {"torn_final": 1, "corrupt_lines": 0, "duplicates": 0}

    def test_mid_file_garbage_skipped_loudly(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(0, {"key": "a", "status": "ok"})
        with store.shard_path(0).open("ab") as fh:
            fh.write(b"\xfe\xfe not json \xfe\n")  # not even valid UTF-8
        store.append(0, {"key": "b", "status": "ok"})
        with pytest.warns(RuntimeWarning, match="mid-file corruption"):
            rows = store.rows()
        assert [row["key"] for row in rows] == ["a", "b"]
        assert store.last_scan["corrupt_lines"] == 1
        assert store.last_scan["torn_final"] == 0

    def test_mid_file_damage_is_counted_on_the_tracer(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(0, {"key": "a", "status": "ok"})
        with store.shard_path(0).open("a", encoding="utf-8") as fh:
            fh.write("garbage\n")
        store.append(0, {"key": "b", "status": "ok"})
        tracer = Tracer()
        with use_tracer(tracer), pytest.warns(RuntimeWarning):
            store.rows()
        counters = {
            (c["name"], c["labels"].get("outcome")): c["value"]
            for c in tracer.metrics.snapshot()["counters"]
        }
        assert counters[("engine.store", "corrupt_line")] == 1


class TestRunSweep:
    def test_parallel_rows_byte_identical_to_serial(self):
        grid = smoke_grid()
        serial = run_sweep(grid, workers=0)
        parallel = run_sweep(grid, workers=2)
        assert json.dumps(serial.rows, sort_keys=True) == json.dumps(
            parallel.rows, sort_keys=True
        )
        assert serial.cache.hits > 0
        assert parallel.cache.hits > 0

    def test_merged_trace_reports_cache_hits(self):
        result = run_sweep(GridSpec(algorithms=("greedy",), deltas=(3, 4)), workers=0)
        assert result.trace["cache"]["hits"] == result.cache.hits > 0
        counters = {
            (row["name"], tuple(sorted(row["labels"].items())))
            for row in result.trace["metrics"]["counters"]
        }
        assert ("engine.canonical_cache", (("outcome", "hit"),)) in counters

    def test_resume_skips_completed_cells(self, tmp_path):
        grid = GridSpec(algorithms=("greedy",), deltas=(3, 4, 5))
        first = run_sweep(grid, workers=0, out_dir=tmp_path)
        assert first.resumed == 0
        # drop one shard row: simulate a sweep killed before finishing
        store = ResultStore(tmp_path)
        surviving = [row for row in store.rows() if row["delta"] != 5]
        for path in tmp_path.glob("shard-*.jsonl"):
            path.unlink()
        for row in surviving:
            store.append(0, row)
        second = run_sweep(grid, workers=0, out_dir=tmp_path, resume=True)
        assert second.resumed == 2
        assert len(second.rows) == 3
        assert json.dumps(second.rows, sort_keys=True) == json.dumps(
            first.rows, sort_keys=True
        )
        # only the missing cell was recomputed
        assert second.cache.lookups < first.cache.lookups

    def test_resume_without_out_dir_raises(self):
        with pytest.raises(ValueError, match="out_dir"):
            run_sweep(smoke_grid(), resume=True)

    def test_out_dir_artifacts(self, tmp_path):
        run_sweep(GridSpec(algorithms=("greedy",), deltas=(3,)), out_dir=tmp_path)
        summary = json.loads((tmp_path / "summary.json").read_text(encoding="utf-8"))
        assert summary["cells"] == 1
        assert summary["rows"][0]["key"] == "greedy/d3/ec/s0"
        assert (tmp_path / "trace.json").exists()

    def test_shared_disk_cache_feeds_second_sweep(self, tmp_path):
        grid = GridSpec(algorithms=("greedy",), deltas=(3, 4))
        run_sweep(grid, workers=0, cache_dir=tmp_path)
        again = run_sweep(grid, workers=0, cache_dir=tmp_path)
        assert again.cache.disk_hits > 0

    def test_no_cache_disables_memoization(self):
        result = run_sweep(GridSpec(algorithms=("greedy",), deltas=(3,)), use_cache=False)
        assert result.cache.lookups == 0

    def test_sweep_nests_under_ambient_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_sweep(GridSpec(algorithms=("greedy",), deltas=(3,)))
        names = [span.name for span in tracer.iter_spans()]
        assert "engine.sweep" in names


class TestMergeTraceDocuments:
    def test_counters_sum_and_roots_annotated(self):
        docs = []
        for index in range(2):
            tracer = Tracer()
            with use_tracer(tracer):
                with tracer.span("work", shard=index):
                    tracer.metrics.counter("jobs", kind="x").inc(2)
            from repro.obs import trace_document

            docs.append(trace_document(tracer))
        merged = merge_trace_documents(docs, command="test")
        assert merged["merged_from"] == 2
        jobs = [
            row
            for row in merged["metrics"]["counters"]
            if row["name"] == "jobs"
        ]
        assert jobs[0]["value"] == 4
        assert [span["attrs"]["merged_from"] for span in merged["spans"]] == [0, 1]
