"""Benchmark-suite plumbing: collect experiment rows and print them.

Every benchmark records the quantities the corresponding paper artefact is
about (witness depths, round counts, approximation ratios, ...) through the
``record`` fixture; a terminal-summary hook prints one table per experiment
so that ``pytest benchmarks/ --benchmark-only`` reproduces the series the
paper reports alongside pytest-benchmark's timing table.  EXPERIMENTS.md
mirrors these tables.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, List

import pytest

_ROWS: Dict[str, List[dict]] = defaultdict(list)

_SRC = Path(__file__).resolve().parents[1] / "src"


def pytest_report_header(config):
    """Record whether the tree was model-contract clean for this bench run.

    Every recorded experiment series should be attributable to a tree that
    honours the model contracts; this is ``repro lint --json`` inlined into
    the session header.
    """
    try:
        from repro.lint import lint_paths, summarize

        summary = summarize(lint_paths([_SRC]))
        status = "contract-clean" if summary["clean"] else "CONTRACT VIOLATIONS"
        payload = json.dumps(
            {k: summary[k] for k in ("clean", "total", "by_rule")}, sort_keys=True
        )
        return [f"repro lint: {status} — {payload}"]
    except Exception as exc:  # never block a bench run on the linter
        return [f"repro lint: unavailable ({exc})"]


@pytest.fixture
def record():
    """Record one result row for an experiment: ``record("E1", col=value, ...)``."""

    def _record(experiment: str, **row):
        _ROWS[experiment].append(row)

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    tr = terminalreporter
    tr.section("reproduction experiment results")
    for line in pytest_report_header(config):
        tr.write_line(line)
    for experiment in sorted(_ROWS):
        rows = _ROWS[experiment]
        columns = list(dict.fromkeys(k for row in rows for k in row))
        widths = {
            c: max(len(c), *(len(str(row.get(c, ""))) for row in rows)) for c in columns
        }
        tr.write_line("")
        tr.write_line(f"[{experiment}]")
        tr.write_line("  " + "  ".join(c.ljust(widths[c]) for c in columns))
        for row in rows:
            tr.write_line(
                "  " + "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
            )
