"""``frozen-mutation`` — contexts, views and balls are immutable.

A :class:`repro.local.context.NodeContext` is a frozen snapshot of what a
node may see; view trees are nested tuples equal to the truncated universal
cover; neighbourhood :class:`~repro.graphs.neighborhoods.Ball`s are shared
sub-views.  Mutating any of them from algorithm code would (a) leak
information between nodes through a shared object, and (b) silently
invalidate the lift-invariance argument that makes the simulator runs equal
their universal-cover semantics.  The dataclass is ``frozen`` and
``globals`` is a read-only mapping proxy, but Python offers escape hatches;
this rule closes them statically.

(Post-freeze mutation of :class:`repro.graphs.kernel.GraphKernel` internals
is covered by the interprocedural ``kernel-escape`` rule, which tracks the
kernel's actual frozen slots instead of guessing from variable names.)

Flagged, for any object rooted at a context-like name (a parameter named
``ctx`` or annotated ``NodeContext``, or a variable named ``view`` /
``ball``):

* attribute or subscript assignment / deletion (``ctx.model = ...``,
  ``ctx.globals["k"] = v``, ``del ball.distances[v]``);
* calls to in-place mutators (``ctx.globals.update(...)``,
  ``ball.distances.pop(...)``);
* ``setattr`` / ``object.__setattr__`` with such an object as target.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import Finding, ModuleUnderLint
from .common import ctx_param_names, root_name

RULE_ID = "frozen-mutation"

_TRACKED_NAMES = {"ctx", "view", "ball"}
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
}


def _tracked_roots(func: ast.AST) -> Set[str]:
    return _TRACKED_NAMES | ctx_param_names(func)


def _is_tracked_store(node: ast.AST, roots: Set[str]) -> bool:
    """An Attribute/Subscript store/del reaching *into* a tracked object."""
    if not isinstance(node, (ast.Attribute, ast.Subscript)):
        return False
    if not isinstance(node.ctx, (ast.Store, ast.Del)):
        return False
    return root_name(node) in roots


def _check_scope(mod: ModuleUnderLint, scope: ast.AST, roots: Set[str]) -> Iterator[Finding]:
    for node in ast.iter_child_nodes(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _check_scope(mod, node, _TRACKED_NAMES | ctx_param_names(node))
            continue
        yield from _check_node(mod, node, roots)
        yield from _check_scope(mod, node, roots)


def _check_node(mod: ModuleUnderLint, node: ast.AST, roots: Set[str]) -> Iterator[Finding]:
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
        targets = (
            node.targets
            if isinstance(node, (ast.Assign, ast.Delete))
            else [node.target]
        )
        for target in targets:
            if _is_tracked_store(target, roots):
                yield mod.finding(
                    target,
                    RULE_ID,
                    f"in-place mutation of frozen object "
                    f"{root_name(target)!r}; contexts, views and balls are "
                    f"immutable inputs",
                )
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, (ast.Attribute, ast.Subscript))
            and root_name(func.value) in roots
        ):
            yield mod.finding(
                node,
                RULE_ID,
                f"mutating call .{func.attr}() on frozen object "
                f"{root_name(func.value)!r}",
            )
        elif isinstance(func, ast.Name) and func.id == "setattr" and node.args:
            if root_name(node.args[0]) in roots:
                yield mod.finding(
                    node, RULE_ID, "setattr on a frozen context/view/ball"
                )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and node.args
            and root_name(node.args[0]) in roots
        ):
            yield mod.finding(
                node,
                RULE_ID,
                "object.__setattr__ escape hatch on a frozen context/view/ball",
            )


def check(mod: ModuleUnderLint) -> Iterator[Finding]:
    """Flag in-place mutation of context-like objects anywhere in the module."""
    yield from _check_scope(mod, mod.tree, set(_TRACKED_NAMES))
