"""Columnar (structure-of-arrays) snapshots of frozen graph kernels.

A :class:`~repro.graphs.kernel.GraphKernel` stores a graph as Python dicts
of labelled objects — ideal for copy-on-write forking, hostile to tight
loops: canonicalising a ball or extracting a neighbourhood walks tuples
node-by-node and re-hashes labels edge-by-edge.  This module builds, per
frozen kernel and on first demand, a **SoA snapshot**: contiguous integer
columns (:mod:`array` ``'q'`` buffers, zero-copy viewable as NumPy arrays)
over the interned-label ids of :mod:`repro.graphs.labels`:

* per-node: the interned label id, and a CSR slice of *slot* columns;
* per-slot (CSR, colour-sorted to match ``ECGraph.incident_edges`` order):
  the colour's interned id, the edge id, and the dense index of the other
  endpoint — adjacency without touching an ``Edge`` record;
* a second per-node permutation ordering each node's slots by ``repr``
  of the colour — the exact sort key of
  :func:`repro.graphs.isomorphism.canonical_rooted_form`;
* per-edge: edge id and both endpoint indices, in insertion order.

On top of the snapshot live the two integer-array hot paths:

* :func:`canonical_form_fast` — an iterative, hash-consed canonicaliser.
  Each node's *shape* — its ``(colour id, child form id)`` rows in
  canonical order — keys a process-wide plan cache mapping shapes to
  already-built form tuples, so isomorphic subtrees (the G- and H-side
  balls of every adversary step differ only in node labels, never in
  colour structure) are recognised in O(degree) without rebuilding or
  re-hashing their encodings.  A root-level plan hit is counted and
  surfaced as the engine cache's ``plan_hits`` statistic.
* :func:`extract_ball` — radius-``t`` neighbourhood extraction that BFS-es
  over the CSR columns and assembles the sub-kernel's dicts directly
  (sharing the parent's frozen edge records, summing memoized digest
  tokens), skipping the per-edge properness checks and token hashing of
  the generic builder path.

Both functions return ``None`` (or raise exactly what the object path
would) whenever a snapshot cannot represent the input — directed kernels,
unsortable colours, colours with colliding ``repr``; callers fall back to
the reference implementations, which remain the semantics of record.
Snapshots memoize into the kernel's ``_soa`` slot and carry the label
table's generation: a table clear invalidates every snapshot and the plan
cache wholesale.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from .kernel import _MASK, GraphKernel
from .labels import LABELS

Node = Hashable

__all__ = [
    "SoASnapshot",
    "snapshot_of",
    "canonical_form_fast",
    "extract_ball",
    "plan_hit_count",
    "plan_stats",
    "reset_plan_cache",
]

#: payload markers, byte-identical to the canonicaliser's encoding
_LOOP = "loop"
_CUT = "cut"
#: child-form sentinels inside plan-cache shape keys (real ids are >= 0)
_LOOP_FID = -1
_CUT_FID = -2

#: kernels whose structure defies a snapshot memoize this sentinel so the
#: (failing) build is attempted once, not per lookup
_UNAVAILABLE = "soa-unavailable"

#: consed forms kept before the plan cache self-clears (a backstop far
#: above any real sweep; clearing only ever costs recomputation)
_PLAN_LIMIT = 1 << 18

#: edge count from which ball extraction switches the edge-inclusion
#: filter to the vectorised NumPy path (below it, loop overhead wins)
_VECTOR_MIN_EDGES = 64


class SoASnapshot:
    """Immutable columnar view of one frozen, undirected kernel."""

    __slots__ = (
        "generation",
        "n",
        "m",
        "labels",
        "index_of",
        "node_lids",
        "slot_off",
        "slot_color_lids",
        "slot_colors",
        "slot_eids",
        "slot_other",
        "slot_repr_order",
        "canonical_ok",
        "edge_eids",
        "edge_ui",
        "edge_vi",
        "edge_color_lids",
        "_edge_np",
    )

    def __init__(self) -> None:
        self.generation = LABELS.generation
        self.n = 0
        self.m = 0
        self.labels: List[Node] = []
        self.index_of: Dict[Node, int] = {}
        self.node_lids = array("q")
        self.slot_off = array("q", (0,))
        self.slot_color_lids = array("q")
        self.slot_colors: List[Any] = []
        self.slot_eids = array("q")
        self.slot_other = array("q")
        self.slot_repr_order = array("q")
        self.canonical_ok = True
        self.edge_eids = array("q")
        self.edge_ui = array("q")
        self.edge_vi = array("q")
        self.edge_color_lids = array("q")
        self._edge_np: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def edge_endpoint_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy int64 views of the edge endpoint columns."""
        if self._edge_np is None:
            self._edge_np = (
                np.frombuffer(self.edge_ui, dtype=np.int64),
                np.frombuffer(self.edge_vi, dtype=np.int64),
            )
        return self._edge_np


def _build(kernel: GraphKernel) -> SoASnapshot:
    slots_map = kernel._slots
    edges_map = kernel._edges
    intern = LABELS.intern
    repr_bytes_of = LABELS.repr_bytes_of

    snap = SoASnapshot()
    labels = list(slots_map.keys())
    index_of = {v: i for i, v in enumerate(labels)}
    snap.labels = labels
    snap.index_of = index_of
    snap.n = len(labels)
    snap.m = len(edges_map)
    snap.node_lids = array("q", (intern(v) for v in labels))

    off = snap.slot_off
    color_lids = snap.slot_color_lids
    colors = snap.slot_colors
    eids = snap.slot_eids
    other = snap.slot_other
    repr_order = snap.slot_repr_order
    canonical_ok = True
    base = 0
    for v, vi in index_of.items():
        # colour-sorted = the native ``incident_edges`` iteration order
        items = sorted(slots_map[v].items())
        reprs: List[bytes] = []
        for color, eid in items:
            clid = intern(color)
            color_lids.append(clid)
            colors.append(color)
            eids.append(eid)
            record = edges_map[eid]
            w = record.v if record.u == v else record.u
            other.append(vi if w == v else index_of[w])
            reprs.append(repr_bytes_of(clid))
        base += len(items)
        off.append(base)
        # canonical order sorts by repr(colour); UTF-8 bytes preserve the
        # code-point comparison, so the memoized bytes are the sort key
        order = sorted(range(len(items)), key=reprs.__getitem__)
        start = base - len(items)
        repr_order.extend(start + j for j in order)
        for a, b in zip(order, order[1:]):
            if reprs[a] == reprs[b]:
                # two distinct colours sharing a repr: the reference sort
                # would consult payload reprs — defer to it for this graph
                canonical_ok = False
    snap.canonical_ok = canonical_ok

    edge_eids = snap.edge_eids
    edge_ui = snap.edge_ui
    edge_vi = snap.edge_vi
    edge_color_lids = snap.edge_color_lids
    for eid, record in edges_map.items():
        edge_eids.append(eid)
        edge_ui.append(index_of[record.u])
        edge_vi.append(index_of[record.v])
        edge_color_lids.append(intern(record.color))
    return snap


def snapshot_of(kernel: GraphKernel) -> Optional[SoASnapshot]:
    """The memoized SoA snapshot of a frozen kernel, or ``None``.

    ``None`` means the structure defies a snapshot (directed discipline,
    colours that do not sort) — callers must fall back to the object path.
    Snapshots built against a since-cleared label table are rebuilt.
    """
    snap = kernel._soa
    if isinstance(snap, SoASnapshot) and snap.generation == LABELS.generation:
        return snap
    if snap is _UNAVAILABLE:
        return None
    if kernel._directed:
        object.__setattr__(kernel, "_soa", _UNAVAILABLE)
        return None
    try:
        snap = _build(kernel)
    except Exception:
        object.__setattr__(kernel, "_soa", _UNAVAILABLE)
        return None
    object.__setattr__(kernel, "_soa", snap)
    return snap


def _kernel_of(g) -> Optional[GraphKernel]:
    if isinstance(g, GraphKernel):
        return g
    kernel = getattr(g, "kernel", None)
    return kernel if isinstance(kernel, GraphKernel) else None


# ----------------------------------------------------------------------
# plan-cached canonicalisation
# ----------------------------------------------------------------------
class _PlanCache:
    """Hash-consed canonical forms keyed by integer shape rows.

    ``cons`` maps a node's shape — the tuple of ``(colour lid, child form
    id)`` rows in canonical order — to a dense form id; ``forms[fid]`` is
    the canonical tuple itself.  Because equal shapes produce *identical*
    (not merely equal) tuples, consing both deduplicates the O(subtree)
    tuple construction and makes repeat equality checks pointer-fast.
    """

    __slots__ = ("generation", "cons", "forms", "hits", "misses")

    def __init__(self) -> None:
        self.generation = LABELS.generation
        self.cons: Dict[Tuple, int] = {}
        self.forms: List[Tuple] = []
        self.hits = 0
        self.misses = 0

    def refresh(self) -> None:
        """Invalidate when the interned ids inside keys went stale."""
        if self.generation != LABELS.generation or len(self.forms) > _PLAN_LIMIT:
            self.generation = LABELS.generation
            self.cons.clear()
            self.forms.clear()

    def record(self, root_hit: bool) -> None:
        if root_hit:
            self.hits += 1
        else:
            self.misses += 1


_PLANS = _PlanCache()


def plan_hit_count() -> int:
    """Monotone count of root-level plan-cache hits (for stats deltas)."""
    return _PLANS.hits


def plan_stats() -> Dict[str, int]:
    """Current plan-cache counters (hits, misses, consed shapes)."""
    return {
        "hits": _PLANS.hits,
        "misses": _PLANS.misses,
        "shapes": len(_PLANS.cons),
    }


def reset_plan_cache() -> None:
    """Drop all consed plans and counters (test isolation hook)."""
    plans = _PLANS
    plans.generation = LABELS.generation
    plans.cons.clear()
    plans.forms.clear()
    plans.hits = 0
    plans.misses = 0


def canonical_form_fast(g, root: Node) -> Optional[Tuple]:
    """Canonical rooted form over the SoA snapshot, or ``None`` to fall back.

    Byte-identical to :func:`repro.graphs.isomorphism.canonical_rooted_form`
    on every input it accepts; raises ``ValueError`` when the graph
    (ignoring loops) contains a cycle, where the reference recursion would
    not terminate.
    """
    kernel = _kernel_of(g)
    if kernel is None:
        return None
    snap = snapshot_of(kernel)
    if snap is None or not snap.canonical_ok:
        return None
    root_index = snap.index_of.get(root)
    if root_index is None:
        return None
    plans = _PLANS
    plans.refresh()
    form, root_hit = _consed_form(snap, root_index, plans)
    plans.record(root_hit)
    return form


def _consed_form(snap: SoASnapshot, root_index: int, plans: _PlanCache) -> Tuple[Tuple, bool]:
    off = snap.slot_off
    repr_order = snap.slot_repr_order
    slot_eids = snap.slot_eids
    slot_other = snap.slot_other
    slot_colors = snap.slot_colors
    slot_color_lids = snap.slot_color_lids
    cons = plans.cons
    forms = plans.forms
    visited = bytearray(snap.n)

    # frame: [node, arrival eid, cursor, end, shape rows, entries,
    #         pending colour lid, pending colour]
    visited[root_index] = 1
    stack: List[list] = [
        [root_index, -1, off[root_index], off[root_index + 1], [], [], -1, None]
    ]
    while True:
        frame = stack[-1]
        if frame[2] < frame[3]:
            p = repr_order[frame[2]]
            frame[2] += 1
            eid = slot_eids[p]
            if eid == frame[1]:
                frame[4].append((slot_color_lids[p], _CUT_FID))
                frame[5].append((slot_colors[p], _CUT))
                continue
            child = slot_other[p]
            if child == frame[0]:
                frame[4].append((slot_color_lids[p], _LOOP_FID))
                frame[5].append((slot_colors[p], _LOOP))
                continue
            if visited[child]:
                raise ValueError(
                    "canonical form undefined: graph contains a cycle "
                    "(ignoring loops); canonical_rooted_form requires a tree"
                )
            visited[child] = 1
            frame[6] = slot_color_lids[p]
            frame[7] = slot_colors[p]
            stack.append([child, eid, off[child], off[child + 1], [], [], -1, None])
            continue
        # node complete: cons its shape into a form id
        key = tuple(frame[4])
        fid = cons.get(key)
        hit = fid is not None
        if fid is None:
            fid = len(forms)
            forms.append(tuple(frame[5]))
            cons[key] = fid
        stack.pop()
        if not stack:
            return forms[fid], hit
        parent = stack[-1]
        parent[4].append((parent[6], fid))
        parent[5].append((parent[7], forms[fid]))


# ----------------------------------------------------------------------
# columnar ball extraction
# ----------------------------------------------------------------------
class _BallMemo:
    """Process-global memo of extracted balls, keyed by content digest.

    A ball is a pure function of the parent graph's labelled structure,
    the root label and the radius, so ``(digest, root, t)`` keys are sound
    and never go stale.  Values hold the ball's frozen kernel (safe to
    share: every consumer wraps it in a copy-on-write view) plus the BFS
    distance dict, copied per lookup so callers may own their copy.

    All mutation happens through methods on this instance, mirroring the
    plan cache's containment pattern.
    """

    __slots__ = ("limit", "_entries")

    def __init__(self, limit: int = 8192) -> None:
        self.limit = limit
        self._entries: Dict[tuple, tuple] = {}

    def get(self, key: tuple):
        return self._entries.get(key)

    def put(self, key: tuple, value: tuple) -> None:
        if len(self._entries) >= self.limit:
            self._entries.clear()
        self._entries[key] = value


_BALLS = _BallMemo()


def extract_ball(g, root: Node, t: int):
    """``tau_t(g, root)`` assembled directly over the SoA columns.

    Returns ``(sub_kernel, distances)`` — the frozen kernel of the ball's
    subgraph (sharing the parent's edge records) plus the BFS distance
    dict in discovery order — or ``None`` when no snapshot is available.
    Node order, edge order, edge ids and the content digest are identical
    to the historical builder-based extraction.  Results are memoized
    process-wide by ``(parent digest, root, t)``.
    """
    kernel = _kernel_of(g)
    if kernel is None:
        return None
    memo_key = (kernel.digest, root, t)
    hit = _BALLS.get(memo_key)
    if hit is not None:
        sub_kernel, distances = hit
        return sub_kernel, dict(distances)
    snap = snapshot_of(kernel)
    if snap is None:
        return None
    root_index = snap.index_of.get(root)
    if root_index is None:
        return None

    n = snap.n
    off = snap.slot_off
    other = snap.slot_other
    dist = array("q", (-1,)) * n
    dist[root_index] = 0
    order = [root_index]
    frontier = [root_index]
    d = 0
    while frontier and d < t:
        d += 1
        nxt: List[int] = []
        for v in frontier:
            for p in range(off[v], off[v + 1]):
                w = other[p]
                if dist[w] < 0:
                    dist[w] = d
                    order.append(w)
                    nxt.append(w)
        frontier = nxt

    labels = snap.labels
    node_lids = snap.node_lids
    distances = {labels[i]: dist[i] for i in order}
    slots: Dict[Node, Dict[Any, int]] = {labels[i]: {} for i in order}
    edges: Dict[int, Any] = {}
    node_token_of = LABELS.node_token_of
    acc = 0
    for i in order:
        acc += node_token_of(node_lids[i])

    next_eid = 0
    kept: List[int] = []
    if t >= 1 and snap.m:
        edge_token_of = LABELS.edge_token_of
        edges_map = kernel._edges
        edge_eids = snap.edge_eids
        edge_ui = snap.edge_ui
        edge_vi = snap.edge_vi
        edge_color_lids = snap.edge_color_lids
        reach = t - 1
        kept = _included_edges(snap, dist, reach)
        for j in kept:
            eid = edge_eids[j]
            record = edges_map[eid]
            color = record.color
            slots[record.u][color] = eid
            if record.u != record.v:
                slots[record.v][color] = eid
            edges[eid] = record
            acc += edge_token_of(node_lids[edge_ui[j]], node_lids[edge_vi[j]], edge_color_lids[j], False)
            # the builder recurrence, reproduced exactly for byte-compat
            next_eid = (next_eid if next_eid > eid else eid) + 1
    sub_kernel = GraphKernel(False, slots, edges, acc & _MASK, next_eid)
    if snap.canonical_ok:
        sub_snap = _derive_ball_snapshot(snap, order, edges, kept)
        object.__setattr__(sub_kernel, "_soa", sub_snap)
    _BALLS.put(memo_key, (sub_kernel, distances))
    return sub_kernel, dict(distances)


def _derive_ball_snapshot(
    parent: SoASnapshot, order: List[int], edges: Dict[int, Any], kept: List[int]
) -> SoASnapshot:
    """The ball sub-kernel's snapshot, filtered out of the parent's columns.

    Per node, the kept slots are a subsequence of the parent's colour-sorted
    slots (so they stay colour-sorted), and the kept entries of the parent's
    stable repr permutation are the stable repr permutation of the
    subsequence — column-for-column what :func:`_build` would compute, with
    no sorting, interning or ``repr`` work.  Only called when the parent is
    ``canonical_ok`` (no repr ties), which the subsequence then inherits.
    """
    sub = SoASnapshot()
    sub.generation = parent.generation
    labels = parent.labels
    sub.labels = [labels[i] for i in order]
    sub.index_of = {labels[i]: k for k, i in enumerate(order)}
    sub.n = len(order)
    sub.m = len(edges)
    sub.node_lids = array("q", (parent.node_lids[i] for i in order))

    new_index = array("q", (-1,)) * parent.n
    for k, i in enumerate(order):
        new_index[i] = k

    p_off = parent.slot_off
    p_color_lids = parent.slot_color_lids
    p_colors = parent.slot_colors
    p_eids = parent.slot_eids
    p_other = parent.slot_other
    p_repr_order = parent.slot_repr_order
    s_off = sub.slot_off
    s_color_lids = sub.slot_color_lids
    s_colors = sub.slot_colors
    s_eids = sub.slot_eids
    s_other = sub.slot_other
    s_repr_order = sub.slot_repr_order
    base = 0
    for i in order:
        lo = p_off[i]
        hi = p_off[i + 1]
        kept_ps = [p for p in range(lo, hi) if p_eids[p] in edges]
        for p in kept_ps:
            s_color_lids.append(p_color_lids[p])
            s_colors.append(p_colors[p])
            s_eids.append(p_eids[p])
            s_other.append(new_index[p_other[p]])
        if len(kept_ps) == hi - lo:
            shift = base - lo
            s_repr_order.extend(p + shift for p in p_repr_order[lo:hi])
        elif kept_ps:
            pos = {p: base + k for k, p in enumerate(kept_ps)}
            s_repr_order.extend(
                pos[p] for p in p_repr_order[lo:hi] if p in pos
            )
        base += len(kept_ps)
        s_off.append(base)

    p_edge_eids = parent.edge_eids
    p_edge_ui = parent.edge_ui
    p_edge_vi = parent.edge_vi
    p_edge_color_lids = parent.edge_color_lids
    s_edge_eids = sub.edge_eids
    s_edge_ui = sub.edge_ui
    s_edge_vi = sub.edge_vi
    s_edge_color_lids = sub.edge_color_lids
    for j in kept:
        s_edge_eids.append(p_edge_eids[j])
        s_edge_ui.append(new_index[p_edge_ui[j]])
        s_edge_vi.append(new_index[p_edge_vi[j]])
        s_edge_color_lids.append(p_edge_color_lids[j])
    return sub


def _included_edges(snap: SoASnapshot, dist: array, reach: int):
    """Indices of edges with both ends in the ball and min distance <= reach.

    Insertion order is preserved either way; the NumPy path evaluates the
    paper's edge-distance rule as one vectorised mask over the endpoint
    columns.
    """
    if snap.m >= _VECTOR_MIN_EDGES:
        ui, vi = snap.edge_endpoint_arrays()
        dist_np = np.frombuffer(dist, dtype=np.int64)
        du = dist_np[ui]
        dv = dist_np[vi]
        keep = (du >= 0) & (dv >= 0) & (np.minimum(du, dv) <= reach)
        return np.flatnonzero(keep).tolist()
    edge_ui = snap.edge_ui
    edge_vi = snap.edge_vi
    out = []
    for j in range(snap.m):
        du = dist[edge_ui[j]]
        dv = dist[edge_vi[j]]
        if du < 0 or dv < 0:
            continue
        if (du if du <= dv else dv) <= reach:
            out.append(j)
    return out
