"""Resumable sweep results: JSONL shards plus one merged summary.

Each worker appends finished rows to its own ``shard-<k>.jsonl`` file — one
JSON object per line, flushed per row — so a sweep killed mid-flight loses
at most the row being written.  :meth:`ResultStore.completed` reads every
shard back (tolerating a torn final line) and reports which cell keys are
already done; the engine skips those on resume.

When a sweep finishes, :meth:`ResultStore.write_summary` merges all rows —
sorted by cell key, so worker scheduling never changes the document — into
``summary.json`` next to the shards, alongside the grid spec and aggregated
cache statistics.  The merged trace document lives in ``trace.json`` (see
:func:`repro.obs.export.merge_trace_documents`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["STORE_FORMAT", "ResultStore"]

STORE_FORMAT = "repro-sweep-v1"


class ResultStore:
    """Shard files and the merged summary for one sweep output directory."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # shards
    # ------------------------------------------------------------------
    def shard_path(self, shard: int) -> Path:
        return self.directory / f"shard-{shard}.jsonl"

    def append(self, shard: int, row: dict) -> None:
        """Append one finished row to a shard, flushed immediately."""
        with self.shard_path(shard).open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(row, sort_keys=True, default=str) + "\n")
            fh.flush()

    def rows(self) -> List[dict]:
        """Every persisted row across all shards, sorted by cell key.

        A truncated trailing line (the signature of a killed writer) is
        dropped silently; duplicate keys keep the first occurrence.
        """
        seen: Dict[str, dict] = {}
        for path in sorted(self.directory.glob("shard-*.jsonl")):
            for line in path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a killed worker
                key = row.get("key")
                if key is not None and key not in seen:
                    seen[key] = row
        return [seen[key] for key in sorted(seen)]

    def completed(self) -> Dict[str, dict]:
        """Cell key -> persisted row for every already-finished cell."""
        return {row["key"]: row for row in self.rows()}

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------
    @property
    def summary_path(self) -> Path:
        return self.directory / "summary.json"

    @property
    def trace_path(self) -> Path:
        return self.directory / "trace.json"

    def write_summary(
        self,
        grid: dict,
        rows: List[dict],
        cache_stats: Optional[dict] = None,
        workers: Optional[int] = None,
    ) -> Path:
        """Write the merged ``summary.json``; rows are sorted by cell key."""
        document = {
            "format": STORE_FORMAT,
            "grid": grid,
            "workers": workers,
            "cells": len(rows),
            "cache": cache_stats,
            "rows": sorted(rows, key=lambda r: r.get("key", "")),
        }
        self.summary_path.write_text(
            json.dumps(document, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        return self.summary_path

    def read_summary(self) -> Optional[dict]:
        """The previously written summary, or ``None``."""
        try:
            return json.loads(self.summary_path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None
