"""Tests for the lint baseline ratchet, the SARIF/JSON reporters, and the
operational CLI surfaces (--baseline / --update-baseline / --sarif /
--explain / --effects)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Finding,
    lint_paths,
    load_baseline,
    ratchet,
    render_json,
    render_sarif,
    write_baseline,
)
from repro.lint.baseline import fingerprint

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"


def finding(path="src/m.py", line=3, rule="determinism", message="boom"):
    return Finding(path=path, line=line, col=1, rule=rule, message=message)


# ---------------------------------------------------------------------------
# ratchet semantics
# ---------------------------------------------------------------------------


class TestRatchet:
    def test_round_trip(self, tmp_path):
        findings = [finding(), finding(line=9, rule="exact-arith", message="f")]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        accepted = load_baseline(path)
        new, fixed = ratchet(findings, accepted)
        assert new == [] and fixed == 0

    def test_new_finding_fails_the_ratchet(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding()])
        fresh = finding(rule="locality", message="peek")
        new, fixed = ratchet([finding(), fresh], load_baseline(path))
        assert new == [fresh] and fixed == 0

    def test_line_moves_do_not_count_as_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding(line=3)])
        new, fixed = ratchet([finding(line=57)], load_baseline(path))
        assert new == [] and fixed == 0

    def test_second_instance_of_accepted_finding_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding()])
        new, _ = ratchet([finding(line=3), finding(line=8)], load_baseline(path))
        assert len(new) == 1

    def test_fixed_findings_are_counted(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding(), finding(rule="locality", message="peek")])
        new, fixed = ratchet([finding()], load_baseline(path))
        assert new == [] and fixed == 1

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="malformed"):
            load_baseline(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_fingerprint_normalises_paths(self):
        relative = finding(path="src/m.py")
        absolute = finding(path=str(REPO / "src" / "m.py"))
        assert fingerprint(relative) == fingerprint(absolute)

    def test_committed_baseline_matches_the_shipped_tree(self):
        accepted = load_baseline(REPO / "lint-baseline.json")
        findings = lint_paths([SRC])
        new, _fixed = ratchet(findings, accepted)
        assert new == [], "\n".join(f.render() for f in new)


# ---------------------------------------------------------------------------
# reporter schema snapshots — changes to these shapes must be deliberate
# ---------------------------------------------------------------------------


class TestReporterSchemas:
    def test_json_schema_snapshot(self):
        payload = json.loads(render_json([finding()]))
        assert sorted(payload) == ["by_rule", "clean", "findings", "total"]
        assert sorted(payload["findings"][0]) == [
            "col",
            "line",
            "message",
            "path",
            "rule",
        ]
        assert payload["clean"] is False
        assert payload["total"] == 1
        assert payload["by_rule"] == {"determinism": 1}

    def test_sarif_schema_snapshot(self):
        log = json.loads(render_sarif([finding()]))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        # every registered rule is declared, plus the syntax pseudo-rule
        assert {
            "locality",
            "determinism",
            "exact-arith",
            "frozen-mutation",
            "effect-escape",
            "engine-concurrency",
            "kernel-escape",
            "suppression-hygiene",
            "syntax",
        } <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "determinism"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/m.py"
        assert location["region"] == {"startLine": 3, "startColumn": 1}

    def test_sarif_of_clean_run_has_no_results(self):
        log = json.loads(render_sarif([]))
        assert log["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


BAD = "import random\nx = random.random()\n"


class TestLintCli:
    def test_baseline_missing_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        code = main(["lint", str(bad), "--baseline", str(tmp_path / "none.json")])
        assert code == 2
        assert "--update-baseline" in capsys.readouterr().err

    def test_update_then_ratchet_accepts_old_debt(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--update-baseline", str(baseline)]) == 0
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_ratchet_fails_on_new_debt_only(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--update-baseline", str(baseline)]) == 0
        bad.write_text(BAD + "import time\ny = time.time()\n")
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "time" in out

    def test_ratchet_reports_reclaimable_slack(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--update-baseline", str(baseline)]) == 0
        bad.write_text("x = 1\n")
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
        assert "tighten" in capsys.readouterr().out

    def test_sarif_file_written(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        sarif = tmp_path / "out.sarif"
        assert main(["lint", str(bad), "--sarif", str(sarif)]) == 1
        log = json.loads(sarif.read_text())
        assert log["runs"][0]["results"]

    def test_explain_known_rule(self, capsys):
        assert main(["lint", "--explain", "effect-escape"]) == 0
        out = capsys.readouterr().out
        assert "effect-escape" in out and "boundary" in out

    def test_explain_unknown_rule(self, capsys):
        assert main(["lint", "--explain", "nope"]) == 2
        assert "known rules" in capsys.readouterr().err

    def test_effects_report(self, capsys):
        assert main(
            [
                "lint",
                str(SRC),
                "--effects",
                "repro.graphs.isomorphism.install_canonical_cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "raw direct effects" in out
        assert "global-mutation" in out  # the sanctioned cache-global rebind

    def test_effects_unknown_function(self, capsys):
        assert main(["lint", str(SRC), "--effects", "repro.nope.f"]) == 2
        assert "no function" in capsys.readouterr().err
