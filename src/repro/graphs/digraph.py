"""Edge-coloured digraphs with loops (PO-graphs).

A PO-graph (paper, Section 3.3 and Figure 2) is a directed multigraph whose
edges carry colours such that

* all *outgoing* edges of a node have pairwise distinct colours, and
* all *incoming* edges of a node have pairwise distinct colours

(an outgoing and an incoming edge at the same node may share a colour).  This
edge-coloured-digraph view is equivalent to the usual port-numbering-with-
orientation definition; the conversions live in :mod:`repro.graphs.ports`.

Loops follow the paper's convention (Section 3.5, Figure 3): a *directed* loop
contributes **+2** to its endpoint's degree — once as the tail (an outgoing
colour slot) and once as the head (an incoming colour slot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

Node = Hashable
Color = int
EdgeId = int

__all__ = ["DiEdge", "POGraph", "ImproperPOColoringError"]


class ImproperPOColoringError(ValueError):
    """Raised when an arc insertion would clash with an existing colour slot."""


@dataclass(frozen=True)
class DiEdge:
    """A directed coloured edge (arc) from ``tail`` to ``head``."""

    eid: EdgeId
    tail: Node
    head: Node
    color: Color

    @property
    def is_loop(self) -> bool:
        """Whether this arc is a directed loop (tail equals head)."""
        return self.tail == self.head


class POGraph:
    """A PO-graph: directed multigraph with the PO edge-colouring discipline.

    Each node has at most one outgoing arc and at most one incoming arc of any
    given colour; properness is enforced on insertion.  A directed loop at
    ``v`` occupies both the outgoing and the incoming colour-``c`` slot of
    ``v`` and counts +2 towards ``degree(v)``.
    """

    def __init__(self) -> None:
        self._edges: Dict[EdgeId, DiEdge] = {}
        self._out: Dict[Node, Dict[Color, EdgeId]] = {}
        self._in: Dict[Node, Dict[Color, EdgeId]] = {}
        self._next_eid: EdgeId = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> Node:
        """Add an isolated node (no-op if already present)."""
        self._out.setdefault(v, {})
        self._in.setdefault(v, {})
        return v

    def add_edge(self, tail: Node, head: Node, color: Color, eid: Optional[EdgeId] = None) -> EdgeId:
        """Add an arc ``tail -> head`` of the given colour.

        Raises :class:`ImproperPOColoringError` if ``tail`` already has an
        outgoing arc of this colour or ``head`` already has an incoming one.
        """
        self.add_node(tail)
        self.add_node(head)
        if color in self._out[tail]:
            raise ImproperPOColoringError(
                f"node {tail!r} already has an outgoing arc of colour {color}"
            )
        if color in self._in[head]:
            raise ImproperPOColoringError(
                f"node {head!r} already has an incoming arc of colour {color}"
            )
        if eid is None:
            eid = self._next_eid
        elif eid in self._edges:
            raise ValueError(f"edge id {eid} already in use")
        self._next_eid = max(self._next_eid, eid) + 1
        arc = DiEdge(eid, tail, head, color)
        self._edges[eid] = arc
        self._out[tail][color] = eid
        self._in[head][color] = eid
        return eid

    def remove_edge(self, eid: EdgeId) -> DiEdge:
        """Remove the arc with id ``eid`` and return its record."""
        arc = self._edges.pop(eid)
        del self._out[arc.tail][arc.color]
        del self._in[arc.head][arc.color]
        return arc

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def nodes(self) -> List[Node]:
        """List of all nodes."""
        return list(self._out.keys())

    def edges(self) -> List[DiEdge]:
        """List of all arc records."""
        return list(self._edges.values())

    def edge(self, eid: EdgeId) -> DiEdge:
        """The arc with id ``eid``."""
        return self._edges[eid]

    def has_node(self, v: Node) -> bool:
        """Whether ``v`` is a node."""
        return v in self._out

    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._out)

    def num_edges(self) -> int:
        """Number of arcs (a loop counts once as an arc)."""
        return len(self._edges)

    def out_colors(self, v: Node) -> List[Color]:
        """Colours of outgoing arcs at ``v``."""
        return list(self._out[v].keys())

    def in_colors(self, v: Node) -> List[Color]:
        """Colours of incoming arcs at ``v``."""
        return list(self._in[v].keys())

    def out_edge(self, v: Node, color: Color) -> Optional[DiEdge]:
        """The outgoing colour-``color`` arc at ``v``, or ``None``."""
        eid = self._out[v].get(color)
        return None if eid is None else self._edges[eid]

    def in_edge(self, v: Node, color: Color) -> Optional[DiEdge]:
        """The incoming colour-``color`` arc at ``v``, or ``None``."""
        eid = self._in[v].get(color)
        return None if eid is None else self._edges[eid]

    def out_edges(self, v: Node) -> List[DiEdge]:
        """Outgoing arcs at ``v`` in colour order (loops included)."""
        return [self._edges[eid] for _, eid in sorted(self._out[v].items())]

    def in_edges(self, v: Node) -> List[DiEdge]:
        """Incoming arcs at ``v`` in colour order (loops included)."""
        return [self._edges[eid] for _, eid in sorted(self._in[v].items())]

    def incident_edges(self, v: Node) -> List[DiEdge]:
        """All arcs with ``v`` as tail or head; loops appear once."""
        seen: Dict[EdgeId, DiEdge] = {}
        for e in self.out_edges(v) + self.in_edges(v):
            seen[e.eid] = e
        return list(seen.values())

    def degree(self, v: Node) -> int:
        """PO degree: out-slots + in-slots.  A directed loop counts +2."""
        return len(self._out[v]) + len(self._in[v])

    def max_degree(self) -> int:
        """Maximum PO degree over all nodes."""
        return max((self.degree(v) for v in self._out), default=0)

    def loop_count(self, v: Node) -> int:
        """Number of directed loops at ``v``."""
        return sum(1 for e in self.out_edges(v) if e.is_loop)

    def colors(self) -> List[Color]:
        """Sorted list of colours used."""
        return sorted({e.color for e in self._edges.values()})

    def neighbors(self, v: Node) -> List[Node]:
        """Distinct nodes adjacent to ``v`` in either direction."""
        seen: List[Node] = []
        for e in self.incident_edges(v):
            w = e.head if e.tail == v else e.tail
            if w not in seen:
                seen.append(w)
        return seen

    # ------------------------------------------------------------------
    # traversal / copy
    # ------------------------------------------------------------------
    def bfs_distances(self, source: Node, max_dist: Optional[int] = None) -> Dict[Node, int]:
        """Undirected BFS distances from ``source`` (arcs traversed both ways)."""
        dist = {source: 0}
        frontier = [source]
        d = 0
        while frontier and (max_dist is None or d < max_dist):
            d += 1
            nxt: List[Node] = []
            for v in frontier:
                for w in self.neighbors(v):
                    if w not in dist:
                        dist[w] = d
                        nxt.append(w)
            frontier = nxt
        return dist

    def is_connected(self) -> bool:
        """Whether the underlying undirected graph is connected."""
        if not self._out:
            return True
        src = next(iter(self._out))
        return len(self.bfs_distances(src)) == len(self._out)

    def copy(self) -> "POGraph":
        """Deep copy preserving labels and edge ids."""
        g = POGraph()
        for v in self._out:
            g.add_node(v)
        for e in self._edges.values():
            g.add_edge(e.tail, e.head, e.color, eid=e.eid)
        return g

    def validate(self) -> None:
        """Check internal consistency; raises ``AssertionError`` on corruption."""
        for v, slots in self._out.items():
            for color, eid in slots.items():
                e = self._edges[eid]
                assert e.color == color and e.tail == v
        for v, slots in self._in.items():
            for color, eid in slots.items():
                e = self._edges[eid]
                assert e.color == color and e.head == v

    def __contains__(self, v: Node) -> bool:
        return v in self._out

    def __iter__(self) -> Iterator[Node]:
        return iter(self._out)

    def __len__(self) -> int:
        return len(self._out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"POGraph(n={self.num_nodes()}, m={self.num_edges()}, colors={self.colors()})"
