"""A zoo of matching algorithms and their measured round complexities.

Reproduces the complexity landscape the paper is set in (Sections 1.1-1.2):

* maximal fractional matching — Theta(Delta) rounds (greedy-by-colour;
  proposal dynamics), the complexity Theorem 1 pins down;
* approximate maximum-weight FM — O(log Delta) rounds (doubling dynamics),
  the exponentially faster relaxation of Kuhn et al.;
* maximal integral matching — O(Delta + log* n) deterministic
  (Panconesi-Rizzi) and O(log n) randomised.

Run:  python examples/matching_zoo.py
"""

from __future__ import annotations

import random

import networkx as nx

from repro.graphs.families import random_regular_graph
from repro.matching import (
    doubling_algorithm,
    fm_from_node_outputs,
    greedy_color_algorithm,
    max_weight_fm_lp,
    panconesi_rizzi_matching,
    proposal_algorithm,
    randomized_matching,
    validate_maximal_matching,
)


def fractional_section() -> None:
    print("== fractional: maximal (Theta(Delta)) vs approximate (O(log Delta)) ==")
    print(f"{'Delta':>5} {'greedy rounds':>13} {'proposal rounds':>15} "
          f"{'doubling rounds':>15} {'doubling ratio':>14}")
    for delta in (3, 4, 6, 8, 10, 12):
        g = random_regular_graph(n=48 if (48 * delta) % 2 == 0 else 49, d=delta, seed=7)
        greedy = greedy_color_algorithm()
        fm = fm_from_node_outputs(g, greedy.run_on(g))
        assert fm.is_maximal()
        proposal = proposal_algorithm()
        fm2 = fm_from_node_outputs(g, proposal.run_on(g))
        assert fm2.is_maximal()
        doubling = doubling_algorithm()
        fm3 = fm_from_node_outputs(g, doubling.run_on(g))
        assert fm3.is_feasible()
        lp_opt, _ = max_weight_fm_lp(g)
        ratio = float(fm3.total_weight()) / lp_opt if lp_opt else 1.0
        print(
            f"{delta:>5} {greedy.rounds_used(g):>13} {proposal.rounds_used(g):>15} "
            f"{doubling.rounds_used(g):>15} {ratio:>14.3f}"
        )
    print()


def integral_section() -> None:
    print("== integral: deterministic O(Delta + log* n) vs randomised O(log n) ==")
    print(f"{'n':>5} {'Delta':>5} {'Panconesi-Rizzi':>16} {'randomised':>11}")
    rng = random.Random(13)
    for (n, d) in ((20, 4), (60, 4), (200, 4), (60, 8), (200, 8)):
        nxg = nx.random_regular_graph(d, n, seed=5)
        matching, pr_rounds = panconesi_rizzi_matching(nxg)
        assert validate_maximal_matching(nxg, matching)
        matching2, rnd_rounds = randomized_matching(nxg, rng)
        assert validate_maximal_matching(nxg, matching2)
        print(f"{n:>5} {d:>5} {pr_rounds:>16} {rnd_rounds:>11}")
    print()
    print("Note how Panconesi-Rizzi's rounds track Delta (for fixed n) while")
    print("the randomised algorithm's track log n — and recall the paper's open")
    print("question: is the Delta term necessary for maximal matching?")


def main() -> None:
    fractional_section()
    integral_section()


if __name__ == "__main__":
    main()
