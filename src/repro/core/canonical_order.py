"""The homogeneous linear order on the 2d-regular PO-tree (Appendix A, Lemma 4).

The infinite ``d``-edge-coloured PO-tree ``T`` is the Cayley graph of the
free group on ``d`` generators: each node has, for every colour ``c``, one
outgoing arc (the generator ``g_c``, a step ``(c, +1)``) and one incoming
arc (``g_c^{-1}``, a step ``(c, -1)``).  Nodes are represented as *reduced
words* — tuples of steps with no adjacent inverse pair.

The combinatorial order (paper, Appendix A.2 and Figure 10) assigns every
path ``x ~> y`` the integer

    [[x ~> y]] = sum over path edges of [x <_e y]
               + sum over interior path nodes of [x <_v y]

with the Iverson-style brackets valued in {+1, -1}:

* ``[x <_e y]`` is +1 when the path traverses the arc forward (tail before
  head), -1 backward — the canonical endpoint order of a directed edge;
* ``[x <_v y]`` compares, in a fixed slot order, the slot through which the
  path *enters* ``v`` with the slot through which it *leaves*.

Then ``x < y  iff  [[x ~> y]] > 0``.  Because both ingredients depend only
on colours and directions, the bracket of a path depends only on the reduced
word ``x^{-1} y`` — the order is invariant under the free group's left
action, which is exactly Lemma 4's homogeneity: all ordered neighbourhoods
of ``T`` are pairwise isomorphic.  Antisymmetry, totality (brackets of
non-trivial words are odd) and transitivity are property-tested.
"""

from __future__ import annotations

from functools import cmp_to_key
from typing import Hashable, List, Sequence, Tuple

Color = Hashable
Step = Tuple[Color, int]  # (colour, +1 = forward / -1 = backward)
Word = Tuple[Step, ...]

__all__ = [
    "reduce_word",
    "inverse_word",
    "concat",
    "slot_key",
    "bracket",
    "compare_words",
    "tree_sort_key",
]


def reduce_word(steps: Sequence[Step]) -> Word:
    """Cancel adjacent inverse pairs; the free-group normal form."""
    out: List[Step] = []
    for (c, d) in steps:
        if d not in (+1, -1):
            raise ValueError(f"step direction must be +1 or -1, got {d!r}")
        if out and out[-1][0] == c and out[-1][1] == -d:
            out.pop()
        else:
            out.append((c, d))
    return tuple(out)


def inverse_word(word: Sequence[Step]) -> Word:
    """The inverse word: reversed steps with flipped directions."""
    return tuple((c, -d) for (c, d) in reversed(list(word)))


def concat(w1: Sequence[Step], w2: Sequence[Step]) -> Word:
    """Reduced concatenation ``w1 . w2`` (group multiplication)."""
    return reduce_word(tuple(w1) + tuple(w2))


def slot_key(step: Step) -> Tuple[str, int]:
    """Fixed total order on the 2d slots of a ``T``-node.

    Slots are ``(colour, direction)`` pairs; the key orders by colour first
    and puts the outgoing slot before the incoming one.  Any fixed,
    colour/direction-determined order yields homogeneity; this choice is the
    module's convention.
    """
    c, d = step
    return (repr(c), -d)


def bracket(word: Sequence[Step]) -> int:
    """``[[epsilon ~> w]]`` — the path value from the identity to node ``w``.

    ``word`` must be reduced (the path along a reduced word is the unique
    simple path in the tree).  The value of a general path ``x ~> y`` is
    ``bracket(reduce(x^{-1} y))`` by translation invariance.
    """
    w = tuple(word)
    if reduce_word(w) != w:
        raise ValueError("bracket expects a reduced word")
    total = 0
    # edge terms: forward arcs are traversed tail->head (+1), backward -1
    for (_, d) in w:
        total += 1 if d == +1 else -1
    # interior node terms: entering slot vs leaving slot at each interior node
    for i in range(len(w) - 1):
        c_in, d_in = w[i]
        entering = (c_in, -d_in)  # the slot of v occupied by the arriving arc
        leaving = w[i + 1]
        total += 1 if slot_key(entering) < slot_key(leaving) else -1
    return total


def compare_words(x: Sequence[Step], y: Sequence[Step]) -> int:
    """Three-way comparison of two ``T``-nodes given as reduced words.

    Returns -1 if ``x`` precedes ``y`` in the homogeneous order, +1 if it
    follows, 0 iff equal.  Computed as the sign of ``[[x ~> y]]``; brackets
    of distinct nodes are odd hence non-zero (totality).
    """
    rx, ry = reduce_word(x), reduce_word(y)
    if rx == ry:
        return 0
    value = bracket(concat(inverse_word(rx), ry))
    if value == 0:  # pragma: no cover - impossible: brackets are odd
        raise AssertionError("bracket of distinct nodes must be non-zero")
    return -1 if value > 0 else 1


#: sort key for ordering ``T``-nodes (reduced words) by the homogeneous order
tree_sort_key = cmp_to_key(compare_words)
