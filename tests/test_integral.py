"""Tests for integral matching baselines (repro.matching.integral)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.coloring.edge_coloring import distributed_edge_coloring
from repro.matching.integral import (
    greedy_matching_by_color,
    panconesi_rizzi_matching,
    randomized_matching,
    validate_maximal_matching,
)


def sample_graphs():
    return [
        nx.path_graph(8),
        nx.cycle_graph(9),
        nx.star_graph(6),
        nx.random_regular_graph(4, 16, seed=0),
        nx.gnp_random_graph(20, 0.2, seed=1),
        nx.complete_graph(7),
    ]


class TestPanconesiRizzi:
    def test_maximal_on_all_samples(self):
        for g in sample_graphs():
            matching, rounds = panconesi_rizzi_matching(g)
            assert validate_maximal_matching(g, matching), g
            assert rounds >= 0

    def test_rounds_independent_of_n_for_fixed_delta(self):
        """O(Delta + log* n): for bounded identifiers the log* term is flat."""
        rounds = []
        for n in (16, 64, 256):
            g = nx.random_regular_graph(4, n, seed=2)
            _, r = panconesi_rizzi_matching(g)
            rounds.append(r)
        assert max(rounds) - min(rounds) <= 4  # essentially constant in n

    def test_rounds_grow_with_delta(self):
        rounds = []
        for d in (2, 4, 8):
            g = nx.random_regular_graph(d, 32, seed=3)
            _, r = panconesi_rizzi_matching(g)
            rounds.append(r)
        assert rounds == sorted(rounds)
        assert rounds[-1] > rounds[0]

    def test_empty_graph(self):
        g = nx.empty_graph(5)
        matching, _ = panconesi_rizzi_matching(g)
        assert matching == set()


class TestRandomized:
    def test_maximal_on_all_samples(self):
        rng = random.Random(7)
        for g in sample_graphs():
            matching, rounds = randomized_matching(g, rng)
            assert validate_maximal_matching(g, matching), g

    def test_rounds_grow_slowly_with_n(self):
        rng = random.Random(8)
        g = nx.random_regular_graph(4, 256, seed=4)
        _, rounds = randomized_matching(g, rng)
        assert rounds <= 40  # ~ O(log n) with small constants

    def test_deterministic_given_seed(self):
        g = nx.gnp_random_graph(15, 0.3, seed=5)
        m1, _ = randomized_matching(g, random.Random(1))
        m2, _ = randomized_matching(g, random.Random(1))
        assert m1 == m2


class TestGreedyByColor:
    def test_maximal_with_distributed_coloring(self):
        for g in sample_graphs():
            if g.number_of_edges() == 0:
                continue
            coloring, _ = distributed_edge_coloring(g)
            matching, rounds = greedy_matching_by_color(g, coloring)
            assert validate_maximal_matching(g, matching), g
            assert rounds == len(set(coloring.values()))

    def test_matching_within_color_class_conflict_free(self):
        g = nx.cycle_graph(6)
        coloring, _ = distributed_edge_coloring(g)
        matching, _ = greedy_matching_by_color(g, coloring)
        assert validate_maximal_matching(g, matching)


class TestValidator:
    def test_rejects_non_edges(self):
        g = nx.path_graph(3)
        assert not validate_maximal_matching(g, {(0, 2)})

    def test_rejects_overlapping(self):
        g = nx.path_graph(3)
        assert not validate_maximal_matching(g, {(0, 1), (1, 2)})

    def test_rejects_non_maximal(self):
        g = nx.path_graph(5)
        assert not validate_maximal_matching(g, {(0, 1)})

    def test_accepts_valid(self):
        g = nx.path_graph(4)
        assert validate_maximal_matching(g, {(0, 1), (2, 3)})
