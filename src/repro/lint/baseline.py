"""Findings baseline with ratchet semantics.

A committed baseline file records the findings a repository has *accepted*;
``repro lint --baseline`` then fails only on findings **not** in the
baseline — new debt is blocked, old debt does not break CI, and fixing old
findings is reported so the baseline can be re-tightened
(``--update-baseline`` rewrites it to the current findings).  The ratchet
only ever turns one way: CI fails on new findings, and an updated baseline
that *grows* is visible in review as a diff of the committed file.

Findings are keyed by ``(path, rule, message)`` — deliberately *not* by
line — so pure line moves (a refactor shifting an accepted finding) do not
count as new findings.  Identical keys are multiset-counted: introducing a
*second* instance of an accepted finding is still new debt.

Paths are normalised to repo-relative POSIX form when possible so the
baseline file is stable across checkouts and operating systems.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path, PurePath
from typing import Dict, List, Sequence, Tuple

from .engine import Finding

__all__ = [
    "BASELINE_VERSION",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "ratchet",
]

BASELINE_VERSION = 1


def _normalize_path(path: str) -> str:
    """Repo-relative POSIX path when under the cwd, else POSIX as given."""
    try:
        resolved = Path(path).resolve()
        return resolved.relative_to(Path.cwd().resolve()).as_posix()
    except (ValueError, OSError):
        return PurePath(path).as_posix()


def fingerprint(finding: Finding) -> Tuple[str, str, str]:
    """The line-move-tolerant identity of a finding."""
    return (_normalize_path(finding.path), finding.rule, finding.message)


def _counts(findings: Sequence[Finding]) -> Counter:
    return Counter(fingerprint(f) for f in findings)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the current findings as the accepted baseline."""
    entries = [
        {"path": p, "rule": rule, "message": message, "count": count}
        for (p, rule, message), count in sorted(_counts(findings).items())
    ]
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro-lint",
        "findings": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Counter:
    """Load a baseline file into a fingerprint multiset.

    Raises ``ValueError`` on a malformed file or unsupported version —
    a silently-empty baseline would fail CI on every accepted finding.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed baseline file {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline file {path}: expected version {BASELINE_VERSION}"
        )
    counts: Counter = Counter()
    for entry in payload.get("findings", []):
        try:
            key = (str(entry["path"]), str(entry["rule"]), str(entry["message"]))
            counts[key] += int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed baseline entry in {path}: {entry!r}") from exc
    return counts


def ratchet(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], int]:
    """Split current findings against the baseline.

    Returns ``(new_findings, fixed_count)``: the findings exceeding their
    baselined count (sorted), and how many baselined findings no longer
    occur (the slack an ``--update-baseline`` run would reclaim).
    """
    current = _counts(findings)
    budget = Counter(baseline)
    new: List[Finding] = []
    for finding in sorted(findings):
        key = fingerprint(finding)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            new.append(finding)
    fixed = sum((Counter(baseline) - current).values())
    return new, fixed
