"""Tests for the brute-force model checker (repro.core.exhaustive)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.exhaustive import (
    half_integral_grid,
    one_round_universe,
    search_view_function,
    zero_round_impossibility,
)
from repro.graphs.families import cycle_graph, single_node_with_loops


class TestGrid:
    def test_half_integral(self):
        assert half_integral_grid(2) == [Fraction(0), Fraction(1, 2), Fraction(1)]

    def test_sixths(self):
        grid = half_integral_grid(6)
        assert Fraction(1, 3) in grid and Fraction(1, 2) in grid
        assert len(grid) == 7


class TestUniverse:
    def test_counts(self):
        assert len(one_round_universe(2)) == 3 + 6
        # delta=3: 7 one-node graphs + 3 colours x C(4+1,2)... = 37 total
        assert len(one_round_universe(3)) == 37

    def test_degree_bound(self):
        for g in one_round_universe(3):
            assert g.max_degree() <= 3

    def test_rejects_delta_one(self):
        with pytest.raises(ValueError):
            one_round_universe(1)


class TestImpossibility:
    @pytest.mark.parametrize("delta", [2, 3])
    def test_no_one_round_algorithm(self, delta):
        """By exhaustive enumeration: no grid-valued 1-round EC algorithm
        computes maximal FM on degree-<=delta graphs.  For delta = 3 this
        is exactly Theorem 1's bound (> delta - 2 = 1)."""
        out = search_view_function(one_round_universe(delta), t=1, grid=half_integral_grid(6))
        assert out.impossible
        assert out.views >= 3

    def test_one_node_universe_alone_is_satisfiable(self):
        """Sanity: a weak universe does not prove impossibility."""
        universe = [single_node_with_loops(2)]
        out = search_view_function(universe, t=1, grid=half_integral_grid(2))
        assert not out.impossible
        (view, weights), = out.function.items()
        assert sum(weights.values()) == 1

    def test_regular_universe_admits_uniform_solution(self):
        universe = [cycle_graph(4), cycle_graph(6), single_node_with_loops(2)]
        out = search_view_function(universe, t=1, grid=half_integral_grid(2))
        assert not out.impossible
        for weights in out.function.values():
            assert sum(weights.values()) == 1

    def test_found_function_is_valid_on_universe(self):
        """When a function is found, assemble its outputs on each universe
        graph and verify through the standard checkers."""
        from repro.local.views import ec_view_tree
        from repro.matching.fm import fm_from_node_outputs

        universe = [cycle_graph(4), single_node_with_loops(2)]
        out = search_view_function(universe, t=1, grid=half_integral_grid(2))
        assert out.function is not None
        for g in universe:
            outputs = {
                v: dict(out.function[ec_view_tree(g, v, 1)]) for v in g.nodes()
            }
            fm = fm_from_node_outputs(g, outputs)
            assert fm.is_feasible() and fm.is_maximal()


class TestSearchMechanics:
    def test_t_zero_rejected(self):
        with pytest.raises(ValueError):
            search_view_function([cycle_graph(4)], t=0, grid=half_integral_grid(2))

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            search_view_function([cycle_graph(4)], t=1, grid=[Fraction(3, 2)])

    def test_budget_exhaustion_raises(self):
        with pytest.raises(RuntimeError, match="budget"):
            search_view_function(
                one_round_universe(3), t=1, grid=half_integral_grid(6), max_nodes=5
            )

    def test_radius_two_on_small_universe(self):
        """The machinery works at t = 2 as well (views deepen, same search)."""
        universe = [cycle_graph(4), cycle_graph(6)]
        out = search_view_function(universe, t=2, grid=half_integral_grid(2))
        assert not out.impossible


class TestZeroRounds:
    def test_certificate(self):
        g1, g2, why = zero_round_impossibility()
        assert g1.loop_count("a") == 1
        assert g2.loop_count("b") == 1
        assert "infeasible" in why


class TestFoundFunctionsAlwaysValid:
    """Property: whenever the search reports FOUND, the function really is a
    valid algorithm on its universe (soundness of the search's constraints)."""

    def test_random_universes(self):
        import random

        from repro.graphs.families import (
            cycle_graph as _cycle,
            random_loopy_tree,
            single_node_with_loops as _loops,
        )
        from repro.local.views import ec_view_tree
        from repro.matching.fm import fm_from_node_outputs

        pool = [
            _cycle(4), _cycle(6), _loops(1), _loops(2),
            random_loopy_tree(3, 1, seed=1), random_loopy_tree(4, 2, seed=2),
        ]
        rng = random.Random(11)
        for trial in range(8):
            universe = rng.sample(pool, rng.randint(1, 3))
            out = search_view_function(universe, t=1, grid=half_integral_grid(6))
            if out.impossible:
                continue
            for g in universe:
                outputs = {
                    v: dict(out.function[ec_view_tree(g, v, 1)]) for v in g.nodes()
                }
                fm = fm_from_node_outputs(g, outputs)
                assert fm.is_feasible(), trial
                assert fm.is_maximal(), trial
