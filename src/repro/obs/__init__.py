"""Observability for the reproduction: tracing, metrics, and exporters.

The package has three small modules:

* :mod:`repro.obs.tracer` — span-based tracing.  A :class:`Tracer` records
  nested, wall-timed spans with attributes and counters; the shared
  :data:`NULL_TRACER` is a no-op implementation of the same interface so
  instrumented hot paths cost (almost) nothing when tracing is off.
* :mod:`repro.obs.metrics` — a metrics registry of counters, gauges and
  histograms keyed by experiment-relevant labels (model, delta, round,
  adversary step).
* :mod:`repro.obs.export` — JSON / JSONL trace exporters, a span-tree text
  renderer, a per-span-name profile aggregator, and the benchmark-artifact
  writer (``BENCH_E*.json``) used by ``benchmarks/conftest.py``.
* :mod:`repro.obs.progress` — the :class:`ProgressEmitter` heartbeat hook
  the sweep engine drives for ``repro sweep --progress`` (JSONL events plus
  a single-line TTY status).
* :mod:`repro.obs.bench` — the scaling-experiment benchmark suite behind
  ``repro bench``: suite declarations, the warmup/repeat runner, the
  append-only per-commit trajectory store, the regression checker and the
  dashboard reporters.  Imported lazily (it depends on the engine).

The determinism contract of the repository is preserved: wall-clock reads
are confined to the sanctioned modules :mod:`repro.obs.tracer`,
:mod:`repro.obs.progress` and :mod:`repro.obs.bench.runner` (see the
sanctioned-clock exemption in :mod:`repro.lint`), and nothing an algorithm
computes may depend on a trace — spans observe the computation, they never
feed back into it.

See ``docs/observability.md`` for the full API tour, the metric-name and
span-name catalogues, and the JSON schema.
"""

from .export import (
    TRACE_SCHEMA_VERSION,
    count_spans,
    document_profile,
    merge_metrics_snapshots,
    merge_trace_documents,
    profile_rows,
    render_profile,
    render_tree,
    span_to_dict,
    trace_document,
    write_bench_artifact,
    write_json,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .progress import NULL_PROGRESS, ProgressEmitter
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, current_tracer, use_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullTracer",
    "ProgressEmitter",
    "Span",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "TRACE_SCHEMA_VERSION",
    "count_spans",
    "document_profile",
    "merge_metrics_snapshots",
    "merge_trace_documents",
    "profile_rows",
    "render_profile",
    "render_tree",
    "span_to_dict",
    "trace_document",
    "write_bench_artifact",
    "write_json",
    "write_jsonl",
]
