"""Tests for truncated universal covers (repro.graphs.cover)."""

from __future__ import annotations

import pytest

from repro.graphs.cover import universal_cover_ec, universal_cover_po
from repro.graphs.families import cycle_graph, path_graph, single_node_with_loops
from repro.graphs.multigraph import ECGraph
from repro.graphs.ports import po_double_from_ec


class TestECCover:
    def test_cover_of_tree_is_itself(self):
        g = path_graph(4)
        cover = universal_cover_ec(g, 0, 10)
        assert cover.tree.num_nodes() == 4
        assert cover.tree.num_edges() == 3

    def test_single_ec_loop_unfolds_to_k2(self):
        """The EC cover of one node with one loop is a single edge: a loop
        counts +1, so every cover node must have degree exactly 1.  (The
        infinite line arises only under the PO convention, where a directed
        loop counts +2 — see TestPOCover.)"""
        g = single_node_with_loops(1)
        cover = universal_cover_ec(g, 0, 3)
        assert cover.tree.num_nodes() == 2
        assert all(cover.tree.degree(v) == 1 for v in cover.tree.nodes())

    def test_two_ec_loops_unfold_to_line(self):
        """Two loops make the node degree 2; the cover is the infinite line
        with colours alternating."""
        g = single_node_with_loops(2)
        cover = universal_cover_ec(g, 0, 3)
        assert cover.tree.num_nodes() == 7

    def test_cycle_unfolds_to_path(self):
        g = cycle_graph(4)  # 2-regular
        cover = universal_cover_ec(g, 0, 3)
        # radius-3 ball of the infinite line: 7 nodes
        assert cover.tree.num_nodes() == 7

    def test_cover_is_loop_free(self):
        g = single_node_with_loops(3)
        cover = universal_cover_ec(g, 0, 2)
        assert all(not e.is_loop for e in cover.tree.edges())

    def test_interior_degrees_preserved(self):
        """Away from the truncation boundary, the projection preserves degrees."""
        g = single_node_with_loops(3)
        r = 3
        cover = universal_cover_ec(g, 0, r)
        for w in cover.tree.nodes():
            if len(w) < r:  # interior
                assert cover.tree.degree(w) == g.degree(cover.projection[w])

    def test_projection_preserves_colors(self):
        g = cycle_graph(5)
        cover = universal_cover_ec(g, 0, 2)
        for e in cover.tree.edges():
            base_u = cover.projection[e.u]
            base_edge = g.edge_at(base_u, e.color)
            assert base_edge is not None

    def test_non_backtracking(self):
        """Walk labels never repeat an edge id in consecutive steps."""
        g = cycle_graph(6)
        cover = universal_cover_ec(g, 0, 4)
        for w in cover.tree.nodes():
            for a, b in zip(w, w[1:]):
                assert a != b

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            universal_cover_ec(path_graph(2), 0, -1)


class TestPOCover:
    def test_directed_loop_unfolds_both_ways(self):
        """A directed loop behaves like a free generator: the cover of a
        single node with one directed loop is a line (one step forward, one
        backward per node)."""
        d = po_double_from_ec(single_node_with_loops(1))
        cover = universal_cover_po(d, 0, 2)
        assert cover.tree.num_nodes() == 5  # line: 2 left + root + 2 right

    def test_po_cover_regular_interior(self):
        d = po_double_from_ec(single_node_with_loops(2))
        r = 2
        cover = universal_cover_po(d, 0, r)
        for w in cover.tree.nodes():
            if len(w) < r:
                assert cover.tree.degree(w) == d.degree(cover.projection[w])

    def test_arcs_point_consistently(self):
        g = cycle_graph(4)
        d = po_double_from_ec(g)
        cover = universal_cover_po(d, 0, 2)
        for e in cover.tree.edges():
            base_tail = cover.projection[e.tail]
            base_arc = d.out_edge(base_tail, e.color)
            assert base_arc is not None
            assert cover.projection[e.head] == base_arc.head

    def test_no_backtracking_means_reduced_words(self):
        d = po_double_from_ec(single_node_with_loops(2))
        cover = universal_cover_po(d, 0, 3)
        for w in cover.tree.nodes():
            for (e1, d1), (e2, d2) in zip(w, w[1:]):
                assert not (e1 == e2 and d1 == -d2)

    def test_growth_matches_2d_regular_tree(self):
        """Cover of a node with d directed loops = the 2d-regular tree T."""
        d_loops = 2
        d = po_double_from_ec(single_node_with_loops(d_loops))
        cover = universal_cover_po(d, 0, 2)
        # T with 2d = 4: ball sizes 1 + 4 + 4*3 = 17
        assert cover.tree.num_nodes() == 17
