"""Tests for the networkx bridge (repro.graphs.nxbridge)."""

from __future__ import annotations

import networkx as nx

from repro.graphs.families import cycle_graph, single_node_with_loops
from repro.graphs.nxbridge import from_networkx, to_networkx


class TestRoundTrip:
    def test_round_trip_preserves_structure(self):
        g = cycle_graph(5)
        back = from_networkx(to_networkx(g))
        assert sorted(back.nodes()) == sorted(g.nodes())
        # endpoint order within an undirected edge may flip through networkx
        assert {(frozenset((e.u, e.v)), e.color) for e in back.edges()} == {
            (frozenset((e.u, e.v)), e.color) for e in g.edges()
        }

    def test_loops_survive(self):
        g = single_node_with_loops(3)
        back = from_networkx(to_networkx(g))
        assert back.loop_count(0) == 3

    def test_edge_ids_preserved(self):
        g = cycle_graph(4)
        back = from_networkx(to_networkx(g))
        for e in g.edges():
            assert back.edge(e.eid).color == e.color

    def test_parallel_edges_keep_ids_and_colors(self):
        """Regression: parallel edges must not collapse through networkx.

        A MultiGraph keyed by ``eid`` keeps both copies distinct; each must
        come back with its own id and colour, and the content digest (which
        is endpoint-order normalised) must survive the round trip.
        """
        from repro.graphs.multigraph import ECGraph

        g = ECGraph()
        e0 = g.add_edge("a", "b", 1)
        e1 = g.add_edge("a", "b", 2)
        e2 = g.add_edge("b", "b", 3)  # loop next to the parallel pair
        back = from_networkx(to_networkx(g))
        assert back.num_edges() == 3
        assert back.edge(e0).color == 1
        assert back.edge(e1).color == 2
        assert back.edge(e2).is_loop and back.edge(e2).color == 3
        assert back.digest == g.digest

    def test_loop_ids_and_colors_preserved(self):
        g = single_node_with_loops(4)
        back = from_networkx(to_networkx(g))
        for e in g.edges():
            assert back.edge(e.eid).is_loop
            assert back.edge(e.eid).color == e.color
        assert back.digest == g.digest


class TestFromPlainNetworkx:
    def test_uncolored_graph_gets_colored(self):
        nxg = nx.MultiGraph()
        nxg.add_edges_from([(0, 1), (1, 2), (2, 0)])
        g = from_networkx(nxg)
        assert g.num_edges() == 3
        g.validate()  # proper colouring was assigned

    def test_mixed_colored_uncolored(self):
        nxg = nx.MultiGraph()
        nxg.add_edge(0, 1, color=5)
        nxg.add_edge(1, 2)
        g = from_networkx(nxg)
        assert g.num_edges() == 2
        assert g.edge_at(0, 5) is not None
