"""Span-based tracing with a zero-cost no-op implementation.

A :class:`Tracer` records a forest of :class:`Span` objects — named, timed
regions of work with free-form attributes and additive counters.  Spans are
context managers::

    tracer = Tracer()
    with tracer.span("adversary.step", index=3) as sp:
        sp.add("isomorphism_checks")
        sp.set(nodes=graph.num_nodes())

Instrumented library code never requires a tracer: every ``tracer=``
parameter defaults to the ambient tracer (:func:`current_tracer`), which is
the shared no-op :data:`NULL_TRACER` unless a caller installed a real one
with :func:`use_tracer`.  The no-op tracer returns one preallocated span
object that ignores everything, so the disabled hot path costs a dict-free
method call and a ``with`` block — nothing measurable.  Expensive
observations (state-size estimates and the like) must additionally be
guarded by ``if tracer.enabled:``.

Determinism contract
--------------------
This module is the **single sanctioned home of wall-clock reads** in the
repository.  The model's outputs remain a function of the input alone:
spans observe the computation (durations, counts) but nothing downstream of
a clock value ever flows back into an algorithm.  The ``determinism`` lint
rule exempts exactly this module via ``LintConfig.clock_modules`` (see
``docs/static_analysis.md``); clock use anywhere else is still flagged.
Tests that need reproducible traces inject a fake ``clock`` callable.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from .metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
]


class Span:
    """One timed, attributed region of work; spans nest into a tree."""

    __slots__ = ("name", "attrs", "counters", "children", "start", "end", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.start: Optional[float] = None
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Wall time between enter and exit (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration not attributed to any child span."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def set(self, **attrs) -> "Span":
        """Attach or overwrite attributes mid-span."""
        self.attrs.update(attrs)
        return self

    def add(self, counter: str, n: float = 1) -> "Span":
        """Bump an additive per-span counter."""
        self.counters[counter] = self.counters.get(counter, 0) + n
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, attrs={self.attrs!r}, children={len(self.children)})"


class Tracer:
    """Records spans into a forest; one instance per traced activity.

    Parameters
    ----------
    clock:
        Callable returning a monotonically non-decreasing float.  Defaults
        to ``time.perf_counter``; tests inject a deterministic fake.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else time.perf_counter
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.metrics = MetricsRegistry()

    def span(self, name: str, **attrs) -> Span:
        """A new span; activate it with ``with``."""
        return Span(self, name, attrs)

    def _open(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span.start = self._clock()

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        # tolerate exits out of order (a child leaked past its parent):
        # unwind to — and including — the span being closed
        while self._stack:
            if self._stack.pop() is span:
                break

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first in recording order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> List[Span]:
        """All spans with the given name."""
        return [s for s in self.iter_spans() if s.name == name]

    def graft(self, spans: List[Span]) -> None:
        """Adopt finished spans recorded elsewhere under the open span.

        Used when work ran against a private tracer (e.g. on a watchdogged
        worker thread, whose spans must not race this tracer's stack) and
        its completed span trees should appear in this trace as children of
        whatever span is currently open — or as roots if none is.
        """
        parent = self._stack[-1].children if self._stack else self.roots
        parent.extend(spans)


class _NullSpan:
    """The do-nothing span: a reusable context manager with Span's API."""

    __slots__ = ()

    name = "null"
    attrs: Dict[str, Any] = {}
    counters: Dict[str, float] = {}
    children: List[Span] = []
    start = None
    end = None
    duration = 0.0
    self_time = 0.0

    def set(self, **attrs) -> "_NullSpan":
        return self

    def add(self, counter: str, n: float = 1) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: same interface as :class:`Tracer`, records nothing."""

    enabled = False
    roots: List[Span] = []
    metrics = NULL_METRICS

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []

    def graft(self, spans: List[Span]) -> None:
        return None


NULL_TRACER = NullTracer()

#: the ambient tracer instrumented code falls back to; NULL_TRACER unless a
#: caller installed one with :func:`use_tracer`
_CURRENT = NULL_TRACER


def current_tracer():
    """The ambient tracer (:data:`NULL_TRACER` when tracing is off)."""
    return _CURRENT


class use_tracer:
    """Install ``tracer`` as the ambient tracer for a ``with`` block.

    ::

        tracer = Tracer()
        with use_tracer(tracer):
            run_adversary(alg, delta=6)   # all layers pick the tracer up
    """

    def __init__(self, tracer):
        self._tracer = tracer
        self._previous = None

    def __enter__(self):
        global _CURRENT
        self._previous = _CURRENT
        _CURRENT = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _CURRENT
        _CURRENT = self._previous
        return False
