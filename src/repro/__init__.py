"""repro — executable reproduction of *Linear-in-Delta Lower Bounds in the
LOCAL Model* (Goos, Hirvonen, Suomela; PODC 2014 / arXiv:1304.1007).

The package turns the paper's lower-bound proof into running code:

* :mod:`repro.graphs` — edge-coloured multigraphs with loops, PO digraphs,
  lifts, universal covers, factor graphs, neighbourhoods (Section 3);
* :mod:`repro.local` — a synchronous LOCAL-model simulator for the EC, PO
  and ID models (Section 1.4);
* :mod:`repro.matching` — fractional matchings, verifiers, LP baselines and
  the ``O(Delta)``-round upper-bound algorithms (Sections 1.1-1.2);
* :mod:`repro.coloring` — Cole-Vishkin, Linial and forest-decomposition
  substrates for the classical baselines;
* :mod:`repro.core` — the unfold-and-mix adversary (Section 4), the
  EC <= PO <= OI <= ID simulation chain (Section 5), the homogeneous tree
  order (Appendix A) and derandomisation (Appendix B);
* :mod:`repro.lint` — the model-contract static analyzer (locality,
  determinism, exact arithmetic, frozen views), paired with the runtime
  locality sanitizer in :mod:`repro.local.sanitize`;
* :mod:`repro.engine` — the batched, process-parallel experiment engine
  (sharded sweeps, canonical-form caching, resumable result stores);
* :mod:`repro.api` — the stable keyword-first facade (``run`` / ``refute``
  / ``sweep``) new code should import.

Quickstart::

    from repro.graphs.families import caterpillar
    from repro.matching import greedy_color_algorithm, fm_from_node_outputs
    from repro.core import run_adversary

    g = caterpillar(spine=4, legs=3)
    alg = greedy_color_algorithm()
    fm = fm_from_node_outputs(g, alg.run_on(g))
    assert fm.is_maximal()

    witness = run_adversary(alg, delta=5)   # Theorem 1, executably
    assert witness.achieved_depth == 3      # = Delta - 2
"""

from . import analysis, api, coloring, core, engine, graphs, lint, local, matching, problems
from .api import BenchReport, Refutation, RunResult, SweepReport, bench, refute, run, sweep

__version__ = "1.0.0"

__all__ = [
    # the stable facade (repro.api), re-exported at the top level
    "BenchReport",
    "Refutation",
    "RunResult",
    "SweepReport",
    "bench",
    "refute",
    "run",
    "sweep",
    # subsystem modules
    "analysis",
    "api",
    "coloring",
    "core",
    "engine",
    "graphs",
    "lint",
    "local",
    "matching",
    "problems",
    "__version__",
]
