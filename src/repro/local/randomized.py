"""Randomised LOCAL algorithms as deterministic algorithms plus a tape.

The paper's Appendix B treats a randomised algorithm ``A`` as a family of
deterministic algorithms ``A_rho`` indexed by an assignment
``rho : V(G) -> {0,1}*`` of random strings to nodes.  We mirror that view
exactly: a *tape* maps each node to an integer (its random string), is
injected into the network's globals, and node algorithms read their own
entry through :func:`my_coins`.  Everything else — simulation, verification,
derandomisation searches — then operates on plain deterministic algorithms.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Iterable

from .context import NodeContext

Node = Hashable
RandomTape = Dict[Node, int]

__all__ = ["RandomTape", "uniform_tape", "tape_globals", "my_coins"]

#: the globals key under which a tape travels through the network
TAPE_KEY = "random_tape"


def uniform_tape(nodes: Iterable[Node], rng: random.Random, bits: int = 30) -> RandomTape:
    """Draw an independent ``bits``-bit string for every node.

    ``bits`` controls the collision probability — the knob the Appendix B
    demonstrations turn to make failures likely (small ``bits``) or
    vanishing (large ``bits``).
    """
    return {v: rng.getrandbits(bits) for v in nodes}


def tape_globals(tape: RandomTape, **extra: Any) -> Dict[str, Any]:
    """Package a tape (plus any other globals) for a network constructor."""
    out: Dict[str, Any] = {TAPE_KEY: dict(tape)}
    out.update(extra)
    return out


def my_coins(ctx: NodeContext) -> int:
    """The executing node's private random string.

    Reading one's own tape entry is the legitimate use of ``ctx.node`` in
    anonymous models: the coins are private inputs, not identity.  Raises
    ``KeyError`` if the network was built without a tape.
    """
    tape: RandomTape = ctx.globals[TAPE_KEY]
    return tape[ctx.node]
