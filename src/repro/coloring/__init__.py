"""Symmetry-breaking substrates: Cole-Vishkin, forests, Linial, edge colouring, MIS."""

from .cole_vishkin import cole_vishkin_3color, cv_step_count, validate_forest_coloring
from .edge_coloring import (
    distributed_edge_coloring,
    line_graph_adjacency,
    validate_edge_coloring,
)
from .forests import forest_decomposition, validate_forest
from .linial import (
    greedy_reduce_to,
    linial_reduce,
    linial_step,
    next_prime,
    reduction_parameters,
    validate_coloring,
)
from .mis import luby_mis, validate_mis

__all__ = [
    "cole_vishkin_3color",
    "cv_step_count",
    "validate_forest_coloring",
    "distributed_edge_coloring",
    "line_graph_adjacency",
    "validate_edge_coloring",
    "forest_decomposition",
    "validate_forest",
    "greedy_reduce_to",
    "linial_reduce",
    "linial_step",
    "next_prime",
    "reduction_parameters",
    "validate_coloring",
    "luby_mis",
    "validate_mis",
]
